"""Quickstart: fuzzy-match dirty organization tuples against a reference.

Reproduces the paper's running example (Tables 1 and 2): a three-tuple
organization reference relation, four erroneous inputs, and the fuzzy match
operation resolving each input to its intended target.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    FuzzyMatcher,
    MatchConfig,
    ReferenceTable,
    build_eti,
    build_frequency_cache,
)

# --- 1. Load the clean reference relation (Table 1) ----------------------

db = Database.in_memory()
reference = ReferenceTable(db, "organizations", ["org_name", "city", "state", "zipcode"])
reference.load(
    [
        (1, ("Boeing Company", "Seattle", "WA", "98004")),
        (2, ("Bon Corporation", "Seattle", "WA", "98014")),
        (3, ("Companions", "Seattle", "WA", "98024")),
    ]
)

# --- 2. Build the supporting structures -----------------------------------
#
# The token-frequency cache supplies IDF weights; the Error Tolerant Index
# (a plain relation with a clustered B+-tree index) makes retrieval fast.

config = MatchConfig(q=3, signature_size=2)  # the paper's worked-example setting
weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
eti, build_stats = build_eti(db, reference, config)
print(f"ETI built: {build_stats.eti_rows} rows from {build_stats.pre_eti_rows} pre-ETI rows\n")

# --- 3. Match the dirty inputs (Table 2) ----------------------------------

matcher = FuzzyMatcher(reference, weights, config, eti)

inputs = [
    ("Beoing Company", "Seattle", "WA", "98004"),     # I1: spelling error
    ("Beoing Co.", "Seattle", "WA", "98004"),          # I2: spelling + abbreviation
    ("Boeing Corporation", "Seattle", "WA", "98004"),  # I3: token replacement
    ("Company Beoing", "Seattle", None, "98014"),      # I4: transposition + missing
]

print(f"{'input tuple':<42} {'match':<18} {'fms':>6}  lookups fetched osc")
for values in inputs:
    result = matcher.match(values)
    best = result.best
    stats = result.stats
    name = best.values[0] if best else "(no match)"
    similarity = f"{best.similarity:.3f}" if best else "-"
    print(
        f"{str(values[0]):<42} {name:<18} {similarity:>6}  "
        f"{stats.eti_lookups:>7} {stats.candidates_fetched:>7} "
        f"{'yes' if stats.osc_succeeded else 'no':>3}"
    )

# --- 4. The K-fuzzy-match extension ---------------------------------------

print("\nTop-3 matches for 'Beoing Company' with minimum similarity 0.2:")
result = matcher.match(
    ("Beoing Company", "Seattle", "WA", "98004"), k=3, min_similarity=0.2
)
for match in result.matches:
    print(f"  tid={match.tid}  fms={match.similarity:.3f}  {match.values}")
