"""Offline fuzzy-duplicate elimination — the paper's complementary workflow.

§2 of the paper: "A complementary use of solutions to both problems is to
first clean a relation by eliminating fuzzy duplicates and then piping
further additions through the fuzzy match operation."  This example runs
the first half: a customer relation polluted with error-laden re-entries is
clustered with :class:`repro.dedup.FuzzyDeduplicator`, duplicates are
dropped in favour of each cluster's most information-rich variant, and the
cleaned relation is ready to serve as the fuzzy-match reference.

Note the precision/recall trade the threshold controls — and that some
"false" flags are real near-duplicates the generator produced by chance
(two distinct customers sharing name, city, and state).

Run:  python examples/offline_dedup.py
"""

import random

from repro import Database, ReferenceTable
from repro.data.errors import ErrorModel
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.dedup import FuzzyDeduplicator

CLEAN_SIZE = 1_000
PLANTED_DUPLICATES = 60
THRESHOLD = 0.85

rng = random.Random(5150)

# --- Build a polluted relation ---------------------------------------------

clean = generate_customers(CLEAN_SIZE, seed=31, unique=True)
error_model = ErrorModel((0.4, 0.2, 0.2, 0.2), seed=32)

rows = [(c.tid, c.values) for c in clean]
next_tid = CLEAN_SIZE
planted: dict[int, int] = {}  # duplicate tid -> source tid
for source in rng.sample(clean, PLANTED_DUPLICATES):
    dirty, _ = error_model.corrupt(source.values)
    rows.append((next_tid, dirty))
    planted[next_tid] = source.tid
    next_tid += 1

db = Database.in_memory()
relation = ReferenceTable(db, "customer", list(CUSTOMER_COLUMNS))
relation.load(rows)
print(f"relation: {len(relation)} tuples "
      f"({len(planted)} planted error-laden re-entries)")

# --- Deduplicate -------------------------------------------------------------

dedup = FuzzyDeduplicator(threshold=THRESHOLD, neighbors=3)
report = dedup.deduplicate(relation, db)

all_pairs = len(relation) * (len(relation) - 1) // 2
print(f"\nclustered in {report.elapsed_seconds:.2f}s — "
      f"{report.pairs_scored} candidate pairs scored via the ETI "
      f"(all-pairs would be {all_pairs})")
print(f"clusters: {len(report.clusters)}, "
      f"tuples flagged as duplicates: {report.duplicate_count}")

# --- Score against the planted truth ----------------------------------------

caught = sum(
    1
    for duplicate, source in planted.items()
    for cluster in report.clusters
    if duplicate in cluster.member_tids and source in cluster.member_tids
)
print(f"\nrecall on planted re-entries: {caught}/{len(planted)} "
      f"({caught / len(planted):.1%})")
print("(other flagged tuples are mostly organic near-duplicates the "
      "generator created: same name + city, adjacent zip)")

# --- Produce the cleaned relation -------------------------------------------

drop = set(report.duplicates_of())
survivors = [(tid, values) for tid, values in relation.scan() if tid not in drop]
print(f"\ncleaned relation: {len(survivors)} tuples "
      f"(removed {len(relation) - len(survivors)})")
