"""Persisting the ETI between input batches (§6.2.2.1).

"Because we persist the ETI as a standard indexed relation, we can use it
for subsequent batches of input tuples if the reference table does not
change."  This example builds a warehouse (reference relation + ETI) on
disk, snapshots it, reopens it in the same process the way a second ETL
session would, and matches a fresh batch without rebuilding anything.
It also demonstrates incremental ETI maintenance when the reference
relation does change between batches.

Run:  python examples/persistent_warehouse.py
"""

import os
import tempfile
import time

from repro import Database, FuzzyMatcher, MatchConfig, ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.snapshot import load_database, save_database
from repro.eti.builder import build_eti
from repro.eti.index import EtiIndex
from repro.eti.maintenance import EtiMaintainer

REFERENCE_SIZE = 3_000
BATCH_SIZE = 100

config = MatchConfig()
page_path = os.path.join(tempfile.mkdtemp(prefix="repro-wh-"), "warehouse.pages")

# --- Session 1: build the warehouse and snapshot it --------------------------

print("session 1: building the warehouse on disk...")
customers = generate_customers(REFERENCE_SIZE, seed=8, unique=True)
started = time.perf_counter()
db = Database.on_disk(page_path)
reference = ReferenceTable(db, "customer", list(CUSTOMER_COLUMNS))
reference.load((c.tid, c.values) for c in customers)
_, build_stats = build_eti(db, reference, config)
save_database(db)
db.close()
print(f"  built + snapshotted in {time.perf_counter() - started:.2f}s "
      f"({build_stats.eti_rows} ETI rows, pages in {page_path})")

# --- Session 2: reopen and serve a batch -------------------------------------

print("\nsession 2: reopening the snapshot (no rebuild)...")
started = time.perf_counter()
db = load_database(page_path)
reference = ReferenceTable.attach(db, "customer", list(CUSTOMER_COLUMNS))
eti = EtiIndex(db.relation("eti"))
weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
matcher = FuzzyMatcher(reference, weights, config, eti)
print(f"  reopened in {time.perf_counter() - started:.2f}s")

batch = make_dataset(
    [(c.tid, c.values) for c in customers],
    DatasetSpec("batch", (0.7, 0.4, 0.4, 0.4)),
    BATCH_SIZE,
    seed=21,
)
started = time.perf_counter()
correct = sum(
    1
    for dirty in batch.inputs
    if (result := matcher.match(dirty.values)).best is not None
    and result.best.tid == dirty.target_tid
)
elapsed = time.perf_counter() - started
print(f"  matched {BATCH_SIZE} inputs in {elapsed:.2f}s — "
      f"accuracy {correct / BATCH_SIZE:.1%}")

# --- Session 2b: the reference changes; maintain the ETI incrementally -------

print("\nsession 2b: appending new customers with incremental maintenance...")
# Passing the weights cache keeps IDF weights exact across mutations.
maintainer = EtiMaintainer(reference, eti, config, weights=weights)
new_customers = generate_customers(5, seed=404)
for customer in new_customers:
    maintainer.insert_tuple(REFERENCE_SIZE + customer.tid, customer.values)
probe = new_customers[0]
result = matcher.match(probe.values)
print(f"  new tuple {probe.values!r} matchable immediately: "
      f"tid={result.best.tid}, fms={result.best.similarity:.3f}")

save_database(db)
db.close()
print("\nsnapshot updated; a third session would reopen it the same way.")
