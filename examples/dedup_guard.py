"""Preventing fuzzy-duplicate proliferation at insert time.

The paper's introduction: "A fuzzy match operation that is resilient to
input errors can effectively prevent the proliferation of fuzzy duplicates
in a relation."  This example implements that guard: a stream of new
customer registrations — some genuinely new, some error-laden re-entries of
existing customers — is screened with the fuzzy match operation before
being admitted to the warehouse.

Run:  python examples/dedup_guard.py
"""

import random

from repro import Database, FuzzyMatcher, MatchConfig, ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.errors import ErrorModel
from repro.data.generator import CUSTOMER_COLUMNS, CustomerGenerator, generate_customers
from repro.eti.builder import build_eti

REFERENCE_SIZE = 3_000
DUPLICATE_THRESHOLD = 0.80
STREAM_SIZE = 200

rng = random.Random(99)

# Existing warehouse contents.
db = Database.in_memory()
reference = ReferenceTable(db, "customer", list(CUSTOMER_COLUMNS))
existing = generate_customers(REFERENCE_SIZE, seed=5)
reference.load((c.tid, c.values) for c in existing)

config = MatchConfig()
weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
eti, _ = build_eti(db, reference, config)
matcher = FuzzyMatcher(reference, weights, config, eti)

# A registration stream: half re-entries of existing customers (with data
# entry errors), half genuinely new customers.
error_model = ErrorModel((0.6, 0.3, 0.3, 0.3), seed=13)
new_customers = list(
    CustomerGenerator(seed=6006).generate(STREAM_SIZE // 2, start_tid=10**6)
)

stream = []
for i in range(STREAM_SIZE):
    if i % 2 == 0:
        seed_customer = existing[rng.randrange(len(existing))]
        dirty, _ = error_model.corrupt(seed_customer.values)
        stream.append(("re-entry", seed_customer.tid, dirty))
    else:
        customer = new_customers[i // 2]
        stream.append(("new", None, customer.values))
rng.shuffle(stream)

# Screen the stream.
true_positive = false_positive = true_negative = false_negative = 0
for kind, source_tid, values in stream:
    result = matcher.match(values)
    best = result.best
    flagged = best is not None and best.similarity >= DUPLICATE_THRESHOLD
    if kind == "re-entry":
        if flagged and best.tid == source_tid:
            true_positive += 1
        elif flagged:
            false_positive += 1  # flagged, but against the wrong customer
        else:
            false_negative += 1  # duplicate slipped through
    else:
        if flagged:
            false_positive += 1
        else:
            true_negative += 1

print(f"Screened {STREAM_SIZE} registrations against {REFERENCE_SIZE} customers "
      f"(duplicate threshold fms >= {DUPLICATE_THRESHOLD})\n")
print(f"  duplicates caught (correct customer):  {true_positive}")
print(f"  duplicates missed:                     {false_negative}")
print(f"  wrongly flagged:                       {false_positive}")
print(f"  genuinely new, admitted:               {true_negative}")
caught = true_positive + false_negative
if caught:
    print(f"\n  guard recall on re-entries: {true_positive / caught:.1%}")
