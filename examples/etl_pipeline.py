"""The Figure 1 template: online data cleaning in an ETL load path.

Incoming customer records (with realistic data-entry errors) are validated
against the warehouse's Customer reference relation before loading:

- fms above the load threshold  -> load the *reference* tuple (corrected),
- otherwise                     -> route to the cleaning queue.

This is exactly the decision diamond of the paper's Figure 1, driven by a
synthetic 5000-tuple Customer relation and the Table 4/5 error model.

Run:  python examples/etl_pipeline.py
"""

import time

from repro import Database, FuzzyMatcher, MatchConfig, ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.eti.builder import build_eti

REFERENCE_SIZE = 5_000
INCOMING_BATCH = 300
LOAD_THRESHOLD = 0.70  # fms needed to auto-correct and load

# --- Set up the warehouse --------------------------------------------------

print(f"Generating Customer reference relation ({REFERENCE_SIZE} tuples)...")
db = Database.in_memory()
reference = ReferenceTable(db, "customer", list(CUSTOMER_COLUMNS))
customers = generate_customers(REFERENCE_SIZE, seed=20030609)
reference.load((c.tid, c.values) for c in customers)

config = MatchConfig()  # paper defaults: q=4, Q+T_2 signatures, OSC on
weights = build_frequency_cache(reference.scan_values(), reference.num_columns)

started = time.perf_counter()
eti, build_stats = build_eti(db, reference, config)
print(
    f"ETI built in {time.perf_counter() - started:.2f}s "
    f"({build_stats.eti_rows} rows, {build_stats.stop_qgrams} stop q-grams)\n"
)

matcher = FuzzyMatcher(reference, weights, config, eti)

# --- Simulate an incoming batch from a distributor -------------------------

spec = DatasetSpec("incoming", (0.8, 0.5, 0.5, 0.6))
batch = make_dataset(
    [(c.tid, c.values) for c in customers], spec, INCOMING_BATCH, seed=77
)

loaded_exact = 0
loaded_corrected = 0
routed_to_cleaning = 0
correct_target = 0

started = time.perf_counter()
for record in batch.inputs:
    result = matcher.match(record.values)
    best = result.best
    if best is None or best.similarity < LOAD_THRESHOLD:
        routed_to_cleaning += 1
        continue
    if best.similarity == 1.0:
        loaded_exact += 1
    else:
        loaded_corrected += 1
    if best.tid == record.target_tid:
        correct_target += 1
elapsed = time.perf_counter() - started

# --- Report ----------------------------------------------------------------

loaded = loaded_exact + loaded_corrected
print(f"Processed {INCOMING_BATCH} incoming records in {elapsed:.2f}s "
      f"({1000 * elapsed / INCOMING_BATCH:.1f} ms/record)")
print(f"  loaded unchanged (exact match):   {loaded_exact}")
print(f"  loaded after fuzzy correction:    {loaded_corrected}")
print(f"  routed to the cleaning queue:     {routed_to_cleaning}")
if loaded:
    print(f"  correction precision:             {correct_target / loaded:.1%} "
          f"of loaded records mapped to their true customer")
