"""Validating distributor sales records against a Product relation.

The paper's opening scenario: "product name and description fields in a
sales record from a distributor must match the pre-recorded name and
description fields in a product reference relation."  Part numbers are the
high-IDF tokens here — a single-character typo in 'KX-4810-A' must not
stop the record from matching, which is precisely what the paper's
erroneous-token handling (unseen tokens get the column-average weight, and
q-gram signatures still route candidates) provides.

Run:  python examples/product_catalog.py
"""

from repro import Database, FuzzyMatcher, MatchConfig, ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.errors import ErrorModel
from repro.data.products import PRODUCT_COLUMNS, generate_products
from repro.eti.builder import build_eti

CATALOG_SIZE = 4_000
FEED_SIZE = 250
ACCEPT_THRESHOLD = 0.65

# --- The enterprise's Product relation ---------------------------------------

products = generate_products(CATALOG_SIZE, seed=4242)
db = Database.in_memory()
catalog = ReferenceTable(db, "product", list(PRODUCT_COLUMNS))
catalog.load((p.tid, p.values) for p in products)

config = MatchConfig()
weights = build_frequency_cache(catalog.scan_values(), catalog.num_columns)
eti, build_stats = build_eti(db, catalog, config)
matcher = FuzzyMatcher(catalog, weights, config, eti)
print(f"catalog: {CATALOG_SIZE} products, ETI {build_stats.eti_rows} rows")

# --- A distributor feed with data-entry errors --------------------------------
#
# Part numbers get typos, names get abbreviated/merged, the category is
# frequently missing — name_column=1 lets the part number go NULL too.

error_model = ErrorModel(
    (0.5, 0.6, 0.5),
    name_column=1,
    seed=11,
)
import random

rng = random.Random(33)
feed = []
for product in rng.sample(products, FEED_SIZE):
    dirty, report = error_model.corrupt(product.values)
    feed.append((product.tid, dirty, len(report.errors)))

# --- Validate ------------------------------------------------------------------

validated = rejected = correct = 0
for true_tid, values, _ in feed:
    result = matcher.match(values)
    best = result.best
    if best is None or best.similarity < ACCEPT_THRESHOLD:
        rejected += 1
        continue
    validated += 1
    if best.tid == true_tid:
        correct += 1

print(f"\nfeed: {FEED_SIZE} sales records "
      f"({sum(1 for _, _, e in feed if e)} carry at least one error)")
print(f"  validated against the catalog: {validated}")
print(f"  routed to manual review:       {rejected}")
print(f"  validation precision:          {correct / max(validated, 1):.1%}")

# --- Show one interesting case -------------------------------------------------

print("\nsample corrections:")
shown = 0
for true_tid, values, error_count in feed:
    if error_count < 2:
        continue
    result = matcher.match(values)
    if result.best is None or result.best.tid != true_tid:
        continue
    print(f"  {values!r}")
    print(f"    -> {result.best.values!r}  (fms {result.best.similarity:.3f})")
    shown += 1
    if shown == 3:
        break
