"""A guided tour of the paper's worked examples, with live numbers.

Walks through §3 (edit distance, fms transformation costs), §4.1 (q-gram
sets, min-hash signatures, fmsapx), §4.2 (the ETI relation — the analogue
of Table 3), and §4.3 (the basic algorithm's score accumulation and OSC's
fetching/stopping tests) on the Tables 1–2 data.

Run:  python examples/paper_walkthrough.py
"""

from repro import Database, FuzzyMatcher, MatchConfig, MinHasher, ReferenceTable
from repro.core.fms import fms, transformation_cost
from repro.core.fms_apx import fms_apx
from repro.core.strings import edit_distance, qgram_set, tuple_edit_similarity
from repro.core.weights import build_frequency_cache
from repro.eti.builder import build_eti

config = MatchConfig(q=3, signature_size=2)


def banner(title):
    print(f"\n{'=' * 68}\n{title}\n{'=' * 68}")


# --- §3: edit distance -------------------------------------------------------

banner("§3 Edit distance")
print(f"ed('company', 'corporation') = {edit_distance('company', 'corporation'):.3f}"
      "   (paper: 7/11 ≈ 0.64)")
print(f"ed('beoing', 'boeing')       = {edit_distance('beoing', 'boeing'):.3f}"
      "   (paper: 0.33)")

# --- Table 1 / Table 2 -------------------------------------------------------

banner("Tables 1–2: the organization reference relation and dirty inputs")
db = Database.in_memory()
reference = ReferenceTable(db, "orgs", ["org_name", "city", "state", "zipcode"])
reference.load(
    [
        (1, ("Boeing Company", "Seattle", "WA", "98004")),
        (2, ("Bon Corporation", "Seattle", "WA", "98014")),
        (3, ("Companions", "Seattle", "WA", "98024")),
    ]
)
for tid, values in reference.scan():
    print(f"  R{tid}: {values}")

weights = build_frequency_cache(reference.scan_values(), reference.num_columns)

# --- §1's motivating failure of edit distance --------------------------------

banner("§1: why edit distance fails on I3 = [Boeing Corporation, ...]")
i3 = ("Boeing Corporation", "Seattle", "WA", "98004")
r1 = ("Boeing Company", "Seattle", "WA", "98004")
r2 = ("Bon Corporation", "Seattle", "WA", "98014")
print(f"  ed-similarity(I3, R1) = {tuple_edit_similarity(i3, r1):.3f}")
print(f"  ed-similarity(I3, R2) = {tuple_edit_similarity(i3, r2):.3f}   <- ed prefers the wrong tuple")
print(f"  fms(I3, R1)           = {fms(i3, r1, weights, config):.3f}   <- fms prefers the true target")
print(f"  fms(I3, R2)           = {fms(i3, r2, weights, config):.3f}")

# --- §3.1 transformation cost ------------------------------------------------

banner("§3.1: transformation cost of u[1]='beoing corporation' -> v[1]='boeing company'")


class UnitWeights:
    def weight(self, token, column):
        return 1.0

    def frequency(self, token, column):
        return 1


cost = transformation_cost(
    ("beoing", "corporation"), ("boeing", "company"), 0, UnitWeights(), config
)
print(f"  tc = {cost:.3f}  (paper: 0.33 + 0.64 = 0.97 with unit weights)")
i3_dirty = ("Beoing Corporation", "Seattle", "WA", "98004")
print(f"  fms(I3', R1) with unit weights = "
      f"{fms(i3_dirty, r1, UnitWeights(), config):.3f}  (paper: 0.806)")

# --- §4.1 q-grams, min-hash, fmsapx ------------------------------------------

banner("§4.1: q-gram sets and min-hash signatures")
print(f"  QG3('boeing') = {sorted(qgram_set('boeing', 3))}  (paper: boe, oei, ein, ing)")
hasher = MinHasher(q=3, num_hashes=2, seed=config.seed)
for token in ("beoing", "company", "seattle", "wa", "98004"):
    print(f"  mh('{token}') = {hasher.signature(token)}")
i4 = ("Company Beoing", "Seattle", None, "98014")
print(f"\n  fms(I4, R1)    = {fms(i4, r1, weights, config):.3f}")
print(f"  fmsapx(I4, R1) = {fms_apx(i4, r1, weights, config, hasher):.3f}"
      "   (ignores order + missing-column penalties: upper bound)")

# --- §4.2 the ETI relation (Table 3's analogue) -------------------------------

banner("§4.2: the Error Tolerant Index relation (cf. Table 3)")
eti, stats = build_eti(db, reference, config, hasher=hasher)
print(f"  {'QGram':<10} {'Coord':>5} {'Column':>6} {'Freq':>4}  Tid-list")
for row in list(eti.relation.scan())[:14]:
    qgram, coordinate, column, frequency, tid_list = row
    print(f"  {qgram:<10} {coordinate:>5} {column:>6} {frequency:>4}  {tid_list}")
print(f"  ... ({stats.eti_rows} rows total, built from {stats.pre_eti_rows} pre-ETI rows)")

# --- §4.3 query processing ----------------------------------------------------

banner("§4.3: query processing for I1 = [Beoing Company, Seattle, WA, 98004]")
matcher = FuzzyMatcher(reference, weights, config, eti, hasher)
for strategy in ("basic", "osc"):
    result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"), strategy=strategy)
    best = result.best
    print(
        f"  {strategy:<6}: match=R{best.tid} fms={best.similarity:.3f} "
        f"eti_lookups={result.stats.eti_lookups} "
        f"tids_processed={result.stats.tids_processed} "
        f"fetched={result.stats.candidates_fetched} "
        f"osc_succeeded={result.stats.osc_succeeded}"
    )

banner("§4.3.2: the OSC machinery, traced live")
traced = matcher.match(
    ("Beoing Company", "Seattle", "WA", "98004"), strategy="osc", trace=True
)
for line in traced.trace:
    print(f"  {line}")

banner("§5.3: the token transposition extension rescues I4 = [Company Beoing, ...]")
swap_config = config.with_(allow_transpositions=True)
print(f"  fms(I4, R1) without transpositions = {fms(i4, r1, weights, config):.3f}")
print(f"  fms(I4, R1) with    transpositions = {fms(i4, r1, weights, swap_config):.3f}")
