"""§2's size claim: the ETI vs a full q-gram table.

"The error tolerant index relation ETI ... (i) is smaller than a full
q-gram table because we only select (probabilistically) a subset of all
q-grams per tuple."  The ``Full`` signature scheme implements that
baseline (one index row per distinct q-gram per token, à la the
approximate-string-join literature).

The apples-to-apples pair is Q_H vs Full — both index q-grams only, the
former a min-hash subset, the latter all of them — compared on *postings*
(total tid-list entries), the quantity that dominates index storage and
candidate-processing cost.  Q+T_2 (the paper's best performer) is reported
alongside for context.
"""

import time

from benchmarks.conftest import record
from repro.core.config import SignatureScheme
from repro.eval.figures import FigureResult
from repro.eval.metrics import accuracy


def run_batch(matcher, dataset):
    """Accuracy plus mean per-query milliseconds for one strategy."""
    predictions = []
    started = time.perf_counter()
    for dirty in dataset.inputs:
        result = matcher.match(dirty.values)
        predictions.append(
            (result.best.tid if result.best else None, dirty.target_tid)
        )
    elapsed = time.perf_counter() - started
    return accuracy(predictions), 1000.0 * elapsed / len(dataset.inputs)


def test_eti_smaller_than_full_qgram_table(benchmark, workbench):
    dataset = workbench.datasets["D2"]
    variants = (
        (workbench.config_for(SignatureScheme.QGRAMS, 2), "ETI (Q_2)"),
        (workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2), "ETI (Q+T_2)"),
        (
            workbench.base_config.with_(scheme=SignatureScheme.FULL_QGRAMS),
            "full q-gram table",
        ),
    )

    def run():
        rows = []
        for config, label in variants:
            handle = workbench.eti_for(config)
            matcher = workbench.matcher_for(config)
            acc, ms_per_query = run_batch(matcher, dataset)
            rows.append(
                (
                    label,
                    handle.build_stats.tid_entries,
                    handle.build_stats.eti_rows,
                    acc,
                    ms_per_query,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "§2 baseline: ETI vs full q-gram table (D2)",
            ("variant", "postings", "index_rows", "accuracy", "ms_per_query"),
            rows,
        )
    )
    by_label = {row[0]: row for row in rows}
    q2, full = by_label["ETI (Q_2)"], by_label["full q-gram table"]
    # The size claim: min-hash subsetting stores strictly fewer postings.
    assert q2[1] < full[1], f"Q_2 postings {q2[1]} should undercut Full {full[1]}"
    # ... without giving up accuracy.
    assert q2[3] >= full[3] - 0.05