"""Figure 8 — reference tuples fetched per input tuple (D2), OSC split.

Paper's reading: when OSC succeeds only ~1 candidate is fetched per input
tuple; when it fails a much larger set is fetched; the overall average
decreases as the signature grows (more q-grams separate scores better).
"""

from benchmarks.conftest import record
from repro.eval.figures import fig8_candidates


def test_fig8_candidates(benchmark, grid):
    result = benchmark.pedantic(
        fig8_candidates, args=(grid,), rounds=1, iterations=1
    )
    record(result)
    for row in result.rows:
        strategy, overall, on_success, on_failure = row
        assert on_success <= 3.0, (
            f"{strategy}: OSC-success fetches should be ~1, got {on_success}"
        )
        if on_failure:
            assert on_failure > on_success, (
                f"{strategy}: failures should fetch more than successes"
            )
    by_strategy = {row[0]: row[1] for row in result.rows}
    # Larger signatures shrink the candidate set (paper observation ii).
    assert by_strategy["Q+T_3"] <= by_strategy["Q+T_0"] * 1.25
