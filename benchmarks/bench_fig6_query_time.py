"""Figure 6 — normalized elapsed time per strategy per dataset.

The unit is the naive algorithm's per-input-tuple time, so a value below
the number of input tuples means the indexed strategy beats a full scan.
Paper's reading: all strategies process the whole 1655-tuple batch in
under 2.5 units (2–3 orders of magnitude faster than naive); time
decreases with signature size, and Q+T_H is faster than Q_H.
"""

from benchmarks.conftest import NUM_INPUTS, record
from repro.eval.figures import fig6_times


def test_fig6_normalized_times(benchmark, grid, naive_unit):
    result = benchmark.pedantic(
        fig6_times, args=(grid, naive_unit), rounds=1, iterations=1
    )
    record(result)
    for row in result.rows:
        strategy, *times = row
        for value in times:
            # Headline: the whole batch costs far less than naive-scanning
            # every input tuple (NUM_INPUTS units would be break-even).
            assert value < NUM_INPUTS / 4, (
                f"{strategy} too slow: {value:.1f} units for {NUM_INPUTS} inputs"
            )
