"""Write-ahead-log overhead: steady-state matching, checkpoint, recovery.

Match queries are read-only, so once the warehouse is checkpointed the
log should cost almost nothing: the only WAL work on the hot path is a
tail-table lookup per physical page read, and after a checkpoint the
tail is empty.  This benchmark runs the ``bench_batch`` workload
(repeated-token dirty batch, OSC strategy) against the *same* persisted
warehouse opened two ways:

- ``wal_off``: plain ``FileStorage`` — the historical write-in-place
  engine, no crash atomicity.
- ``wal_on``: the same page file behind :class:`~repro.db.wal.WalStorage`
  with an empty (checkpointed) log.

Both modes must produce bit-identical matches (asserted).  The
acceptance bar: WAL-on steady-state throughput within 10% of WAL-off.
Each mode is timed best-of-``REPRO_BENCH_WAL_ROUNDS`` to damp scheduler
noise.  Two latency figures ride along:

- ``checkpoint_seconds``: time for :func:`save_database` to migrate a
  committed transaction's images from the log into the page file.
- ``recovery_seconds``: time for :func:`load_database` to replay a live
  committed tail after an unclean shutdown.

Results go to ``BENCH_wal.json`` at the repository root (mirrored under
``benchmarks/results/``).

Scale is environment-tunable::

    REPRO_BENCH_BATCH_REFERENCE  reference relation size   (default 2000)
    REPRO_BENCH_BATCH_DISTINCT   distinct dirty tuples     (default 75)
    REPRO_BENCH_BATCH_REPEATS    repetitions of each tuple (default 4)
    REPRO_BENCH_WAL_ROUNDS       timing rounds per mode    (default 3)
    REPRO_BENCH_WAL_TAIL_ROWS    rows in the ckpt/recovery tail (default 200)

Run directly: ``PYTHONPATH=src python benchmarks/bench_wal.py``.
"""

from __future__ import annotations

import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core.cache import MatcherCaches
from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.db.snapshot import load_database, save_database

REFERENCE_SIZE = int(os.environ.get("REPRO_BENCH_BATCH_REFERENCE", "2000"))
DISTINCT_INPUTS = int(os.environ.get("REPRO_BENCH_BATCH_DISTINCT", "75"))
REPEATS = int(os.environ.get("REPRO_BENCH_BATCH_REPEATS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_WAL_ROUNDS", "3"))
TAIL_ROWS = int(os.environ.get("REPRO_BENCH_WAL_TAIL_ROWS", "200"))
SEED = 2003
POOL_CAPACITY = 512
THROUGHPUT_GAP_BUDGET_PCT = 10.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATHS = (
    REPO_ROOT / "BENCH_wal.json",
    Path(__file__).resolve().parent / "results" / "BENCH_wal.json",
)

CONFIG = MatchConfig(q=4, signature_size=2, use_osc=True)


def build_warehouse(page_path: str) -> list[tuple[int, list[str]]]:
    """Build, checkpoint, and close the reference warehouse once."""
    from repro.eti.builder import build_eti

    db = Database.on_disk(page_path, pool_capacity=POOL_CAPACITY)
    customers = generate_customers(REFERENCE_SIZE, seed=SEED, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    build_eti(db, reference, CONFIG)
    save_database(db)
    db.close()
    return rows


def make_batch(rows):
    dataset = make_dataset(
        rows, DatasetSpec.preset("D2"), DISTINCT_INPUTS, seed=SEED + 1
    )
    batch = [dirty.values for dirty in dataset.inputs] * REPEATS
    random.Random(SEED + 2).shuffle(batch)
    return batch


def extract(results):
    return [
        [(match.tid, match.similarity) for match in result.matches]
        for result in results
    ]


def time_mode(page_path: str, batch, wal: bool):
    """Best-of-ROUNDS wall time for one cold-pool pass over the batch."""
    best_seconds = None
    view = None
    for _ in range(ROUNDS):
        db = load_database(page_path, pool_capacity=POOL_CAPACITY, wal=wal)
        try:
            reference = ReferenceTable.attach(
                db, "reference", list(CUSTOMER_COLUMNS)
            )
            weights = build_frequency_cache(
                reference.scan_values(), reference.num_columns
            )
            from repro.eti.index import EtiIndex

            eti = EtiIndex(db.relation("eti"))
            matcher = FuzzyMatcher(
                reference, weights, CONFIG, eti, caches=MatcherCaches()
            )
            started = time.perf_counter()
            results = matcher.match_many(batch)
            seconds = time.perf_counter() - started
        finally:
            db.close()
        view = extract(results)
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return best_seconds, view


def time_checkpoint_and_recovery(page_path: str):
    """Latency of checkpointing a committed tail, then of replaying one."""
    # Land TAIL_ROWS in the log as one committed transaction.
    db = load_database(page_path, pool_capacity=POOL_CAPACITY)
    with db.transaction():
        relation = db.relation("reference")
        for i in range(TAIL_ROWS):
            relation.insert(
                (10**6 + i, f"Tail Company {i}", "Tailtown", "TT", "00000")
            )
    tail_pages = db.wal.tail_pages
    started = time.perf_counter()
    save_database(db)
    checkpoint_seconds = time.perf_counter() - started
    db.close()

    # Same transaction again, but close without checkpointing: the next
    # open must replay the committed tail (an unclean shutdown).
    db = load_database(page_path, pool_capacity=POOL_CAPACITY)
    with db.transaction():
        relation = db.relation("reference")
        for i in range(TAIL_ROWS):
            relation.insert(
                (2 * 10**6 + i, f"Crash Company {i}", "Tailtown", "TT", "00000")
            )
    db.close()  # flushes the pool; the log keeps the un-checkpointed tail
    started = time.perf_counter()
    db = load_database(page_path, pool_capacity=POOL_CAPACITY)
    recovery_seconds = time.perf_counter() - started
    recovery = db.wal.recovery
    db.close()
    return {
        "tail_rows": TAIL_ROWS,
        "checkpoint_tail_pages": tail_pages,
        "checkpoint_seconds": checkpoint_seconds,
        "recovery_seconds": recovery_seconds,
        "recovery_committed_txns": recovery.committed_txns,
        "recovery_replayed_pages": recovery.replayed_pages,
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="bench_wal_") as tmp:
        page_path = os.path.join(tmp, "warehouse.pages")
        rows = build_warehouse(page_path)
        batch = make_batch(rows)

        modes = []
        views = {}
        for name, wal in (("wal_off", False), ("wal_on", True)):
            # wal=False deletes a leftover log at save time only; here we
            # just open read-mostly, so order the WAL-off pass first while
            # the log is guaranteed empty either way.
            seconds, view = time_mode(page_path, batch, wal=wal)
            views[name] = view
            modes.append(
                {
                    "name": name,
                    "wal": wal,
                    "seconds": seconds,
                    "queries_per_second": len(batch) / seconds,
                }
            )

        assert views["wal_off"] == views["wal_on"], "WAL-on results diverged"

        latencies = time_checkpoint_and_recovery(page_path)

    off, on = modes
    gap_pct = 100.0 * (on["seconds"] / off["seconds"] - 1.0)
    payload = {
        "benchmark": "wal_overhead",
        "workload": {
            "reference_size": REFERENCE_SIZE,
            "batch_size": DISTINCT_INPUTS * REPEATS,
            "distinct_inputs": DISTINCT_INPUTS,
            "repeats": REPEATS,
            "pool_capacity": POOL_CAPACITY,
            "strategy": "osc",
            "dataset_preset": "D2",
            "rounds": ROUNDS,
        },
        "modes": modes,
        "throughput_gap_pct": gap_pct,
        "throughput_gap_budget_pct": THROUGHPUT_GAP_BUDGET_PCT,
        "latencies": latencies,
    }
    for path in RESULT_PATHS:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")

    for mode in modes:
        print(
            f"  {mode['name']:>7}: {mode['queries_per_second']:8.1f} q/s "
            f"({mode['seconds']:.3f}s)"
        )
    print(f"WAL steady-state overhead: {gap_pct:+.2f}%")
    print(
        f"checkpoint: {latencies['checkpoint_seconds'] * 1000:.1f} ms "
        f"({latencies['checkpoint_tail_pages']} tail pages), "
        f"recovery: {latencies['recovery_seconds'] * 1000:.1f} ms "
        f"({latencies['recovery_replayed_pages']} pages replayed)"
    )
    if gap_pct > THROUGHPUT_GAP_BUDGET_PCT:
        print(
            "WARNING: WAL overhead above the "
            f"{THROUGHPUT_GAP_BUDGET_PCT:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
