"""Verification-kernel benchmarks: bit-parallel ed, budgeted DP, multicore.

Three measurements back the verification fast path (see
``docs/INTERNALS.md``), all parity-checked before any timing is trusted:

1. **Kernel micro-benchmark** — classic two-row DP vs Myers bit-parallel
   vs the banded/thresholded kernel over seeded random token pairs,
   bucketed by token length.  Every pair is first asserted to produce the
   same distance from every kernel (and the banded kernel to honour its
   certified-lower-bound contract).
2. **End-to-end budgeted verification** — the same query workload with
   ``budgeted_verification`` on and off, asserting bit-identical top-K
   and reporting the DP-cell / edit-distance-call reductions from the
   :data:`repro.core.fms.COUNTERS` and :data:`repro.core.kernels.COUNTERS`
   deltas.
3. **Executor scaling** — thread vs process pools at jobs ∈ {1, 2, 4}
   over one batch, bit-identical outputs asserted.  The ``cpus`` field
   records what the numbers mean: on a single-core container the process
   pool pays fork + IPC overhead with no parallelism to buy back, so its
   numbers are honest but unflattering there.

Results go to ``BENCH_kernels.json`` at the repository root (mirrored
under ``benchmarks/results/``).  ``--smoke`` runs a scaled-down version
for CI: it exits nonzero if any parity check fails or the Myers kernel
fails to at least match the classic DP on tokens of ≥ 8 characters.

Run directly: ``PYTHONPATH=src python benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import json
import os
import random
import string
import sys
import time
from pathlib import Path

from repro.core.batch import BatchMatcher
from repro.core.config import MatchConfig
from repro.core.fms import COUNTERS as FMS_COUNTERS
from repro.core.kernels import (
    COUNTERS as KERNEL_COUNTERS,
    bounded_distance,
    classic_distance,
    myers_distance,
)
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.strings import clear_edit_distance_caches
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import build_eti

SEED = 2003
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATHS = (
    REPO_ROOT / "BENCH_kernels.json",
    Path(__file__).resolve().parent / "results" / "BENCH_kernels.json",
)

# (bucket label, min length, max length) for the kernel micro-benchmark.
LENGTH_BUCKETS = (
    ("len_3_7", 3, 7),
    ("len_8_15", 8, 15),
    ("len_16_31", 16, 31),
    ("len_32_63", 32, 63),
    ("len_64_127", 64, 127),
)
ALPHABET = string.ascii_lowercase + " -'"


def make_pairs(rng, low, high, count):
    """Seeded token pairs in a length range, half of them near-duplicates."""
    pairs = []
    for index in range(count):
        length = rng.randint(low, high)
        s1 = "".join(rng.choice(ALPHABET) for _ in range(length))
        if index % 2:
            s2 = "".join(rng.choice(ALPHABET) for _ in range(rng.randint(low, high)))
        else:
            chars = list(s1)
            for _ in range(rng.randint(1, max(1, length // 4))):
                op = rng.random()
                position = rng.randrange(len(chars)) if chars else 0
                if op < 0.4 and chars:
                    chars[position] = rng.choice(ALPHABET)
                elif op < 0.7 and chars:
                    del chars[position]
                else:
                    chars.insert(position, rng.choice(ALPHABET))
            s2 = "".join(chars) or rng.choice(ALPHABET)
        pairs.append((s1, s2))
    return pairs


def time_kernel(kernel, pairs, repeats):
    """Best-of-``repeats`` wall time for one kernel over all pairs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for s1, s2 in pairs:
            kernel(s1, s2)
        best = min(best, time.perf_counter() - started)
    return best


def bench_kernels(pairs_per_bucket, repeats):
    """Micro-benchmark + parity assertion per length bucket."""
    rng = random.Random(SEED)
    buckets = []
    ge8_classic = 0.0
    ge8_myers = 0.0
    for label, low, high in LENGTH_BUCKETS:
        pairs = make_pairs(rng, low, high, pairs_per_bucket)
        for s1, s2 in pairs:
            classic = classic_distance(s1, s2)
            assert myers_distance(s1, s2) == classic, (s1, s2)
            limit = max(len(s1), len(s2)) // 3
            bounded = bounded_distance(s1, s2, limit)
            if classic <= limit:
                assert bounded == classic, (s1, s2, limit)
            else:
                assert limit < bounded <= classic, (s1, s2, limit)
        classic_seconds = time_kernel(classic_distance, pairs, repeats)
        myers_seconds = time_kernel(myers_distance, pairs, repeats)
        third = lambda s1, s2: bounded_distance(s1, s2, max(len(s1), len(s2)) // 3)
        banded_seconds = time_kernel(third, pairs, repeats)
        if low >= 8:
            ge8_classic += classic_seconds
            ge8_myers += myers_seconds
        buckets.append(
            {
                "bucket": label,
                "pairs": len(pairs),
                "classic_seconds": classic_seconds,
                "myers_seconds": myers_seconds,
                "banded_third_seconds": banded_seconds,
                "myers_speedup": classic_seconds / myers_seconds,
                "banded_speedup": classic_seconds / banded_seconds,
            }
        )
    return {
        "buckets": buckets,
        "myers_speedup_tokens_ge8": ge8_classic / ge8_myers,
    }


def build_world(reference_size, inputs):
    """Reference + ETI + dirty queries (same recipe as bench_batch)."""
    customers = generate_customers(reference_size, seed=SEED, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    config = MatchConfig(q=4, signature_size=2, use_osc=True, k=3)
    eti, _ = build_eti(db, reference, config)
    dataset = make_dataset(rows, DatasetSpec.preset("D2"), inputs, seed=SEED + 1)
    queries = [dirty.values for dirty in dataset.inputs]
    return db, reference, weights, config, eti, queries


def bench_budgeted(reference, weights, config, eti, queries, repeats):
    """End-to-end verify cost with the budget on vs off; identical top-K.

    Both matchers are warmed first (tokenization caches, interpreter
    specialization) and timed best-of-``repeats`` with the edit-distance
    memos cleared before every pass, so the on/off comparison measures
    the DP work, not cold-start effects.
    """
    results = {}
    outputs = {}
    for flag in (False, True):
        matcher = FuzzyMatcher(
            reference, weights, config.with_(budgeted_verification=flag), eti
        )
        for values in queries[: max(1, len(queries) // 6)]:
            matcher.match(values)
        seconds = float("inf")
        for _ in range(repeats):
            clear_edit_distance_caches()
            started = time.perf_counter()
            for values in queries:
                matcher.match(values)
            seconds = min(seconds, time.perf_counter() - started)
        clear_edit_distance_caches()
        fms_before = FMS_COUNTERS.snapshot()
        kernel_before = KERNEL_COUNTERS.snapshot()
        batch = [matcher.match(values) for values in queries]
        fms_after = FMS_COUNTERS.snapshot()
        kernel_after = KERNEL_COUNTERS.snapshot()
        outputs[flag] = [
            [(m.tid, m.similarity) for m in result.matches] for result in batch
        ]
        key = "budget_on" if flag else "budget_off"
        results[key] = {
            "seconds": seconds,
            "dp_cells": fms_after[0] - fms_before[0],
            "cutoff_prunes": fms_after[1] - fms_before[1],
            "budget_abandons": fms_after[2] - fms_before[2],
            "verify_budget_prunes": sum(
                result.stats.verify_budget_prunes for result in batch
            ),
            "classic_cells": kernel_after[1] - kernel_before[1],
            "myers_words": kernel_after[3] - kernel_before[3],
            "banded_cells": kernel_after[5] - kernel_before[5],
            "banded_early_exits": kernel_after[6] - kernel_before[6],
        }
    assert outputs[True] == outputs[False], "budgeted verification changed answers"
    on, off = results["budget_on"], results["budget_off"]
    results["dp_cells_saved_fraction"] = (
        1.0 - on["dp_cells"] / off["dp_cells"] if off["dp_cells"] else 0.0
    )
    results["verify_speedup"] = off["seconds"] / on["seconds"]
    return results


def bench_executors(reference, weights, config, eti, queries, repeats):
    """Thread vs process pools at jobs 1/2/4, bit-identical outputs."""
    sequential = FuzzyMatcher(reference, weights, config, eti)
    baseline = [
        [(m.tid, m.similarity) for m in result.matches]
        for result in [sequential.match(values) for values in queries]
    ]
    scaling = []
    for executor in ("thread", "process"):
        for jobs in (1, 2, 4):
            engine = BatchMatcher(
                reference, weights, config, eti, jobs=jobs,
                executor=executor if jobs > 1 else "thread",
            )
            with engine:
                best = float("inf")
                for _ in range(repeats):
                    started = time.perf_counter()
                    results = engine.match_many(queries)
                    best = min(best, time.perf_counter() - started)
                got = [
                    [(m.tid, m.similarity) for m in result.matches]
                    for result in results
                ]
                assert got == baseline, f"{executor} jobs={jobs} diverged"
            scaling.append(
                {
                    "executor": engine.executor,
                    "jobs": jobs,
                    "seconds": best,
                    "queries_per_second": len(queries) / best,
                }
            )
    return scaling


def main(argv):
    """Run all three measurements and write ``BENCH_kernels.json``."""
    smoke = "--smoke" in argv
    pairs_per_bucket = 40 if smoke else 200
    repeats = 1 if smoke else 3
    reference_size = 300 if smoke else 1500
    inputs = 30 if smoke else 120

    kernels = bench_kernels(pairs_per_bucket, repeats)
    db, reference, weights, config, eti, queries = build_world(
        reference_size, inputs
    )
    try:
        budgeted = bench_budgeted(
            reference, weights, config, eti, queries, repeats
        )
        scaling = (
            [] if smoke else bench_executors(
                reference, weights, config, eti, queries, repeats=1
            )
        )
    finally:
        db.close()

    payload = {
        "benchmark": "verification_kernels",
        "cpus": os.cpu_count() or 1,
        "smoke": smoke,
        "kernels": kernels,
        "budgeted_verification": budgeted,
        "executor_scaling": scaling,
    }
    if not smoke:
        for path in RESULT_PATHS:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload, indent=2) + "\n")

    for bucket in kernels["buckets"]:
        print(
            f"  {bucket['bucket']:>11}: myers {bucket['myers_speedup']:5.2f}x, "
            f"banded(limit=n/3) {bucket['banded_speedup']:5.2f}x vs classic"
        )
    ge8 = kernels["myers_speedup_tokens_ge8"]
    print(f"  myers speedup on tokens >= 8 chars: {ge8:.2f}x")
    print(
        f"  budgeted verify: {budgeted['verify_speedup']:.2f}x wall, "
        f"{100 * budgeted['dp_cells_saved_fraction']:.0f}% DP cells saved, "
        f"{budgeted['budget_on']['budget_abandons']} budget abandons, "
        f"identical top-K"
    )
    for mode in scaling:
        print(
            f"  {mode['executor']:>7} jobs={mode['jobs']}: "
            f"{mode['queries_per_second']:7.1f} q/s"
        )

    failed = False
    if ge8 < 1.0:
        print("FAIL: Myers slower than classic on >= 8-char tokens", file=sys.stderr)
        failed = True
    if budgeted["budget_on"]["dp_cells"] > budgeted["budget_off"]["dp_cells"]:
        print("FAIL: budgeted verification did not reduce DP cells", file=sys.stderr)
        failed = True
    if not smoke and ge8 < 3.0:
        print("WARNING: below the 3x acceptance target", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
