"""Resilience overhead: checksums + budget metering on the hot path.

The resilience layer must be cheap when nothing is failing: CRC32
verification happens only on *physical* page reads, and budget metering is
a couple of counter comparisons per index entry.  This benchmark runs the
``bench_batch`` workload (repeated-token dirty batch, OSC strategy) in two
modes over the same data:

- ``baseline``: checksum verification off, no resilience policy — the
  fastest the engine goes.
- ``guarded``: checksum verification on plus a :class:`ResiliencePolicy`
  with a generous budget (so the metering code runs on every query but
  never trips).

Both modes must produce bit-identical matches (asserted).  The acceptance
bar: guarded overhead under 5% of baseline throughput.  Each mode is timed
best-of-``REPRO_BENCH_RESILIENCE_ROUNDS`` to damp scheduler noise.

Results go to ``BENCH_resilience.json`` at the repository root (mirrored
under ``benchmarks/results/``).

Scale is environment-tunable::

    REPRO_BENCH_BATCH_REFERENCE    reference relation size   (default 2000)
    REPRO_BENCH_BATCH_DISTINCT     distinct dirty tuples     (default 75)
    REPRO_BENCH_BATCH_REPEATS      repetitions of each tuple (default 4)
    REPRO_BENCH_RESILIENCE_ROUNDS  timing rounds per mode    (default 3)

Run directly: ``PYTHONPATH=src python benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

from repro.core.cache import MatcherCaches
from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.resilience import QueryBudget, ResiliencePolicy
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.db.pager import BufferPool, InMemoryStorage

REFERENCE_SIZE = int(os.environ.get("REPRO_BENCH_BATCH_REFERENCE", "2000"))
DISTINCT_INPUTS = int(os.environ.get("REPRO_BENCH_BATCH_DISTINCT", "75"))
REPEATS = int(os.environ.get("REPRO_BENCH_BATCH_REPEATS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_RESILIENCE_ROUNDS", "3"))
SEED = 2003
# Small enough that queries generate real physical reads (so checksum
# verification actually runs), large enough to stay realistic.
POOL_CAPACITY = 512
OVERHEAD_BUDGET_PCT = 5.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATHS = (
    REPO_ROOT / "BENCH_resilience.json",
    Path(__file__).resolve().parent / "results" / "BENCH_resilience.json",
)


def build_world(verify_checksums: bool):
    """The bench_batch workload over a pool with verification on or off."""
    from repro.eti.builder import build_eti

    pool = BufferPool(
        InMemoryStorage(),
        capacity=POOL_CAPACITY,
        verify_checksums=verify_checksums,
    )
    db = Database(pool)
    customers = generate_customers(REFERENCE_SIZE, seed=SEED, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    config = MatchConfig(q=4, signature_size=2, use_osc=True)
    eti, _ = build_eti(db, reference, config)

    dataset = make_dataset(
        rows, DatasetSpec.preset("D2"), DISTINCT_INPUTS, seed=SEED + 1
    )
    batch = [dirty.values for dirty in dataset.inputs] * REPEATS
    random.Random(SEED + 2).shuffle(batch)
    return db, pool, reference, weights, config, eti, batch


def extract(results):
    return [
        [(match.tid, match.similarity) for match in result.matches]
        for result in results
    ]


def time_mode(pool, reference, weights, config, eti, batch, policy):
    """Best-of-ROUNDS wall time for one pass over the batch."""
    best_seconds = None
    view = None
    for _ in range(ROUNDS):
        pool.drop_cache()  # start each round with the same cold pool
        matcher = FuzzyMatcher(
            reference,
            weights,
            config,
            eti,
            caches=MatcherCaches(),
            resilience=policy,
        )
        started = time.perf_counter()
        results = matcher.match_many(batch)
        seconds = time.perf_counter() - started
        view = extract(results)
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return best_seconds, view, pool.stats.physical_reads


def main() -> int:
    generous = ResiliencePolicy(
        budget=QueryBudget(deadline=3600.0, max_page_fetches=10**9)
    )
    modes = []
    views = {}
    for name, verify, policy in (
        ("baseline", False, None),
        ("guarded", True, generous),
    ):
        db, pool, reference, weights, config, eti, batch = build_world(verify)
        try:
            seconds, view, physical_reads = time_mode(
                pool, reference, weights, config, eti, batch, policy
            )
        finally:
            db.close()
        views[name] = view
        modes.append(
            {
                "name": name,
                "verify_checksums": verify,
                "budget_metering": policy is not None,
                "seconds": seconds,
                "queries_per_second": len(batch) / seconds,
                "physical_reads": physical_reads,
            }
        )

    assert views["baseline"] == views["guarded"], "guarded results diverged"

    baseline, guarded = modes
    overhead_pct = 100.0 * (guarded["seconds"] / baseline["seconds"] - 1.0)
    payload = {
        "benchmark": "resilience_overhead",
        "workload": {
            "reference_size": REFERENCE_SIZE,
            "batch_size": DISTINCT_INPUTS * REPEATS,
            "distinct_inputs": DISTINCT_INPUTS,
            "repeats": REPEATS,
            "pool_capacity": POOL_CAPACITY,
            "strategy": "osc",
            "dataset_preset": "D2",
            "rounds": ROUNDS,
        },
        "modes": modes,
        "overhead_pct": overhead_pct,
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
    }
    for path in RESULT_PATHS:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")

    for mode in modes:
        print(
            f"  {mode['name']:>9}: {mode['queries_per_second']:8.1f} q/s "
            f"({mode['seconds']:.3f}s, {mode['physical_reads']} physical reads)"
        )
    print(f"checksum+budget overhead: {overhead_pct:+.2f}%")
    if overhead_pct > OVERHEAD_BUDGET_PCT:
        print(
            f"WARNING: overhead above the {OVERHEAD_BUDGET_PCT:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
