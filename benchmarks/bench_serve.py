"""Serving-layer overhead and overload behaviour: ``BENCH_serve.json``.

Measures the online serving story end to end against an in-process
:class:`~repro.serve.server.MatchServer` over real TCP:

- ``direct`` — the baseline: the same per-thread matcher the server's
  workers use, called in a plain loop.  Its p50 is the floor the wire
  path is judged against.
- ``serve_1x`` — one closed-loop client: exactly one request in flight,
  so nothing queues and the measured p50 is the direct path plus the
  serving layer (wire, admission, deadline stamping, worker hand-off).
  This is the level the overhead gate is judged on.
- ``serve_2x`` / ``serve_10x`` — 2 and 10 closed-loop clients *per
  server worker* (no think time), offered load well past service
  capacity.  Each level records throughput, latency percentiles
  (p50/p95/p99), and the outcome mix — completed / degraded / shed
  rates.
- ``hostile`` — a slowloris (one byte then silence) and a 64 MiB
  unterminated frame attack the server while a well-behaved client
  keeps querying.  Both attackers must be disconnected within their
  budgets and the well-behaved client must see only typed outcomes.
- ``metrics`` — the same 1x closed loop run twice, with the whole
  observability plane (registry recording + request tracing) switched
  off and then on.  The gate: metrics-on p50 within 5% of metrics-off
  p50 plus a fixed sub-ms allowance.
- ``stats_probe`` — a live full-section ``stats`` request after the
  load levels: the latency histograms and ETI lookup counters must be
  non-zero, the buffer-pool hit rate present, and the retained slowest
  trace must span serve → matcher → db.  This is a correctness gate,
  enforced even under ``--smoke``.

The acceptance gate: at 1x offered load the served p50 must be within
10% plus a fixed 2ms wire allowance of the direct p50 (admission,
deadline stamping, and the JSON protocol are cheap), and no request at
any level may resolve to an untyped error.  The full run exits 1 when
the gate fails; ``--smoke`` (the CI mode) still records the numbers but
never fails on timing, only on correctness.

Scale is environment-tunable::

    REPRO_BENCH_SERVE_REFERENCE   reference relation size   (default 1500)
    REPRO_BENCH_SERVE_DISTINCT    distinct dirty tuples     (default 60)
    REPRO_BENCH_SERVE_REQUESTS    requests per client       (default 40)
    REPRO_BENCH_SERVE_WORKERS     server worker threads     (default 4)

Run directly: ``PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import socket
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.core.batch import BatchMatcher
from repro.core.config import MatchConfig
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import build_eti
from repro.serve.client import ServeClient
from repro.serve.protocol import PRIORITY_BULK, PRIORITY_INTERACTIVE
from repro.serve.server import MatchServer, ServeConfig

REFERENCE_SIZE = int(os.environ.get("REPRO_BENCH_SERVE_REFERENCE", "1500"))
DISTINCT_INPUTS = int(os.environ.get("REPRO_BENCH_SERVE_DISTINCT", "60"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "40"))
WORKERS = int(os.environ.get("REPRO_BENCH_SERVE_WORKERS", "4"))
SEED = 2003

#: Fixed allowance for the wire itself (connect/JSON/syscalls), so the
#: 10% relative gate stays meaningful when direct queries are sub-ms.
WIRE_ALLOWANCE_S = 0.002

#: Fixed allowance for the metrics-on/off comparison: at sub-ms p50 a
#: bare 5% relative gate would be under scheduler jitter.
METRICS_ALLOWANCE_S = 0.00015

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATHS = (
    REPO_ROOT / "BENCH_serve.json",
    Path(__file__).resolve().parent / "results" / "BENCH_serve.json",
)


def build_world(reference_size, distinct_inputs):
    customers = generate_customers(reference_size, seed=SEED, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    config = MatchConfig(q=4, signature_size=2, use_osc=True)
    eti, _ = build_eti(db, reference, config)
    dataset = make_dataset(
        rows, DatasetSpec.preset("D2"), distinct_inputs, seed=SEED + 1
    )
    inputs = [dirty.values for dirty in dataset.inputs]
    return db, reference, weights, config, eti, inputs


def percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))]


def latency_summary(samples):
    return {
        "p50_ms": round(percentile(samples, 0.50) * 1000, 3),
        "p95_ms": round(percentile(samples, 0.95) * 1000, 3),
        "p99_ms": round(percentile(samples, 0.99) * 1000, 3),
        "mean_ms": round(statistics.fmean(samples) * 1000, 3)
        if samples
        else 0.0,
    }


def run_direct(engine, inputs, requests):
    """The baseline: the server worker's own code path, no wire."""
    matcher = engine.worker_matcher()
    rng = random.Random(SEED + 7)
    for _ in range(min(10, requests)):  # warm caches like a live worker
        matcher.match(inputs[rng.randrange(len(inputs))])
    latencies = []
    started = time.perf_counter()
    for _ in range(requests):
        values = inputs[rng.randrange(len(inputs))]
        t0 = time.perf_counter()
        matcher.match(values)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    return {
        "name": "direct",
        "requests": requests,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 1),
        "latency": latency_summary(latencies),
    }


def run_load_level(host, port, inputs, clients, requests_per_client, level_seed):
    """Closed-loop clients hammering the server; returns the level record."""
    latencies_lock = threading.Lock()
    latencies = []
    outcomes = {"completed": 0, "degraded": 0, "shed": 0, "error": 0}

    def client_loop(worker_index):
        rng = random.Random(level_seed * 1000 + worker_index)
        local_latencies = []
        local_outcomes = dict.fromkeys(outcomes, 0)
        with ServeClient(host, port) as client:
            for _ in range(requests_per_client):
                values = inputs[rng.randrange(len(inputs))]
                priority = (
                    PRIORITY_BULK if rng.random() < 0.5 else PRIORITY_INTERACTIVE
                )
                t0 = time.perf_counter()
                response = client.match(values, priority=priority)
                local_latencies.append(time.perf_counter() - t0)
                local_outcomes[response["outcome"]] += 1
        with latencies_lock:
            latencies.extend(local_latencies)
            for key, count in local_outcomes.items():
                outcomes[key] += count

    threads = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    total = clients * requests_per_client
    answered = outcomes["completed"] + outcomes["degraded"]
    return {
        "clients": clients,
        "requests": total,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(answered / elapsed, 1),
        "latency": latency_summary(latencies),
        "outcomes": dict(outcomes),
        "shed_rate": round(outcomes["shed"] / total, 4),
        "degraded_rate": round(outcomes["degraded"] / total, 4),
    }


def run_metrics_comparison(server, host, port, inputs, requests):
    """A/B the observability plane at 1x load: recording off, then on.

    Both runs are the same single-client closed loop, so the only
    difference is whether instruments record and request span trees are
    captured.  The gate: metrics-on p50 within 5% of metrics-off p50
    plus :data:`METRICS_ALLOWANCE_S`.
    """
    server.set_metrics_enabled(False)
    off = run_load_level(
        host, port, inputs, clients=1, requests_per_client=requests,
        level_seed=31,
    )
    server.set_metrics_enabled(True)
    on = run_load_level(
        host, port, inputs, clients=1, requests_per_client=requests,
        level_seed=37,
    )
    off_p50 = off["latency"]["p50_ms"]
    on_p50 = on["latency"]["p50_ms"]
    budget_ms = off_p50 * 1.05 + METRICS_ALLOWANCE_S * 1000
    return {
        "metrics_off_p50_ms": off_p50,
        "metrics_on_p50_ms": on_p50,
        "budget_ms": round(budget_ms, 3),
        "within_gate": on_p50 <= budget_ms,
        "off": off,
        "on": on,
    }


def _span_names(node):
    names = [node["name"]]
    for child in node.get("children", []):
        names.extend(_span_names(child))
    return names


def run_stats_probe(host, port):
    """Fetch a live full-section stats payload and check its substance.

    After the load levels the serving plane must be able to *show* the
    work it did: non-zero latency histograms and ETI lookup counters, a
    buffer-pool hit rate, and a retained trace whose span tree reaches
    from the serve root through the matcher into the db layer.
    """
    with ServeClient(host, port) as client:
        payload = client.stats(["serve", "metrics", "traces"])
    problems = []
    metrics = payload.get("metrics", {})
    counters = {
        (series["name"], tuple(sorted(series["labels"].items()))): series["value"]
        for series in metrics.get("counters", [])
    }
    eti_lookups = counters.get(("repro_match_eti_lookups_total", ()), 0)
    if eti_lookups <= 0:
        problems.append("ETI lookup counter is zero")
    request_hists = [
        series
        for series in metrics.get("histograms", [])
        if series["name"] == "repro_serve_request_seconds" and series["count"]
    ]
    if not request_hists or all(s["sum"] <= 0 for s in request_hists):
        problems.append("request latency histograms are empty")
    gauges = {s["name"]: s["value"] for s in metrics.get("gauges", [])}
    if "repro_pool_hit_rate" not in gauges:
        problems.append("pool hit rate gauge missing")
    slowest = payload.get("traces", {}).get("slowest")
    names = _span_names(slowest) if slowest else []
    for needed in ("request", "matcher", "db"):
        if needed not in names:
            problems.append(f"slowest trace lacks a {needed!r} span")
    return {
        "eti_lookups": eti_lookups,
        "request_latency_count": sum(s["count"] for s in request_hists),
        "pool_hit_rate": gauges.get("repro_pool_hit_rate"),
        "slowest_trace_spans": names,
        "ok": not problems,
        "problems": problems,
    }


def run_hostile_mix(host, port, inputs, requests, frame_timeout_s, oversize_bytes):
    """Hostile clients alongside a well-behaved one.

    Two attackers run concurrently with a normal closed-loop client: a
    slowloris (one byte, then silence) and an oversized single-line
    frame (``oversize_bytes`` with no newline).  The record captures how
    long each attacker held its connection before the server cut it off,
    and the well-behaved client's outcome mix and latency — which must
    be all-typed and unharmed while the attacks are in flight.
    """
    slow = {}
    oversized = {}

    def slowloris():
        t0 = time.perf_counter()
        try:
            with socket.create_connection((host, port), timeout=30.0) as sock:
                sock.settimeout(30.0)
                sock.sendall(b"{")  # arm the frame deadline, then stall
                with sock.makefile("rb") as reader:
                    slow["response"] = reader.readline().decode("ascii", "replace")
                    reader.readline()  # EOF: the server hung up
        except OSError:
            pass
        slow["held_s"] = time.perf_counter() - t0

    def oversize():
        blob = b"x" * oversize_bytes  # one giant line, never terminated
        t0 = time.perf_counter()
        try:
            with socket.create_connection((host, port), timeout=30.0) as sock:
                sock.settimeout(30.0)
                try:
                    sock.sendall(blob)
                except OSError:
                    pass  # the server stopped reading and closed: expected
                with sock.makefile("rb") as reader:
                    oversized["response"] = reader.readline().decode(
                        "ascii", "replace"
                    )
                    reader.readline()
        except OSError:
            pass
        oversized["held_s"] = time.perf_counter() - t0

    well_behaved = {}

    def normal_client():
        rng = random.Random(SEED + 99)
        latencies = []
        outcomes = {"completed": 0, "degraded": 0, "shed": 0, "error": 0}
        with ServeClient(host, port) as client:
            for _ in range(requests):
                values = inputs[rng.randrange(len(inputs))]
                t0 = time.perf_counter()
                response = client.match(values)
                latencies.append(time.perf_counter() - t0)
                outcomes[response["outcome"]] += 1
        well_behaved["latency"] = latency_summary(latencies)
        well_behaved["outcomes"] = outcomes

    threads = [
        threading.Thread(target=fn)
        for fn in (slowloris, oversize, normal_client)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # The slowloris is cut at the frame deadline; the oversized frame is
    # cut as soon as the drain budget is spent (transfer time dominates).
    slow_budget = frame_timeout_s + 5.0
    oversize_budget = 30.0
    return {
        "slowloris": {
            "held_s": round(slow.get("held_s", 0.0), 3),
            "budget_s": slow_budget,
            "disconnected_within_budget": slow.get("held_s", 0.0) <= slow_budget,
        },
        "oversized_frame": {
            "bytes": oversize_bytes,
            "held_s": round(oversized.get("held_s", 0.0), 3),
            "budget_s": oversize_budget,
            "disconnected_within_budget": oversized.get("held_s", 0.0)
            <= oversize_budget,
        },
        "well_behaved": well_behaved,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI: records numbers, never fails on timing",
    )
    args = parser.parse_args(argv)

    reference_size = 300 if args.smoke else REFERENCE_SIZE
    distinct_inputs = 20 if args.smoke else DISTINCT_INPUTS
    requests_per_client = 8 if args.smoke else REQUESTS_PER_CLIENT
    workers = 2 if args.smoke else WORKERS

    db, reference, weights, config, eti, inputs = build_world(
        reference_size, distinct_inputs
    )
    engine = BatchMatcher(reference, weights, config, eti, jobs=workers)
    serve_config = ServeConfig(
        workers=workers,
        queue_capacity=max(16, workers * 8),
        default_deadline_ms=250.0,
        degrade_p95_s=0.050,
        recover_p95_s=0.010,
        shed_p95_s=0.100,
        stage_cooldown_s=0.25,
        # Boundary limits the hostile mix leans on: a slowloris is cut
        # after one second, an unterminated flood after ~2 MiB.
        frame_timeout_s=1.0,
    )
    server = MatchServer(engine=engine, config=serve_config)
    levels = {}
    try:
        direct = run_direct(
            engine, inputs, workers * requests_per_client
        )
        host, port = server.start()
        # 1x is a single in-flight request (no queueing, no GIL
        # timeslicing between workers) so the gate measures the serving
        # layer itself; the overload levels scale clients per worker.
        for multiple, clients in ((1, 1), (2, workers * 2), (10, workers * 10)):
            levels[f"serve_{multiple}x"] = run_load_level(
                host,
                port,
                inputs,
                clients=clients,
                requests_per_client=requests_per_client,
                level_seed=multiple,
            )
        metrics_comparison = run_metrics_comparison(
            server, host, port, inputs, requests_per_client
        )
        stats_probe = run_stats_probe(host, port)
        hostile = run_hostile_mix(
            host,
            port,
            inputs,
            requests=requests_per_client,
            frame_timeout_s=serve_config.frame_timeout_s,
            oversize_bytes=(4 << 20) if args.smoke else (64 << 20),
        )
        queue_max_depth = server.queue.max_depth
        stage_trips = server.ladder.trips()
    finally:
        server.shutdown(drain_budget_s=10.0)
        engine.close()
        db.close()

    direct_p50 = direct["latency"]["p50_ms"]
    served_p50 = levels["serve_1x"]["latency"]["p50_ms"]
    overhead_budget_ms = direct_p50 * 1.10 + WIRE_ALLOWANCE_S * 1000
    overhead_ok = served_p50 <= overhead_budget_ms
    errors = sum(level["outcomes"]["error"] for level in levels.values())
    errors += metrics_comparison["off"]["outcomes"]["error"]
    errors += metrics_comparison["on"]["outcomes"]["error"]

    payload = {
        "benchmark": "serve_overhead_and_overload",
        "smoke": args.smoke,
        "cpus": os.cpu_count() or 1,
        "workload": {
            "reference_size": reference_size,
            "distinct_inputs": distinct_inputs,
            "requests_per_client": requests_per_client,
            "server_workers": workers,
            "dataset_preset": "D2",
            "default_deadline_ms": 250.0,
        },
        "direct": direct,
        "levels": levels,
        "hostile": hostile,
        "queue_max_depth": queue_max_depth,
        "queue_capacity": serve_config.queue_capacity,
        "stage_trips": stage_trips,
        "overhead": {
            "direct_p50_ms": direct_p50,
            "serve_1x_p50_ms": served_p50,
            "budget_ms": round(overhead_budget_ms, 3),
            "within_gate": overhead_ok,
        },
        "metrics_overhead": metrics_comparison,
        "stats_probe": stats_probe,
    }
    for path in RESULT_PATHS:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"direct: {direct['throughput_rps']:.0f} q/s, "
        f"p50 {direct_p50:.2f}ms"
    )
    for name, level in levels.items():
        print(
            f"  {name:>9}: {level['throughput_rps']:7.0f} answered/s  "
            f"p50 {level['latency']['p50_ms']:7.2f}ms  "
            f"p95 {level['latency']['p95_ms']:7.2f}ms  "
            f"p99 {level['latency']['p99_ms']:7.2f}ms  "
            f"shed {100 * level['shed_rate']:5.1f}%  "
            f"degraded {100 * level['degraded_rate']:5.1f}%"
        )
    print(
        f"1x wire overhead: p50 {served_p50:.2f}ms vs budget "
        f"{overhead_budget_ms:.2f}ms ({'OK' if overhead_ok else 'OVER'})"
    )
    print(
        f"metrics overhead: p50 off {metrics_comparison['metrics_off_p50_ms']:.2f}ms "
        f"on {metrics_comparison['metrics_on_p50_ms']:.2f}ms vs budget "
        f"{metrics_comparison['budget_ms']:.2f}ms "
        f"({'OK' if metrics_comparison['within_gate'] else 'OVER'})"
    )
    print(
        f"stats probe: eti_lookups {stats_probe['eti_lookups']}, "
        f"latency samples {stats_probe['request_latency_count']}, "
        f"pool hit rate {stats_probe['pool_hit_rate']}, "
        f"trace spans {'->'.join(stats_probe['slowest_trace_spans'][:3]) or 'none'} "
        f"({'OK' if stats_probe['ok'] else 'MISSING DATA'})"
    )
    print(
        f"hostile: slowloris held {hostile['slowloris']['held_s']:.2f}s, "
        f"oversized held {hostile['oversized_frame']['held_s']:.2f}s, "
        f"well-behaved p50 {hostile['well_behaved']['latency']['p50_ms']:.2f}ms"
    )
    if queue_max_depth > serve_config.queue_capacity:
        print("ERROR: queue grew past capacity", file=sys.stderr)
        return 1
    if errors:
        print(f"ERROR: {errors} requests resolved to errors", file=sys.stderr)
        return 1
    if hostile["well_behaved"]["outcomes"]["error"]:
        print("ERROR: well-behaved client saw errors under attack", file=sys.stderr)
        return 1
    if not (
        hostile["slowloris"]["disconnected_within_budget"]
        and hostile["oversized_frame"]["disconnected_within_budget"]
    ):
        print("ERROR: hostile connection outlived its budget", file=sys.stderr)
        return 1
    if not stats_probe["ok"]:
        # Correctness, not timing: enforced even under --smoke.
        print(
            f"ERROR: stats probe missing data: {stats_probe['problems']}",
            file=sys.stderr,
        )
        return 1
    if not overhead_ok and not args.smoke:
        print("WARNING: 1x p50 overhead above the gate", file=sys.stderr)
        return 1
    if not metrics_comparison["within_gate"] and not args.smoke:
        print(
            "WARNING: metrics-on p50 above the 5% observability gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
