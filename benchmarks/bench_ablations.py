"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the contribution of individual
mechanisms the paper combines:

- OSC on/off at a fixed signature (what §4.3.2 buys);
- the paper's permissive stopping bound vs the provably-safe one;
- IDF weights vs unit weights inside fms (what §3's weighting buys);
- the token insertion factor c_ins;
- the stop-q-gram threshold.
"""

from benchmarks.conftest import record
from repro.core.config import SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.minhash import MinHasher
from repro.eti.builder import build_eti
from repro.eval.figures import FigureResult
from repro.eval.metrics import accuracy, mean


class UnitWeights:
    """Flat weights: disables the IDF idea while keeping everything else."""

    def weight(self, token, column):
        return 1.0

    def frequency(self, token, column):
        return 1


def run_dataset(matcher, dataset, strategy=None):
    predictions = []
    fetched = []
    osc_successes = 0
    for dirty in dataset.inputs:
        result = matcher.match(dirty.values, strategy=strategy)
        best = result.best
        predictions.append((best.tid if best else None, dirty.target_tid))
        fetched.append(result.stats.candidates_fetched)
        osc_successes += result.stats.osc_succeeded
    return {
        "accuracy": accuracy(predictions),
        "avg_fetched": mean(fetched),
        "osc_fraction": osc_successes / max(len(dataset.inputs), 1),
    }


def test_osc_on_off(benchmark, workbench):
    """OSC should cut candidate fetches without hurting accuracy much."""
    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    matcher = workbench.matcher_for(config)
    dataset = workbench.datasets["D2"]

    def run():
        return (
            run_dataset(matcher, dataset, strategy="basic"),
            run_dataset(matcher, dataset, strategy="osc"),
        )

    basic, osc = benchmark.pedantic(run, rounds=1, iterations=1)
    result = FigureResult(
        "Ablation: OSC on/off (D2, Q+T_2)",
        ("variant", "accuracy", "avg_fetched"),
        [
            ("basic (no OSC)", basic["accuracy"], basic["avg_fetched"]),
            ("OSC", osc["accuracy"], osc["avg_fetched"]),
        ],
    )
    record(result)
    assert osc["avg_fetched"] <= basic["avg_fetched"]
    assert osc["accuracy"] >= basic["accuracy"] - 0.05


def test_osc_bound_variants(benchmark, workbench):
    """Paper's permissive stopping bound vs the provably-safe bound."""
    permissive = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    conservative = permissive.with_(osc_conservative=True)
    dataset = workbench.datasets["D2"]

    def run():
        return (
            run_dataset(workbench.matcher_for(permissive), dataset, "osc"),
            run_dataset(
                FuzzyMatcher(
                    workbench.reference,
                    workbench.weights,
                    conservative,
                    workbench.eti_for(permissive).index,
                ),
                dataset,
                "osc",
            ),
        )

    loose, safe = benchmark.pedantic(run, rounds=1, iterations=1)
    result = FigureResult(
        "Ablation: OSC stopping bound (D2, Q+T_2)",
        ("variant", "accuracy", "osc_success_fraction", "avg_fetched"),
        [
            ("paper bound", loose["accuracy"], loose["osc_fraction"], loose["avg_fetched"]),
            ("safe bound", safe["accuracy"], safe["osc_fraction"], safe["avg_fetched"]),
        ],
    )
    record(result)
    # The safe bound trades short-circuit frequency for guarantees.
    assert safe["osc_fraction"] <= loose["osc_fraction"]
    # Accuracy is a wash — and the *permissive* bound can even win:
    # stopping on the highest raw-score tuple acts as a q-gram-overlap
    # prior that finds the seed slightly more often than the candidate
    # set's exact fms argmax.  Assert only that neither collapses.
    assert abs(safe["accuracy"] - loose["accuracy"]) <= 0.06


def test_idf_vs_unit_weights(benchmark, workbench):
    """§3's claim: IDF weighting is what makes fms robust.

    Evaluated under *Type II* errors — the regime the weighting idea
    targets: errors concentrate in frequent (low-IDF) tokens, which unit
    weights penalize as hard as the informative ones.
    """
    from repro.data.datasets import DatasetSpec, ED_VS_FMS_PROBABILITIES

    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    handle = workbench.eti_for(config)
    spec = DatasetSpec("idf-ablation", ED_VS_FMS_PROBABILITIES, method="type2")
    dataset = workbench.custom_dataset(spec)
    idf_matcher = workbench.matcher_for(config)
    unit_matcher = FuzzyMatcher(
        workbench.reference, UnitWeights(), config, handle.index
    )

    def run():
        return (
            run_dataset(idf_matcher, dataset),
            run_dataset(unit_matcher, dataset),
        )

    idf, unit = benchmark.pedantic(run, rounds=1, iterations=1)
    result = FigureResult(
        "Ablation: IDF vs unit token weights (Type II errors, Q+T_2)",
        ("variant", "accuracy"),
        [("IDF weights", idf["accuracy"]), ("unit weights", unit["accuracy"])],
    )
    record(result)
    assert idf["accuracy"] >= unit["accuracy"] - 0.02


def test_cins_sweep(benchmark, workbench):
    """Sensitivity to the token insertion factor."""
    dataset = workbench.datasets["D2"]
    base = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    handle = workbench.eti_for(base)

    def run():
        rows = []
        for cins in (0.0, 0.25, 0.5, 0.75, 1.0):
            config = base.with_(token_insertion_factor=cins)
            matcher = FuzzyMatcher(
                workbench.reference, workbench.weights, config, handle.index
            )
            stats = run_dataset(matcher, dataset)
            rows.append((f"c_ins={cins}", stats["accuracy"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(FigureResult("Ablation: token insertion factor (D2)", ("variant", "accuracy"), rows))
    accuracies = [accuracy for _, accuracy in rows]
    assert max(accuracies) - min(accuracies) < 0.25  # robust, not knife-edge


def test_similarity_threshold_operating_curve(benchmark, workbench):
    """The Figure 1 decision knob: the load threshold c.

    Sweeping the minimum similarity shows the operating curve an ETL
    deployment tunes: higher c loads fewer records automatically but with
    higher precision; the remainder routes to manual cleaning.
    """
    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    matcher = workbench.matcher_for(config)
    dataset = workbench.datasets["D2"]

    def run():
        rows = []
        for threshold in (0.0, 0.3, 0.5, 0.7, 0.9):
            matched = correct = 0
            for dirty in dataset.inputs:
                result = matcher.match(dirty.values, min_similarity=threshold)
                if result.best is None:
                    continue
                matched += 1
                correct += result.best.tid == dirty.target_tid
            coverage = matched / len(dataset.inputs)
            precision = correct / matched if matched else 1.0
            rows.append((f"c={threshold}", coverage, precision))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "Ablation: load-threshold operating curve (D2, Q+T_2)",
            ("variant", "coverage", "precision"),
            rows,
        )
    )
    coverages = [row[1] for row in rows]
    precisions = [row[2] for row in rows]
    assert coverages == sorted(coverages, reverse=True), "coverage falls with c"
    assert precisions[-1] >= precisions[0] - 0.01, "precision rises (or holds) with c"


def test_stop_qgram_threshold(benchmark, workbench):
    """Aggressive stop-q-gram thresholds trade accuracy for smaller lists."""
    dataset = workbench.datasets["D2"]

    def run():
        rows = []
        for threshold in (5, 50, 10_000):
            config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2).with_(
                stop_qgram_threshold=threshold
            )
            hasher = MinHasher(config.q, config.signature_size, config.seed)
            eti, build_stats = build_eti(
                workbench.db,
                workbench.reference,
                config,
                hasher=hasher,
                eti_name=f"eti_stop_{threshold}",
            )
            matcher = FuzzyMatcher(
                workbench.reference, workbench.weights, config, eti, hasher
            )
            stats = run_dataset(matcher, dataset)
            rows.append(
                (f"threshold={threshold}", stats["accuracy"], build_stats.stop_qgrams)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "Ablation: stop q-gram threshold (D2, Q+T_2)",
            ("variant", "accuracy", "stop_qgrams"),
            rows,
        )
    )
    by_threshold = {row[0]: row for row in rows}
    assert by_threshold["threshold=5"][2] > by_threshold["threshold=10000"][2]
    # The paper-default (effectively unlimited here) should be at least as
    # accurate as the aggressive setting.
    assert by_threshold["threshold=10000"][1] >= by_threshold["threshold=5"][1] - 0.02
