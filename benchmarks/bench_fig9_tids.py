"""Figure 9 — tids processed per input tuple (D2).

Paper's reading: the number of tids processed grows with signature size
(more tid-lists fetched), but the growth is more than compensated by the
shrinking candidate set (Figure 8).
"""

from benchmarks.conftest import record
from repro.eval.figures import fig9_tids


def test_fig9_tids_processed(benchmark, grid):
    result = benchmark.pedantic(fig9_tids, args=(grid,), rounds=1, iterations=1)
    record(result)
    by_strategy = {row[0]: row for row in result.rows}
    # More coordinates -> more ETI lookups -> more tids processed.
    assert by_strategy["Q+T_3"][1] > by_strategy["Q+T_0"][1]
    assert by_strategy["Q_3"][2] > by_strategy["Q_1"][2]
    for row in result.rows:
        assert row[1] > 0
