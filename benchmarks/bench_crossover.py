"""§6.2.2.1's break-even claim: when does building the ETI pay off?

"Thus, if we have more than 10 input tuples to fuzzy match, then it seems
advantageous to build the ETI, and use our fuzzy match algorithm."

Measured directly: total cost of (ETI build + N indexed queries) against
N naive-scan queries, reporting the crossover N.  Also §5.1's claim that
transpositions and column weights slot in without re-architecting: the
extension ablations live here because, like the crossover, they are
paper *claims* rather than numbered figures.
"""

from benchmarks.conftest import record
from repro.core.config import SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.eval.figures import FigureResult
from repro.eval.metrics import accuracy


def test_eti_break_even(benchmark, workbench, naive_unit):
    """The ETI pays for itself within tens of queries, not thousands."""
    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    handle = workbench.eti_for(config)
    matcher = workbench.matcher_for(config)
    dataset = workbench.datasets["D2"]

    def run():
        import time

        started = time.perf_counter()
        for dirty in dataset.inputs:
            matcher.match(dirty.values)
        query_seconds = time.perf_counter() - started
        return query_seconds / len(dataset.inputs)

    per_query_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    build_seconds = handle.build_stats.elapsed_seconds
    if naive_unit > per_query_seconds:
        crossover = build_seconds / (naive_unit - per_query_seconds)
    else:
        crossover = float("inf")
    result = FigureResult(
        "§6.2.2.1: ETI break-even point (D2, Q+T_2)",
        ("quantity", "value"),
        [
            ("ETI build (naive-tuple units)", build_seconds / naive_unit),
            ("indexed query (naive-tuple units)", per_query_seconds / naive_unit),
            ("break-even (queries)", crossover),
        ],
    )
    record(result)
    assert per_query_seconds < naive_unit, "an indexed query must beat a full scan"
    assert crossover < 100, (
        f"the ETI should amortize within tens of queries, got {crossover:.0f}"
    )


def test_transposition_extension(benchmark, workbench):
    """§5.3: the token transposition operation helps on reordered inputs.

    Every input has its name tokens reordered *and* a corrupted zipcode:
    with plain fms, the reorder costs two token replacements and the
    similarity gap to other same-city customers narrows; the transposition
    operation restores most of it.  The comparison is on mean similarity
    to the seed tuple (accuracy saturates before the reorder cost shows).
    """
    import random

    from repro.core.fms import fms

    rng = random.Random(35)
    reference_rows = [
        (tid, values)
        for tid, values in workbench.reference.scan()
        if len((values[0] or "").split()) >= 2
    ]
    sample = rng.sample(reference_rows, 80)
    inputs = []
    for tid, values in sample:
        tokens = values[0].split()
        position = rng.randrange(len(tokens) - 1)
        tokens[position], tokens[position + 1] = tokens[position + 1], tokens[position]
        zipcode = list(values[3])
        zipcode[rng.randrange(len(zipcode))] = rng.choice("0123456789")
        inputs.append((tid, (" ".join(tokens), values[1], values[2], "".join(zipcode))))

    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    swap_config = config.with_(allow_transpositions=True)

    def run():
        rows = []
        for cfg, label in ((config, "plain fms"), (swap_config, "with transpositions")):
            similarities = [
                fms(values, workbench.reference.fetch(tid), workbench.weights, cfg)
                for tid, values in inputs
            ]
            rows.append((label, sum(similarities) / len(similarities)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "§5.3: token transposition extension (every name reordered)",
            ("variant", "mean fms to seed"),
            rows,
        )
    )
    plain, swapped = rows[0][1], rows[1][1]
    assert swapped > plain + 0.02, (
        "the transposition operation must recover reorder cost "
        f"(plain {plain:.3f}, with swaps {swapped:.3f})"
    )


def test_top_k_extension(benchmark, workbench):
    """The K-fuzzy-match extension: "return the closest K reference tuples
    enabling users, if necessary, to choose one among them as the target."

    Measured as accuracy@K — how often the seed tuple appears among the K
    returned matches — on the dirtiest dataset, where a human picking from
    a short list recovers real headroom over the top-1 answer.
    """
    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    matcher = workbench.matcher_for(config)
    dataset = workbench.datasets["D1"]

    def run():
        rows = []
        for k in (1, 3, 5):
            hits = 0
            for dirty in dataset.inputs:
                result = matcher.match(dirty.values, k=k)
                if any(m.tid == dirty.target_tid for m in result.matches):
                    hits += 1
            rows.append((f"K={k}", hits / len(dataset.inputs)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "Extension: accuracy@K on D1 (Q+T_2)",
            ("variant", "accuracy_at_k"),
            rows,
        )
    )
    accuracies = [row[1] for row in rows]
    assert accuracies == sorted(accuracies), "accuracy@K must be monotone in K"
    assert accuracies[-1] >= accuracies[0]


def test_column_weights_extension(benchmark, workbench):
    """§5.2: up-weighting the name column changes ranking as designed.

    With the zipcode column error-free and the name column heavily
    corrupted, down-weighting the name (relative to the rest) should help
    — the match leans on the trustworthy columns.
    """
    from repro.data.datasets import DatasetSpec

    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    handle = workbench.eti_for(config)
    spec = DatasetSpec("nameonly", (0.95, 0.0, 0.0, 0.0))
    dataset = workbench.custom_dataset(spec, seed_offset=9)

    def run():
        rows = []
        for weights, label in (
            (None, "uniform columns"),
            ((0.5, 1.0, 1.0, 2.0), "zip up-weighted"),
        ):
            cfg = config.with_(column_weights=weights)
            matcher = FuzzyMatcher(
                workbench.reference, workbench.weights, cfg, handle.index
            )
            predictions = [
                (
                    (result.best.tid if (result := matcher.match(d.values)).best else None),
                    d.target_tid,
                )
                for d in dataset.inputs
            ]
            rows.append((label, accuracy(predictions)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "§5.2: column weights (name column corrupted, zip clean)",
            ("variant", "accuracy"),
            rows,
        )
    )
    uniform, weighted = rows[0][1], rows[1][1]
    assert weighted >= uniform - 0.02
