"""Scale sweep: the indexed/naive gap widens with the reference relation.

The paper's Figure 6 numbers ("2–3 orders of magnitude faster") come from
a 1.7M-tuple reference; this bench shows the trajectory on growing
synthetic relations — naive cost grows linearly with |R| while indexed
query cost grows with the candidate set, so the speedup factor climbs.
"""

from benchmarks.conftest import record
from repro.core.config import MatchConfig, SignatureScheme
from repro.eval.figures import FigureResult
from repro.eval.harness import Workbench

SCALES = (500, 1000, 2000, 4000)
QUERIES = 40


def test_speedup_grows_with_scale(benchmark):
    def run():
        rows = []
        for scale in SCALES:
            workbench = Workbench(
                num_reference=scale,
                num_inputs=QUERIES,
                seed=101,
                dataset_names=("D2",),
            )
            config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
            stats = workbench.run_batch(config, "D2")
            naive_unit = workbench.naive_unit_time()
            per_query = stats.elapsed_seconds / stats.queries
            rows.append(
                (
                    f"|R|={scale}",
                    naive_unit / per_query,  # speedup factor
                    stats.accuracy,
                )
            )
            workbench.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        FigureResult(
            "Scale sweep: naive/indexed speedup per query (D2, Q+T_2)",
            ("scale", "speedup", "accuracy"),
            rows,
        )
    )
    speedups = [row[1] for row in rows]
    # The robust claim at these scales: the index wins by an order of
    # magnitude everywhere.  The paper's "speedup grows with |R|" trend
    # needs either much larger |R| or a larger token vocabulary — with a
    # synthetic pool, candidate-set growth partially offsets the naive
    # scan's linear growth, and the naive-unit measurement itself carries
    # sampling noise — so growth is reported but not asserted.
    assert all(s > 5.0 for s in speedups), (
        f"indexed must beat naive decisively at every scale: {speedups}"
    )
