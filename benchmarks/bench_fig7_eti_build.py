"""Figure 7 — normalized ETI building time per strategy.

Paper's reading: every build costs < 7 naive-tuple units, so the ETI pays
for itself after ~10 fuzzy match queries; Q+T_H costs more than Q_H (more
pre-ETI rows) and cost grows with H.
"""

from benchmarks.conftest import record
from repro.eval.figures import fig7_build_times


def test_fig7_build_times(benchmark, workbench, naive_unit, grid):
    # `grid` is requested so build times reflect ETIs built for the shared
    # query runs (the workbench caches them).
    result = benchmark.pedantic(
        fig7_build_times, args=(workbench, naive_unit), rounds=1, iterations=1
    )
    record(result)
    by_strategy = {row[0]: row for row in result.rows}

    # More signature coordinates -> more pre-ETI rows.
    assert by_strategy["Q_3"][3] > by_strategy["Q_1"][3]
    # Q+T writes more rows than Q at equal H.
    for h in (1, 2, 3):
        assert by_strategy[f"Q+T_{h}"][3] > by_strategy[f"Q_{h}"][3]
    # Builds are cheap relative to scanning: a handful of naive units per
    # thousand reference tuples, not hundreds.
    for row in result.rows:
        assert row[1] > 0
