"""Figure 5 — accuracy of Q+T_0, Q_1..Q_3, Q+T_1..Q+T_3 on D1, D2, D3.

Paper's reading (1.7M reference tuples, 1655 inputs/dataset):

- min-hash signatures improve accuracy: Q_H (H>0) beats Q+T_0 by 5–25%;
- adding tokens to the signature does not hurt: Q+T_H ≈ Q_H;
- small signatures suffice: Q_2 > Q_1, but Q_3 ≈ Q_2;
- cleaner datasets score higher: D3 > D2 > D1.
"""

from benchmarks.conftest import record
from repro.eval.figures import fig5_accuracy


def test_fig5_accuracy(benchmark, grid):
    result = benchmark.pedantic(fig5_accuracy, args=(grid,), rounds=1, iterations=1)
    record(result)
    by_strategy = {row[0]: row[1:] for row in result.rows}

    # Accuracy ordering across datasets: D1 dirtiest, D3 cleanest.
    for strategy, (d1, d2, d3) in by_strategy.items():
        assert d3 >= d1 - 5.0, f"{strategy}: D3 should not trail D1 ({d3} vs {d1})"

    # Q+T_H tracks Q_H (within a few points) for H > 0.
    for h in (1, 2, 3):
        q = by_strategy[f"Q_{h}"]
        qt = by_strategy[f"Q+T_{h}"]
        for a, b in zip(q, qt):
            assert abs(a - b) <= 10.0, f"Q_{h} vs Q+T_{h} diverge: {a} vs {b}"

    # Signatures help on the dirtiest dataset relative to tokens-only.
    assert by_strategy["Q_2"][0] >= by_strategy["Q+T_0"][0] - 2.0
