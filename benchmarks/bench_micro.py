"""Microbenchmarks of the hot-path primitives (real pytest-benchmark timing).

Unlike the figure benches (single-shot experiment reproductions), these use
pytest-benchmark's statistical timing to track the cost of the operations
the match loop is made of: fms evaluation, ETI lookups, B+-tree access,
min-hash signatures, and the external sort.
"""

import random

from repro.core.config import SignatureScheme
from repro.core.fms import fms
from repro.core.minhash import MinHasher
from repro.core.tokens import TupleTokens
from repro.db.btree import BPlusTree
from repro.db.exsort import external_sort


def test_fms_evaluation(benchmark, workbench):
    """One fms(u, v) evaluation on realistic 4-column customer tuples."""
    rows = list(workbench.reference.scan())
    u = TupleTokens.from_values(("beoing compny", "seattle", "wa", "98004"))
    v = TupleTokens.from_values(rows[0][1])
    config = workbench.base_config
    weights = workbench.weights
    benchmark(lambda: fms(u, v, weights, config))


def test_eti_lookup(benchmark, workbench):
    """One clustered-index ETI lookup."""
    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    eti = workbench.eti_for(config).index
    keys = [
        (row[0], row[1], row[2]) for row in list(eti.relation.scan())[:64]
    ]
    counter = iter(range(10**9))

    def lookup():
        key = keys[next(counter) % len(keys)]
        return eti.lookup(*key)

    benchmark(lookup)


def test_full_match_query(benchmark, workbench):
    """One end-to-end OSC fuzzy match query."""
    config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
    matcher = workbench.matcher_for(config)
    inputs = [d.values for d in workbench.datasets["D2"].inputs]
    counter = iter(range(10**9))

    def query():
        return matcher.match(inputs[next(counter) % len(inputs)])

    benchmark(query)


def test_minhash_signature(benchmark):
    hasher = MinHasher(q=4, num_hashes=3)
    tokens = ["corporation", "international", "manufacturing", "consolidated"]
    counter = iter(range(10**9))

    def signature():
        # Bypass the memo to measure real hashing work.
        hasher._memo.clear()
        return hasher.signature(tokens[next(counter) % len(tokens)])

    benchmark(signature)


def test_btree_point_lookup(benchmark):
    tree = BPlusTree(order=64)
    for i in range(50_000):
        tree.insert(i, i)
    rng = random.Random(4)

    benchmark(lambda: tree.search(rng.randrange(50_000)))


def test_external_sort_spilling(benchmark):
    rng = random.Random(9)
    rows = [(rng.randrange(10_000), i) for i in range(20_000)]

    benchmark.pedantic(
        lambda: list(external_sort(rows, key=lambda r: r[0], memory_limit=2_000)),
        rounds=3,
        iterations=1,
    )
