"""§6.2.1.1 — accuracy of fms vs plain edit distance (Type I and Type II).

Paper's numbers (1.7M reference tuples, ~100 inputs/type):

    Type I :  fms 69%,  ed 63%
    Type II:  fms 95%,  ed 71%

Expected shape: fms >= ed on both error types, with a decisively larger
margin under Type II (frequency-proportional) errors.
"""

from benchmarks.conftest import EDFMS_INPUTS, record
from repro.eval.figures import run_ed_vs_fms


def test_ed_vs_fms_accuracy(benchmark, workbench):
    result = benchmark.pedantic(
        run_ed_vs_fms, args=(workbench,), kwargs={"num_inputs": EDFMS_INPUTS},
        rounds=1, iterations=1,
    )
    record(result)
    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    fms_t1, ed_t1 = rows["Type I"]
    fms_t2, ed_t2 = rows["Type II"]
    # The paper's qualitative claims.  Type I is a small-margin effect
    # (69% vs 63% in the paper) that sample noise can flip at bench scale,
    # so it gets a tolerance; Type II is the headline result (95% vs 71%)
    # and must hold strictly.
    assert fms_t1 >= ed_t1 - 0.06, "fms should not lose to ed under Type I errors"
    assert fms_t2 > ed_t2, "fms must beat ed under Type II errors"
    # The paper's secondary claim — the gap is *larger* under Type II — is
    # a difference of differences; with ~±4% sampling noise per accuracy
    # it needs thousands of inputs to resolve and is not asserted here
    # (EXPERIMENTS.md discusses it).  Both direction claims above are the
    # load-bearing ones.
