"""Figure 10 — OSC success and failure fractions per strategy (D2).

Paper's reading: OSC succeeds for 50–75% of input tuples, and the success
fraction increases with signature size (more q-grams distinguish
similarity scores sooner).
"""

from benchmarks.conftest import record
from repro.eval.figures import fig10_osc


def test_fig10_osc_fractions(benchmark, grid):
    result = benchmark.pedantic(fig10_osc, args=(grid,), rounds=1, iterations=1)
    record(result)
    fractions = {row[0]: row[1] for row in result.rows}
    for strategy, fraction in fractions.items():
        assert 0.25 <= fraction <= 0.95, (
            f"{strategy}: OSC success fraction {fraction:.2f} outside the "
            "paper's qualitative band"
        )
    # Success grows (weakly) with signature size.
    assert fractions["Q+T_3"] >= fractions["Q+T_0"] - 0.05
