"""Shared benchmark fixtures.

One session-scoped :class:`Workbench` backs every per-figure benchmark, so
the seven ETIs and the 3x7 strategy/dataset query grid are computed once.
Scale is environment-tunable:

    REPRO_BENCH_REFERENCE   reference relation size   (default 2000)
    REPRO_BENCH_INPUTS      dirty inputs per dataset  (default 100)
    REPRO_BENCH_EDFMS       inputs for the ed-vs-fms naive comparison
                            (default 60; this one scans the whole
                            reference per input, twice)

Every figure's rendered table is printed and appended to
``benchmarks/results/figures.txt`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.figures import run_strategy_grid
from repro.eval.harness import Workbench

REFERENCE_SIZE = int(os.environ.get("REPRO_BENCH_REFERENCE", "2000"))
NUM_INPUTS = int(os.environ.get("REPRO_BENCH_INPUTS", "100"))
EDFMS_INPUTS = int(os.environ.get("REPRO_BENCH_EDFMS", "60"))

RESULTS_PATH = Path(__file__).parent / "results" / "figures.txt"


@pytest.fixture(scope="session")
def workbench():
    bench = Workbench(
        num_reference=REFERENCE_SIZE, num_inputs=NUM_INPUTS, seed=2003
    )
    yield bench
    bench.close()


@pytest.fixture(scope="session")
def grid(workbench):
    """All paper strategies over D1, D2, D3 — shared by figures 5–10."""
    return run_strategy_grid(workbench)


@pytest.fixture(scope="session")
def naive_unit(workbench):
    return workbench.naive_unit_time()


def record(figure_result) -> str:
    """Print a figure's table (plus a bar chart) and append both to the
    results file."""
    from repro.eval.plots import figure_chart

    text = figure_result.render()
    try:
        chart = figure_chart(figure_result, width=40)
    except (ValueError, TypeError):
        chart = None  # non-numeric first value column; table only
    scale_note = (
        f"[scale: {REFERENCE_SIZE} reference tuples, {NUM_INPUTS} inputs/dataset]"
    )
    block = f"{text}\n{scale_note}\n"
    if chart is not None:
        block += f"\n{chart}\n"
    print("\n" + block)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(RESULTS_PATH, "a") as handle:
        handle.write(block + "\n")
    return text
