"""Batch-engine throughput: sequential (seed) vs cached vs parallel.

Measures the queries/sec trajectory the ISSUE-1 tentpole targets on a
repeated-token batch workload — the shape of Figure 1's ETL loop, where a
dirty feed repeats tuples and (via IDF's long tail) repeats tokens even
between distinct tuples:

- ``seed_sequential``: caches disabled, plain per-tuple ``match`` loop —
  the pre-cache behaviour of the repository.
- ``cached_sequential``: ``FuzzyMatcher.match_many`` with the cross-query
  caches and batch deduplication, one thread.
- ``cached_jobs4``: :class:`repro.core.batch.BatchMatcher` with
  ``jobs=4`` worker threads over the shared read-only ETI.
- ``process_jobs4``: the same engine with ``executor="process"`` — four
  worker *processes*, each owning a private interpreter (no GIL
  contention).  Worth it only on multicore hardware; the recorded
  ``cpus`` field says what the numbers were measured on.

Every mode runs the same batch and must produce bit-identical matches
(asserted).  Results — throughput, speedups, and cache hit-rate counters —
are printed and written to ``BENCH_batch.json`` at the repository root
(and mirrored under ``benchmarks/results/``).

Scale is environment-tunable::

    REPRO_BENCH_BATCH_REFERENCE  reference relation size   (default 2000)
    REPRO_BENCH_BATCH_DISTINCT   distinct dirty tuples     (default 75)
    REPRO_BENCH_BATCH_REPEATS    repetitions of each tuple (default 4)

Run directly: ``PYTHONPATH=src python benchmarks/bench_batch.py``.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

from repro.core.batch import BatchMatcher
from repro.core.cache import MatcherCaches
from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import build_eti

REFERENCE_SIZE = int(os.environ.get("REPRO_BENCH_BATCH_REFERENCE", "2000"))
DISTINCT_INPUTS = int(os.environ.get("REPRO_BENCH_BATCH_DISTINCT", "75"))
REPEATS = int(os.environ.get("REPRO_BENCH_BATCH_REPEATS", "4"))
SEED = 2003

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATHS = (
    REPO_ROOT / "BENCH_batch.json",
    Path(__file__).resolve().parent / "results" / "BENCH_batch.json",
)


def build_world():
    """Reference relation + ETI + a repeated-tuple dirty batch."""
    customers = generate_customers(REFERENCE_SIZE, seed=SEED, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    config = MatchConfig(q=4, signature_size=2, use_osc=True)
    eti, _ = build_eti(db, reference, config)

    dataset = make_dataset(
        rows, DatasetSpec.preset("D2"), DISTINCT_INPUTS, seed=SEED + 1
    )
    distinct = [dirty.values for dirty in dataset.inputs]
    batch = distinct * REPEATS
    random.Random(SEED + 2).shuffle(batch)
    return db, reference, weights, config, eti, batch


def extract(results):
    """Comparable view of the matches: [(tid, similarity), ...] per query."""
    return [
        [(match.tid, match.similarity) for match in result.matches]
        for result in results
    ]


def run_modes(reference, weights, config, eti, batch):
    """Time each execution mode on the same batch; verify identical output."""
    modes = []

    seed_matcher = FuzzyMatcher(
        reference, weights, config, eti, caches=MatcherCaches.disabled()
    )
    started = time.perf_counter()
    seed_results = [seed_matcher.match(values) for values in batch]
    seed_seconds = time.perf_counter() - started
    baseline = extract(seed_results)
    modes.append(
        {
            "name": "seed_sequential",
            "seconds": seed_seconds,
            "queries_per_second": len(batch) / seed_seconds,
            "cache_counters": seed_matcher.caches.counters(),
        }
    )

    cached_matcher = FuzzyMatcher(reference, weights, config, eti)
    started = time.perf_counter()
    cached_results = cached_matcher.match_many(batch)
    cached_seconds = time.perf_counter() - started
    assert extract(cached_results) == baseline, "cached results diverged"
    modes.append(
        {
            "name": "cached_sequential",
            "seconds": cached_seconds,
            "queries_per_second": len(batch) / cached_seconds,
            "cache_counters": cached_matcher.caches.counters(),
        }
    )

    with BatchMatcher(reference, weights, config, eti, jobs=4) as engine:
        started = time.perf_counter()
        parallel_results = engine.match_many(batch)
        parallel_seconds = time.perf_counter() - started
        assert extract(parallel_results) == baseline, "parallel results diverged"
        modes.append(
            {
                "name": "cached_jobs4",
                "executor": engine.executor,
                "seconds": parallel_seconds,
                "queries_per_second": len(batch) / parallel_seconds,
                "cache_counters": engine.cache_counters(),
                "deduplicated_queries": engine.last_report.deduplicated_queries,
            }
        )

    with BatchMatcher(
        reference, weights, config, eti, jobs=4, executor="process"
    ) as engine:
        started = time.perf_counter()
        process_results = engine.match_many(batch)
        process_seconds = time.perf_counter() - started
        assert extract(process_results) == baseline, "process results diverged"
        modes.append(
            {
                "name": "process_jobs4",
                "executor": engine.executor,
                "seconds": process_seconds,
                "queries_per_second": len(batch) / process_seconds,
                "deduplicated_queries": engine.last_report.deduplicated_queries,
            }
        )

    seed_qps = modes[0]["queries_per_second"]
    for mode in modes:
        mode["speedup_vs_seed"] = mode["queries_per_second"] / seed_qps
    return modes


def main() -> int:
    """Run the trajectory, print it, and write ``BENCH_batch.json``."""
    db, reference, weights, config, eti, batch = build_world()
    try:
        modes = run_modes(reference, weights, config, eti, batch)
    finally:
        db.close()

    payload = {
        "benchmark": "batch_engine_throughput",
        "cpus": os.cpu_count() or 1,
        "workload": {
            "reference_size": REFERENCE_SIZE,
            "batch_size": len(batch),
            "distinct_inputs": DISTINCT_INPUTS,
            "repeats": REPEATS,
            "strategy": "osc",
            "dataset_preset": "D2",
        },
        "modes": modes,
    }
    for path in RESULT_PATHS:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"batch of {len(batch)} queries ({DISTINCT_INPUTS} distinct), "
          f"reference {REFERENCE_SIZE}")
    for mode in modes:
        print(
            f"  {mode['name']:>17}: {mode['queries_per_second']:8.1f} q/s "
            f"({mode['speedup_vs_seed']:.2f}x vs seed)"
        )
    best = max(mode["speedup_vs_seed"] for mode in modes[1:])
    print(f"best speedup vs seed sequential: {best:.2f}x")
    if best < 2.0:
        print("WARNING: below the 2x acceptance target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
