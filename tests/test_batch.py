"""The batch/parallel query engine: determinism, dedup, and the CLI path.

The headline guarantee: :class:`BatchMatcher` with any ``jobs`` count
returns results in input order that are bit-identical to the sequential
per-tuple path — parallel execution is an implementation detail, never a
semantic one.
"""

import csv
import json

import pytest

from repro.cli import main as cli_main
from repro.core.batch import BatchMatcher, BatchReport
from repro.core.cache import MatcherCaches
from repro.core.matcher import FuzzyMatcher

from tests.conftest import ORG_INPUTS
from tests.test_cache import build_error_injected_world, result_view


@pytest.fixture(scope="module")
def world():
    db, reference, weights, config, eti, batch = build_error_injected_world(
        num_reference=200, num_inputs=40, repeats=3
    )
    yield reference, weights, config, eti, batch
    db.close()


class TestMatchManyDedup:
    def test_duplicates_matched_once_and_flagged(self, world):
        reference, weights, config, eti, _ = world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        values = ORG_INPUTS[0][0][:2] + ("WA", "98004")
        batch = [values, values, values]
        results = matcher.match_many(batch)
        flags = [result.stats.deduplicated for result in results]
        assert flags == [False, True, True]
        assert result_view([results[0]]) == result_view([results[1]])

    def test_replicas_are_independent_objects(self, world):
        reference, weights, config, eti, batch = world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        first, second = matcher.match_many([batch[0], batch[0]])
        second.matches.clear()
        assert first.matches  # clearing the replica left the original alone

    def test_trace_forwarded(self, world):
        reference, weights, config, eti, batch = world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        results = matcher.match_many(batch[:2] + batch[:1], trace=True)
        assert all(result.trace for result in results)

    def test_order_preserved(self, world):
        reference, weights, config, eti, batch = world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        bulk = matcher.match_many(batch)
        singles = [matcher.match(values) for values in batch]
        assert result_view(bulk) == result_view(singles)


class TestBatchMatcherParallel:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["basic", "osc"])
    def test_bit_identical_to_sequential(self, world, jobs, strategy):
        reference, weights, config, eti, batch = world
        sequential = FuzzyMatcher(
            reference, weights, config, eti, caches=MatcherCaches.disabled()
        )
        expected = result_view(
            [sequential.match(values, k=2, strategy=strategy) for values in batch]
        )
        with BatchMatcher(reference, weights, config, eti, jobs=jobs) as engine:
            results = engine.match_many(batch, k=2, strategy=strategy)
        assert result_view(results) == expected

    def test_parallel_naive_strategy(self, world):
        reference, weights, config, eti, batch = world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        expected = result_view(
            [matcher.match(values, strategy="naive") for values in batch[:8]]
        )
        with BatchMatcher(reference, weights, config, eti, jobs=2) as engine:
            results = engine.match_many(batch[:8], strategy="naive")
        assert result_view(results) == expected

    def test_report_accounting(self, world):
        reference, weights, config, eti, batch = world
        with BatchMatcher(reference, weights, config, eti, jobs=2) as engine:
            engine.match_many(batch)
            report = engine.last_report
        assert isinstance(report, BatchReport)
        assert report.total_queries == len(batch)
        assert report.unique_queries == len(set(batch))
        assert report.deduplicated_queries == len(batch) - len(set(batch))
        assert report.queries_per_second > 0
        assert report.cache_counters["token_weights"]["hits"] > 0

    def test_per_query_stats_do_not_race(self, world):
        """Each worker owns its ETI-lookup counter, so per-query stats
        match the sequential run even under concurrency."""
        reference, weights, config, eti, batch = world
        sequential = FuzzyMatcher(
            reference, weights, config, eti, caches=MatcherCaches.disabled()
        )
        distinct = list(dict.fromkeys(batch))
        expected = [
            sequential.match(values).stats.candidates_fetched for values in distinct
        ]
        with BatchMatcher(reference, weights, config, eti, jobs=4) as engine:
            results = engine.match_many(distinct)
        got = [result.stats.candidates_fetched for result in results]
        assert got == expected

    def test_invalid_jobs_rejected(self, world):
        reference, weights, config, eti, _ = world
        with pytest.raises(ValueError, match="jobs"):
            BatchMatcher(reference, weights, config, eti, jobs=0)

    def test_from_matcher(self, world):
        reference, weights, config, eti, batch = world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        with BatchMatcher.from_matcher(matcher, jobs=2) as engine:
            results = engine.match_many(batch[:5])
        assert result_view(results) == result_view(
            [matcher.match(values) for values in batch[:5]]
        )


class TestProcessExecutor:
    def test_bit_identical_to_sequential(self, world):
        """Process workers return exactly the sequential answers, twice
        (the second batch exercises the warm pool)."""
        reference, weights, config, eti, batch = world
        sequential = FuzzyMatcher(
            reference, weights, config, eti, caches=MatcherCaches.disabled()
        )
        expected = result_view([sequential.match(values) for values in batch])
        with BatchMatcher(
            reference, weights, config, eti, jobs=2, executor="process"
        ) as engine:
            assert engine.executor == "process"
            for _ in range(2):
                results = engine.match_many(batch)
                assert result_view(results) == expected
            assert engine.last_report.executor == "process"

    def test_thread_executor_recorded(self, world):
        reference, weights, config, eti, batch = world
        with BatchMatcher(reference, weights, config, eti, jobs=2) as engine:
            engine.match_many(batch[:4])
            assert engine.executor == "thread"
            assert engine.last_report.executor == "thread"

    def test_auto_with_resilience_resolves_to_thread(self, world):
        from repro.core.resilience import ResiliencePolicy

        reference, weights, config, eti, _ = world
        engine = BatchMatcher(
            reference, weights, config, eti,
            jobs=4, executor="auto", resilience=ResiliencePolicy(),
        )
        assert engine.executor == "thread"
        engine.close()

    def test_process_with_resilience_rejected(self, world):
        from repro.core.resilience import ResiliencePolicy

        reference, weights, config, eti, _ = world
        with pytest.raises(ValueError, match="resilience"):
            BatchMatcher(
                reference, weights, config, eti,
                jobs=2, executor="process", resilience=ResiliencePolicy(),
            )

    def test_invalid_executor_rejected(self, world):
        reference, weights, config, eti, _ = world
        with pytest.raises(ValueError, match="executor"):
            BatchMatcher(reference, weights, config, eti, executor="greenlet")

    def test_worker_spec_pickle_rebuild_parity(self, world):
        """The spawn-path recipe survives pickling and rebuilds a matcher
        whose answers are bit-identical to the parent's."""
        import pickle

        from repro.core.batch import WorkerSpec

        reference, weights, config, eti, batch = world
        parent = FuzzyMatcher(reference, weights, config, eti)
        spec = WorkerSpec(
            columns=reference.column_names,
            table="rebuilt",
            build_index=eti is not None,
            config=config,
            weights=weights,
            hasher=parent.hasher,
            rows=tuple(reference.scan()),
            fail_fast=True,
        )
        rebuilt = pickle.loads(pickle.dumps(spec)).build()
        subset = batch[:10]
        assert result_view([rebuilt.match(v) for v in subset]) == result_view(
            [parent.match(v) for v in subset]
        )


class TestBatchReportJson:
    def test_degraded_reasons_survive_to_json(self, world):
        """A budget-starved batch reports per-item degradation reasons."""
        from repro.core.resilience import ResiliencePolicy

        reference, weights, config, eti, batch = world
        policy = ResiliencePolicy.with_budget(max_page_fetches=0)
        with BatchMatcher(
            reference, weights, config, eti, jobs=2, resilience=policy
        ) as engine:
            engine.match_many(batch[:6], strategy="basic")
            report = engine.last_report
        assert report.degraded_queries > 0
        payload = json.loads(report.to_json())
        assert payload["degraded_reasons"] == {
            "page_fetches": report.degraded_queries
        }
        assert payload["failed_types"] == {}
        assert payload["deduplicated_queries"] == report.deduplicated_queries
        assert payload["queries_per_second"] == report.queries_per_second

    def test_failed_types_counted(self):
        report = BatchReport(
            total_queries=3,
            unique_queries=3,
            failed_queries=2,
            failed_types={"TransientIOError": 1, "PageCorruptionError": 1},
        )
        payload = json.loads(report.to_json(indent=2))
        assert payload["failed_types"] == {
            "PageCorruptionError": 1,
            "TransientIOError": 1,
        }


class TestCliJobs:
    @pytest.fixture()
    def csv_pair(self, tmp_path):
        reference = tmp_path / "reference.csv"
        dirty = tmp_path / "dirty.csv"
        cli_main(["generate", "--count", "120", "--seed", "3", "--out", str(reference)])
        cli_main(
            [
                "corrupt",
                "--reference", str(reference),
                "--count", "20",
                "--preset", "D2",
                "--seed", "5",
                "--out", str(dirty),
            ]
        )
        return reference, dirty

    def test_jobs_flag_matches_sequential_output(self, csv_pair, tmp_path):
        reference, dirty = csv_pair
        seq_out = tmp_path / "seq.csv"
        par_out = tmp_path / "par.csv"
        base = ["match", "--reference", str(reference), "--input", str(dirty)]
        assert cli_main(base + ["--out", str(seq_out)]) == 0
        assert cli_main(base + ["--jobs", "4", "--out", str(par_out)]) == 0
        with open(seq_out, newline="") as handle:
            sequential_rows = list(csv.reader(handle))
        with open(par_out, newline="") as handle:
            parallel_rows = list(csv.reader(handle))
        assert sequential_rows == parallel_rows

    def test_executor_flag_matches_sequential_output(self, csv_pair, tmp_path):
        reference, dirty = csv_pair
        seq_out = tmp_path / "seq.csv"
        proc_out = tmp_path / "proc.csv"
        base = ["match", "--reference", str(reference), "--input", str(dirty)]
        assert cli_main(base + ["--out", str(seq_out)]) == 0
        assert (
            cli_main(
                base + ["--jobs", "2", "--executor", "process", "--out", str(proc_out)]
            )
            == 0
        )
        with open(seq_out, newline="") as handle:
            sequential_rows = list(csv.reader(handle))
        with open(proc_out, newline="") as handle:
            process_rows = list(csv.reader(handle))
        assert sequential_rows == process_rows

    def test_report_json_flag_writes_breakdowns(self, csv_pair, tmp_path):
        reference, dirty = csv_pair
        report_path = tmp_path / "report.json"
        assert (
            cli_main(
                [
                    "match",
                    "--reference", str(reference),
                    "--input", str(dirty),
                    "--max-page-fetches", "0",
                    "--report-json", str(report_path),
                    "--out", str(tmp_path / "out.csv"),
                ]
            )
            == 0
        )
        payload = json.loads(report_path.read_text())
        assert payload["total_queries"] == 20
        assert payload["degraded_queries"] > 0
        assert payload["degraded_reasons"].get("page_fetches") == payload[
            "degraded_queries"
        ]

    def test_executor_process_rejects_query_budget(self, csv_pair, tmp_path):
        reference, dirty = csv_pair
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "match",
                    "--reference", str(reference),
                    "--input", str(dirty),
                    "--jobs", "2",
                    "--executor", "process",
                    "--deadline-ms", "50",
                    "--out", str(tmp_path / "never.csv"),
                ]
            )


def test_bench_batch_importable():
    """The throughput benchmark's module contract: modes + JSON targets."""
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "bench_batch",
        Path(__file__).resolve().parent.parent / "benchmarks" / "bench_batch.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert [path.name for path in module.RESULT_PATHS] == [
        "BENCH_batch.json",
        "BENCH_batch.json",
    ]
    payload = json.loads(module.RESULT_PATHS[0].read_text())
    assert payload["benchmark"] == "batch_engine_throughput"
    assert [mode["name"] for mode in payload["modes"]] == [
        "seed_sequential",
        "cached_sequential",
        "cached_jobs4",
        "process_jobs4",
    ]
    assert payload["cpus"] >= 1
