"""Smoke tests: the fast example scripts must run and produce key output.

The heavier examples (etl_pipeline, offline_dedup, persistent_warehouse)
take tens of seconds and are exercised indirectly through the modules they
compose; the two quick ones run here so the documented entry points cannot
rot silently.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("quickstart.py")

    def test_eti_built(self, output):
        assert "ETI built" in output

    def test_all_inputs_resolve_to_boeing(self, output):
        assert output.count("Boeing Company") >= 4

    def test_top_k_section(self, output):
        assert "Top-3 matches" in output


class TestPaperWalkthrough:
    @pytest.fixture(scope="class")
    def output(self):
        return run_example("paper_walkthrough.py")

    def test_edit_distance_section(self, output):
        assert "0.636" in output  # ed(company, corporation) = 7/11

    def test_ed_fails_fms_succeeds(self, output):
        assert "ed prefers the wrong tuple" in output
        assert "fms prefers the true target" in output

    def test_worked_fms_value(self, output):
        assert "0.806" in output  # the paper's fms(I3', R1) with unit weights

    def test_eti_table_rendered(self, output):
        assert "Tid-list" in output

    def test_osc_trace(self, output):
        assert "osc_succeeded=True" in output


def test_all_examples_exist():
    expected = {
        "quickstart.py",
        "etl_pipeline.py",
        "dedup_guard.py",
        "offline_dedup.py",
        "paper_walkthrough.py",
        "persistent_warehouse.py",
        "product_catalog.py",
    }
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present
