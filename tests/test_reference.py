"""ReferenceTable: tid-indexed access, mutation, fetch accounting."""

import pytest

from repro.core.reference import ReferenceTable
from repro.db.database import Database
from repro.db.errors import DuplicateKeyError, RecordNotFoundError


@pytest.fixture()
def table():
    db = Database.in_memory()
    reference = ReferenceTable(db, "r", ["name", "city"])
    reference.load(
        [
            (1, ("alpha one", "springfield")),
            (2, ("beta two", "shelbyville")),
            (5, ("gamma three", None)),
        ]
    )
    return reference


class TestAccess:
    def test_len(self, table):
        assert len(table) == 3

    def test_fetch(self, table):
        assert table.fetch(2) == ("beta two", "shelbyville")

    def test_fetch_null_column(self, table):
        assert table.fetch(5) == ("gamma three", None)

    def test_fetch_missing_tid(self, table):
        with pytest.raises(RecordNotFoundError):
            table.fetch(99)

    def test_contains(self, table):
        assert 1 in table
        assert 99 not in table

    def test_scan_order_and_shape(self, table):
        rows = list(table.scan())
        assert [tid for tid, _ in rows] == [1, 2, 5]
        assert all(len(values) == 2 for _, values in rows)

    def test_scan_values(self, table):
        assert list(table.scan_values())[0] == ("alpha one", "springfield")

    def test_fetch_counter(self, table):
        table.reset_fetch_counter()
        table.fetch(1)
        table.fetch(2)
        assert table.fetches == 2
        table.reset_fetch_counter()
        assert table.fetches == 0


class TestMutation:
    def test_insert(self, table):
        table.insert(9, ("delta four", "ogdenville"))
        assert table.fetch(9) == ("delta four", "ogdenville")

    def test_duplicate_tid_rejected(self, table):
        with pytest.raises(DuplicateKeyError):
            table.insert(1, ("dup", "x"))

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(ValueError):
            table.insert(9, ("only-one-value",))

    def test_delete(self, table):
        values = table.delete(2)
        assert values == ("beta two", "shelbyville")
        assert 2 not in table
        assert len(table) == 2

    def test_delete_missing(self, table):
        with pytest.raises(RecordNotFoundError):
            table.delete(42)

    def test_empty_columns_rejected(self):
        db = Database.in_memory()
        with pytest.raises(ValueError):
            ReferenceTable(db, "r", [])


class TestAttach:
    def test_attach_wraps_existing(self):
        db = Database.in_memory()
        original = ReferenceTable(db, "r", ["name", "city"])
        original.load([(1, ("alpha", "town"))])
        attached = ReferenceTable.attach(db, "r", ["name", "city"])
        assert attached.fetch(1) == ("alpha", "town")
        # Both views share the underlying relation.
        attached.insert(2, ("beta", "city"))
        assert original.fetch(2) == ("beta", "city")

    def test_attach_schema_mismatch(self):
        db = Database.in_memory()
        ReferenceTable(db, "r", ["name", "city"])
        with pytest.raises(ValueError, match="columns"):
            ReferenceTable.attach(db, "r", ["wrong"])
