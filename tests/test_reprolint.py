"""reprolint: every rule fires on its bad fixture and the tree is clean."""

from pathlib import Path

import pytest

from repro.analysis import REGISTRY, run
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"

# (fixture file, rule name, fragments that must appear in the messages)
BAD_FIXTURES = [
    (
        "bad_lock.py",
        "lock-discipline",
        ["Counter._total is lock-guarded", "without the lock in peek()"],
    ),
    (
        "bad_exceptions.py",
        "exception-taxonomy",
        ["the db layer raises `KeyError`", "bare `except:`"],
    ),
    (
        "bad_determinism.py",
        "determinism",
        ["`random.random(...)`", "`time.time()`", "iterates a set directly"],
    ),
    (
        "bad_api.py",
        "api-consistency",
        [
            "__all__ lists 'missing_name'",
            "private name '_private'",
            "public function 'helper' has no docstring",
        ],
    ),
    (
        "bad_unused_import.py",
        "unused-import",
        ["import 'json' is never used", "import 'path' is never used"],
    ),
    (
        "bad_annotations.py",
        "annotations",
        [
            "missing parameter annotations for: value, factor",
            "missing a return annotation",
        ],
    ),
]


@pytest.mark.parametrize(
    "fixture, rule, fragments",
    BAD_FIXTURES,
    ids=[rule for _, rule, _ in BAD_FIXTURES],
)
def test_rule_fires_on_bad_fixture(fixture, rule, fragments):
    findings = run([FIXTURES / fixture], select=[rule])
    assert findings, f"{rule} found nothing in {fixture}"
    assert all(f.rule == rule for f in findings)
    messages = "\n".join(f.message for f in findings)
    for fragment in fragments:
        assert fragment in messages


@pytest.mark.parametrize(
    "fixture, rule, fragments",
    BAD_FIXTURES,
    ids=[rule for _, rule, _ in BAD_FIXTURES],
)
def test_cli_exits_nonzero_on_bad_fixture(fixture, rule, fragments, capsys):
    code = main([str(FIXTURES / fixture)])
    out = capsys.readouterr().out
    assert code == 1
    assert f": {rule}: " in out


def test_clean_fixture_has_zero_findings():
    assert run([FIXTURES / "clean.py"]) == []


def test_cli_exits_zero_on_clean_fixture(capsys):
    assert main([str(FIXTURES / "clean.py")]) == 0
    assert capsys.readouterr().out == ""


def test_source_tree_is_finding_free():
    """The acceptance gate: reprolint is clean over the whole package."""
    assert run([SRC_REPRO]) == []


def test_finding_render_shape():
    finding = run([FIXTURES / "bad_lock.py"], select=["lock-discipline"])[0]
    rendered = finding.render()
    assert rendered.startswith(f"{finding.path}:{finding.line}:{finding.col}: ")
    assert ": lock-discipline: " in rendered


def test_cli_parse_error_exits_2(capsys):
    code = main([str(FIXTURES / "unparseable.py.broken")])
    captured = capsys.readouterr()
    assert code == 2
    assert ": parse-error: " in captured.out


def test_cli_unknown_rule_exits_2(capsys):
    code = main(["--select", "no-such-rule", str(FIXTURES / "clean.py")])
    assert code == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_cli_missing_path_exits_2(capsys):
    code = main([str(FIXTURES / "does_not_exist.py")])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in REGISTRY:
        assert name in out


def test_run_rejects_unknown_rule_names():
    with pytest.raises(KeyError):
        run([FIXTURES / "clean.py"], select=["bogus"])


def test_disable_pragma_suppresses_finding(tmp_path):
    source = (FIXTURES / "bad_unused_import.py").read_text()
    suppressed = source.replace(
        "import json", "import json  # reprolint: disable=unused-import"
    ).replace(
        "from os import path",
        "from os import path  # reprolint: disable=unused-import",
    )
    target = tmp_path / "suppressed.py"
    target.write_text(suppressed)
    assert run([target], select=["unused-import"]) == []


def test_path_pragma_opts_into_scoped_rules(tmp_path):
    """Without the pragma the annotations rule skips non-package files."""
    unscoped = tmp_path / "unscoped.py"
    unscoped.write_text('"""Doc."""\n\n\ndef f(x):\n    """Doc."""\n    return x\n')
    assert run([unscoped], select=["annotations"]) == []
    scoped = tmp_path / "scoped.py"
    scoped.write_text(
        '"""Doc."""\n# reprolint: path=repro/scoped.py\n\n\n'
        'def f(x):\n    """Doc."""\n    return x\n'
    )
    findings = run([scoped], select=["annotations"])
    assert findings and findings[0].rule == "annotations"


def test_registry_has_the_documented_rules():
    assert set(REGISTRY) == {
        "lock-discipline",
        "exception-taxonomy",
        "determinism",
        "api-consistency",
        "unused-import",
        "annotations",
    }
