"""reprolint: every rule fires on its bad fixture and the tree is clean."""

from pathlib import Path

import pytest

from repro.analysis import REGISTRY, run
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"

# (fixture file, rule name, fragments that must appear in the messages)
BAD_FIXTURES = [
    (
        "bad_lock.py",
        "lock-discipline",
        ["Counter._total is lock-guarded", "without the lock in peek()"],
    ),
    (
        "bad_exceptions.py",
        "exception-taxonomy",
        ["the db layer raises `KeyError`", "bare `except:`"],
    ),
    (
        "bad_determinism.py",
        "determinism",
        ["`random.random(...)`", "`time.time()`", "iterates a set directly"],
    ),
    (
        "bad_determinism_obs.py",
        "determinism",
        ["`random.random(...)`", "`time.time()`", "iterates a set directly"],
    ),
    (
        "bad_api.py",
        "api-consistency",
        [
            "__all__ lists 'missing_name'",
            "private name '_private'",
            "public function 'helper' has no docstring",
        ],
    ),
    (
        "bad_unused_import.py",
        "unused-import",
        ["import 'json' is never used", "import 'path' is never used"],
    ),
    (
        "bad_annotations.py",
        "annotations",
        [
            "missing parameter annotations for: value, factor",
            "missing a return annotation",
        ],
    ),
    (
        "bad_blocking.py",
        "blocking-under-lock",
        [
            "blocking call `.recv(...)` inside `with self._lock:`",
            "blocking call time.sleep() inside `with self._lock:`",
            "transitively reaches blocking I/O",
        ],
    ),
    (
        "bad_deadline.py",
        "deadline-propagation",
        ["without forwarding any of them", "the deadline is dropped here"],
    ),
    (
        "bad_leak.py",
        "resource-leak",
        [
            "never released or handed off",
            "may leak on an exception path",
            "semaphore token from self._tokens.acquire() is never released",
        ],
    ),
    (
        "bad_wal.py",
        "durability-ordering",
        [
            "COMMIT record appended without a following log fsync",
            "without a following inner.sync()",
            "no fsync between them",
        ],
    ),
    (
        "bad_shed.py",
        "shed-exhaustiveness",
        [
            "'mystery_reason' is not in the protocol's documented SHED_REASONS",
            "documented shed reason 'ghost_reason' is never raised",
        ],
    ),
]


@pytest.mark.parametrize(
    "fixture, rule, fragments",
    BAD_FIXTURES,
    ids=[rule for _, rule, _ in BAD_FIXTURES],
)
def test_rule_fires_on_bad_fixture(fixture, rule, fragments):
    findings = run([FIXTURES / fixture], select=[rule])
    assert findings, f"{rule} found nothing in {fixture}"
    assert all(f.rule == rule for f in findings)
    messages = "\n".join(f.message for f in findings)
    for fragment in fragments:
        assert fragment in messages


@pytest.mark.parametrize(
    "fixture, rule, fragments",
    BAD_FIXTURES,
    ids=[rule for _, rule, _ in BAD_FIXTURES],
)
def test_cli_exits_nonzero_on_bad_fixture(fixture, rule, fragments, capsys):
    code = main([str(FIXTURES / fixture)])
    out = capsys.readouterr().out
    assert code == 1
    assert f": {rule}: " in out


def test_clean_fixture_has_zero_findings():
    assert run([FIXTURES / "clean.py"]) == []


def test_cli_exits_zero_on_clean_fixture(capsys):
    assert main([str(FIXTURES / "clean.py")]) == 0
    assert capsys.readouterr().out == ""


def test_source_tree_is_finding_free():
    """The acceptance gate: reprolint is clean over the whole package."""
    assert run([SRC_REPRO]) == []


def test_finding_render_shape():
    finding = run([FIXTURES / "bad_lock.py"], select=["lock-discipline"])[0]
    rendered = finding.render()
    assert rendered.startswith(f"{finding.path}:{finding.line}:{finding.col}: ")
    assert ": lock-discipline: " in rendered


def test_cli_parse_error_exits_2(capsys):
    code = main([str(FIXTURES / "unparseable.py.broken")])
    captured = capsys.readouterr()
    assert code == 2
    assert ": syntax-error: " in captured.out


def test_syntax_error_is_a_finding_in_json_output(capsys):
    import json

    code = main(["--format", "json", str(FIXTURES / "unparseable.py.broken")])
    assert code == 2
    document = json.loads(capsys.readouterr().out)
    assert document["count"] == 1
    assert document["findings"][0]["rule"] == "syntax-error"


def test_cli_unknown_rule_exits_2(capsys):
    code = main(["--select", "no-such-rule", str(FIXTURES / "clean.py")])
    assert code == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_cli_missing_path_exits_2(capsys):
    code = main([str(FIXTURES / "does_not_exist.py")])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in REGISTRY:
        assert name in out


def test_run_rejects_unknown_rule_names():
    with pytest.raises(KeyError):
        run([FIXTURES / "clean.py"], select=["bogus"])


def test_disable_pragma_suppresses_finding(tmp_path):
    source = (FIXTURES / "bad_unused_import.py").read_text()
    suppressed = source.replace(
        "import json", "import json  # reprolint: disable=unused-import"
    ).replace(
        "from os import path",
        "from os import path  # reprolint: disable=unused-import",
    )
    target = tmp_path / "suppressed.py"
    target.write_text(suppressed)
    assert run([target], select=["unused-import"]) == []


def test_path_pragma_opts_into_scoped_rules(tmp_path):
    """Without the pragma the annotations rule skips non-package files."""
    unscoped = tmp_path / "unscoped.py"
    unscoped.write_text('"""Doc."""\n\n\ndef f(x):\n    """Doc."""\n    return x\n')
    assert run([unscoped], select=["annotations"]) == []
    scoped = tmp_path / "scoped.py"
    scoped.write_text(
        '"""Doc."""\n# reprolint: path=repro/scoped.py\n\n\n'
        'def f(x):\n    """Doc."""\n    return x\n'
    )
    findings = run([scoped], select=["annotations"])
    assert findings and findings[0].rule == "annotations"


def test_disable_pragma_on_decorated_def_covers_decorators(tmp_path):
    """A pragma on the `def` header suppresses findings anchored at a
    decorator line (the block span extends upward over decorators)."""
    target = tmp_path / "decorated.py"
    target.write_text(
        '"""Doc."""\n'
        "# reprolint: path=repro/core/fms_decorated.py\n"
        "import random\n\n\n"
        "def retry(jitter):\n"
        '    """Doc."""\n'
        "    return lambda fn: fn\n\n\n"
        "@retry(jitter=random.random())\n"
        "def flaky():  # reprolint: disable=determinism\n"
        '    """Doc."""\n'
        "    return 1\n"
    )
    findings = run([target], select=["determinism"])
    assert findings == []
    # Sanity: without the pragma the same file does fire.
    bare = tmp_path / "bare.py"
    bare.write_text(target.read_text().replace("  # reprolint: disable=determinism", ""))
    assert run([bare], select=["determinism"])


def test_write_baseline_then_gate_is_clean(tmp_path, capsys):
    """Round trip: record today's findings, then gate against them."""
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "bad_blocking.py")
    assert main(["--write-baseline", str(baseline), fixture]) == 0
    capsys.readouterr()
    code = main(["--baseline", str(baseline), fixture])
    assert code == 0
    assert capsys.readouterr().out == ""


def test_baseline_lets_new_findings_through(tmp_path, capsys):
    """A finding not in the baseline still fails the gate."""
    baseline = tmp_path / "baseline.json"
    assert main(["--write-baseline", str(baseline), str(FIXTURES / "clean.py")]) == 0
    capsys.readouterr()
    code = main(["--baseline", str(baseline), str(FIXTURES / "bad_blocking.py")])
    assert code == 1
    assert ": blocking-under-lock: " in capsys.readouterr().out


def test_baseline_file_is_deterministic(tmp_path):
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    fixture = str(FIXTURES / "bad_leak.py")
    assert main(["--write-baseline", str(first), fixture]) == 0
    assert main(["--write-baseline", str(second), fixture]) == 0
    assert first.read_bytes() == second.read_bytes()


def test_cli_missing_baseline_exits_2(tmp_path, capsys):
    code = main(
        ["--baseline", str(tmp_path / "nope.json"), str(FIXTURES / "clean.py")]
    )
    assert code == 2
    assert "no such baseline" in capsys.readouterr().err


def test_registry_has_the_documented_rules():
    assert set(REGISTRY) == {
        "lock-discipline",
        "exception-taxonomy",
        "determinism",
        "api-consistency",
        "unused-import",
        "annotations",
        "blocking-under-lock",
        "deadline-propagation",
        "resource-leak",
        "durability-ordering",
        "shed-exhaustiveness",
    }
