"""Buffer pool, storage backends, eviction, and I/O accounting."""

import os

import pytest

from repro.db.errors import BufferPoolError
from repro.db.page import PAGE_SIZE
from repro.db.pager import BufferPool, FileStorage, InMemoryStorage


class TestInMemoryStorage:
    def test_allocate_sequential(self):
        storage = InMemoryStorage()
        assert [storage.allocate() for _ in range(3)] == [0, 1, 2]

    def test_read_back_what_was_written(self):
        storage = InMemoryStorage()
        page_no = storage.allocate()
        data = bytes([7]) * PAGE_SIZE
        storage.write(page_no, data)
        assert storage.read(page_no) == data

    def test_write_wrong_size_rejected(self):
        storage = InMemoryStorage()
        storage.allocate()
        with pytest.raises(BufferPoolError):
            storage.write(0, b"short")


class TestFileStorage:
    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "pages.db")
        storage = FileStorage(path)
        page_no = storage.allocate()
        storage.write(page_no, bytes([3]) * PAGE_SIZE)
        storage.close()

        reopened = FileStorage(path)
        assert reopened.num_pages == 1
        assert reopened.read(page_no) == bytes([3]) * PAGE_SIZE
        reopened.close()

    def test_unaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(BufferPoolError, match="aligned"):
            FileStorage(str(path))

    def test_allocate_grows_file(self, tmp_path):
        path = str(tmp_path / "grow.db")
        storage = FileStorage(path)
        storage.allocate()
        storage.allocate()
        storage.close()
        assert os.path.getsize(path) == 2 * PAGE_SIZE


class TestBufferPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(BufferPoolError):
            BufferPool(capacity=0)

    def test_allocate_then_get_hits_cache(self):
        pool = BufferPool(capacity=4)
        page_no = pool.allocate_page()
        pool.get_page(page_no)
        assert pool.stats.hits == 1
        assert pool.stats.physical_reads == 0

    def test_missing_page_rejected(self):
        pool = BufferPool(capacity=4)
        with pytest.raises(BufferPoolError):
            pool.get_page(0)

    def test_eviction_flushes_dirty_pages(self):
        pool = BufferPool(capacity=2)
        pages = [pool.allocate_page() for _ in range(2)]
        page = pool.get_page(pages[0])
        page.insert(b"payload")
        # Allocating a third page evicts the LRU page (pages[0] was just
        # touched, so pages[1] goes first; touch pages[1] to evict pages[0]).
        pool.get_page(pages[1])
        pool.allocate_page()
        assert pool.stats.evictions >= 1
        # Re-reading the evicted page must see the flushed record.
        restored = pool.get_page(pages[0])
        assert any(rec == b"payload" for _, rec in restored.records())

    def test_lru_order(self):
        pool = BufferPool(capacity=2)
        a = pool.allocate_page()
        b = pool.allocate_page()  # cache: [a, b]
        pool.get_page(a)  # cache: [b, a]
        pool.allocate_page()  # evicts b
        pool.get_page(a)
        assert pool.stats.physical_reads == 0  # a stayed cached
        pool.get_page(b)
        assert pool.stats.physical_reads == 1  # b had to be re-read

    def test_flush_writes_all_dirty(self):
        pool = BufferPool(capacity=8)
        for _ in range(3):
            page_no = pool.allocate_page()
            pool.get_page(page_no).insert(b"x")
        pool.flush()
        assert pool.stats.physical_writes == 3
        # Second flush is a no-op: nothing dirty anymore.
        pool.flush()
        assert pool.stats.physical_writes == 3

    def test_stats_reset(self):
        pool = BufferPool(capacity=2)
        pool.allocate_page()
        pool.stats.reset()
        assert pool.stats.logical_accesses == 0
        assert pool.stats.hit_rate == 0.0

    def test_hit_rate(self):
        pool = BufferPool(capacity=2)
        page_no = pool.allocate_page()
        for _ in range(9):
            pool.get_page(page_no)
        assert pool.stats.hit_rate == 1.0

    def test_file_backed_pool_round_trip(self, tmp_path):
        path = str(tmp_path / "pool.db")
        pool = BufferPool(FileStorage(path), capacity=2)
        page_no = pool.allocate_page()
        pool.get_page(page_no).insert(b"durable")
        pool.close()

        reopened = BufferPool(FileStorage(path), capacity=2)
        page = reopened.get_page(page_no)
        assert [rec for _, rec in page.records()] == [b"durable"]
        reopened.close()
