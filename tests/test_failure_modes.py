"""Failure injection and degraded-mode behaviour.

A production-quality system fails loudly on corruption and degrades
gracefully on misconfiguration; these tests pin down which is which.
"""

import os

import pytest

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.weights import BoundedTokenFrequencyCache, build_frequency_cache
from repro.db.database import Database
from repro.db.errors import BufferPoolError, SchemaError
from repro.db.pager import BufferPool, FileStorage
from repro.db.snapshot import load_database, save_database
from repro.db.types import Column, ColumnType, Schema
from repro.eti.builder import build_eti

from tests.conftest import ORG_COLUMNS, ORG_ROWS


class TestStorageCorruption:
    def test_truncated_page_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.pages"
        # wal=False so pages land in the page file itself (with a log they
        # stay in the tail until a checkpoint and the file would be empty).
        db = Database.on_disk(str(path), wal=False)
        rel = db.create_relation("t", [Column("v", ColumnType.INT)])
        rel.insert((1,))
        db.close()
        # Chop the file mid-page.
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 100)
        with pytest.raises(BufferPoolError, match="aligned"):
            Database.on_disk(str(path), wal=False)

    def test_corrupt_record_bytes_fail_decode(self):
        schema = Schema([Column("s", ColumnType.STR)])
        encoded = bytearray(schema.encode(("hello world",)))
        encoded[0] = 0xFF  # break the length prefix
        with pytest.raises(SchemaError):
            schema.decode(bytes(encoded))

    def test_snapshot_with_tampered_metadata(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        db.create_relation("t", [Column("v", ColumnType.INT)])
        meta_path = save_database(db)
        db.close()
        with open(meta_path, "w") as handle:
            handle.write('{"version": 99}')
        from repro.db.errors import DatabaseError

        with pytest.raises(DatabaseError, match="version"):
            load_database(path)

    def test_tiny_buffer_pool_still_correct(self):
        """Thrash-heavy eviction must never lose data."""
        pool = BufferPool(capacity=2)
        db = Database(pool)
        rel = db.create_relation(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STR)]
        )
        for i in range(2000):
            rel.insert((i, f"value-{i}" * 3))
        assert pool.stats.evictions > 0
        rows = list(rel.scan())
        assert len(rows) == 2000
        assert rows[1234] == (1234, "value-1234" * 3)


class TestDegradedMatching:
    @pytest.fixture()
    def warehouse(self):
        db = Database.in_memory()
        reference = ReferenceTable(db, "orgs", list(ORG_COLUMNS))
        reference.load(ORG_ROWS)
        weights = build_frequency_cache(reference.scan_values(), 4)
        return db, reference, weights

    def test_mismatched_hasher_seed_degrades_not_crashes(self, warehouse):
        """An ETI built with one min-hash seed, queried with another: the
        q-gram coordinates disagree, recall drops, but token coordinates
        (Q+T) still work and nothing crashes."""
        db, reference, weights = warehouse
        config = MatchConfig(q=3, signature_size=2)
        eti, _ = build_eti(db, reference, config, hasher=MinHasher(3, 2, seed=1))
        matcher = FuzzyMatcher(
            reference, weights, config, eti, hasher=MinHasher(3, 2, seed=2)
        )
        result = matcher.match(("Boeing Company", "Seattle", "WA", "98004"))
        # The exact-token coordinates still identify the tuple.
        assert result.best is not None
        assert result.best.tid == 1

    def test_k_larger_than_relation(self, warehouse):
        db, reference, weights = warehouse
        config = MatchConfig(q=3, signature_size=2)
        eti, _ = build_eti(db, reference, config)
        matcher = FuzzyMatcher(reference, weights, config, eti)
        result = matcher.match(
            ("Boeing Company", "Seattle", "WA", "98004"), k=50, strategy="naive"
        )
        assert len(result.matches) == 3

    def test_extreme_stop_threshold_still_answers(self, warehouse):
        """stop_qgram_threshold=1 nulls every shared q-gram; unique ones
        still route candidates."""
        db, reference, weights = warehouse
        config = MatchConfig(q=3, signature_size=2, stop_qgram_threshold=1)
        eti, build_stats = build_eti(db, reference, config)
        assert build_stats.stop_qgrams > 0
        matcher = FuzzyMatcher(reference, weights, config, eti)
        result = matcher.match(("Boeing Company", "Seattle", "WA", "98004"))
        assert result.best is not None

    def test_bounded_cache_collisions_end_to_end(self, warehouse):
        """A 4-bucket frequency cache garbles weights yet matching still
        returns a ranked result (the §4.4.1 accuracy trade, not a crash)."""
        db, reference, _ = warehouse
        bounded = BoundedTokenFrequencyCache(3, 4, max_entries=4)
        build_frequency_cache(reference.scan_values(), 4, cache=bounded)
        config = MatchConfig(q=3, signature_size=2)
        eti, _ = build_eti(db, reference, config, eti_name="eti_bounded")
        matcher = FuzzyMatcher(reference, bounded, config, eti)
        result = matcher.match(("Boeing Company", "Seattle", "WA", "98004"))
        # Collisions can flatten every weight to zero (tiny corpus, 4
        # buckets), in which case no match is returnable; when matches do
        # come back their scores must be sane.
        for match in result.matches:
            assert 0.0 <= match.similarity <= 1.0

    def test_input_with_unknown_alphabet(self, warehouse):
        db, reference, weights = warehouse
        config = MatchConfig(q=3, signature_size=2)
        eti, _ = build_eti(db, reference, config)
        matcher = FuzzyMatcher(reference, weights, config, eti)
        result = matcher.match(("北京公司", "西雅图", "华", "98004"))
        for match in result.matches:
            assert 0.0 <= match.similarity <= 1.0

    def test_very_long_token(self, warehouse):
        db, reference, weights = warehouse
        config = MatchConfig(q=3, signature_size=2)
        eti, _ = build_eti(db, reference, config)
        matcher = FuzzyMatcher(reference, weights, config, eti)
        monster = "x" * 5000
        result = matcher.match((monster, "Seattle", "WA", "98004"))
        assert result.stats.eti_lookups > 0

    def test_eti_for_wrong_relation_returns_garbage_not_crash(self, warehouse):
        """Querying through an ETI built over different data degrades to
        empty/poor candidates; the contract is 'no crash, valid scores'."""
        db, reference, weights = warehouse
        other = ReferenceTable(db, "other", list(ORG_COLUMNS))
        other.load([(7, ("Zenith Labs", "Reno", "NV", "89501"))])
        config = MatchConfig(q=3, signature_size=2)
        eti, _ = build_eti(db, other, config, eti_name="eti_other")
        matcher = FuzzyMatcher(reference, weights, config, eti)
        result = matcher.match(("Zenith Labs", "Reno", "NV", "89501"))
        for match in result.matches:
            assert 0.0 <= match.similarity <= 1.0
