"""Error injection: Table 4 semantics, Type I/II, determinism."""

import pytest

from repro.data.errors import ErrorModel, ErrorType

VALUES = ("boeing company", "new york", "ny", "10001")


def make_model(**kwargs):
    defaults = dict(
        column_error_probabilities=(1.0, 1.0, 1.0, 1.0), seed=3
    )
    defaults.update(kwargs)
    return ErrorModel(**defaults)


class TestModelConstruction:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_model(method="type3")

    def test_type2_requires_lookup(self):
        with pytest.raises(ValueError, match="frequency_lookup"):
            make_model(method="type2")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(column_error_probabilities=(1.5,))

    def test_type2_with_lookup_accepted(self):
        model = make_model(method="type2", frequency_lookup=lambda t, c: 1)
        corrupted, _ = model.corrupt(VALUES)
        assert len(corrupted) == 4


class TestCorruption:
    def test_zero_probabilities_leave_clean(self):
        model = make_model(column_error_probabilities=(0.0,) * 4)
        corrupted, report = model.corrupt(VALUES)
        assert corrupted == VALUES
        assert report.is_clean

    def test_probability_one_corrupts_every_column(self):
        model = make_model()
        _, report = model.corrupt(VALUES)
        assert len(report.errors) == 4

    def test_deterministic_given_seed(self):
        a = make_model(seed=11).corrupt(VALUES)
        b = make_model(seed=11).corrupt(VALUES)
        assert a == b

    def test_different_seeds_differ(self):
        results = {make_model(seed=s).corrupt(VALUES)[0] for s in range(10)}
        assert len(results) > 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_model().corrupt(("only", "three", "values"))

    def test_none_columns_left_alone(self):
        model = make_model()
        corrupted, report = model.corrupt(("name", None, "wa", "98004"))
        assert corrupted[1] is None
        assert all(column != 1 for column, _ in report.errors)

    def test_report_lists_column_error_pairs(self):
        model = make_model()
        _, report = model.corrupt(VALUES)
        for column, error in report.errors:
            assert 0 <= column < 4
            assert isinstance(error, ErrorType)


class TestErrorTypes:
    def _collect(self, error_type, column=1, trials=400):
        """Corrupt many times; return (originals, corrupted) for one type."""
        model = make_model(seed=5)
        outputs = []
        for _ in range(trials):
            corrupted, report = model.corrupt(VALUES)
            if (column, error_type) in report.errors:
                outputs.append(corrupted[column])
        return outputs

    def test_missing_values_occur_off_name(self):
        outputs = self._collect(ErrorType.MISSING, column=1)
        assert outputs and all(v is None for v in outputs)

    def test_missing_never_on_name_column(self):
        model = make_model(seed=7)
        for _ in range(500):
            _, report = model.corrupt(VALUES)
            assert (0, ErrorType.MISSING) not in report.errors

    def test_truncation_shortens_by_at_most_five(self):
        outputs = self._collect(ErrorType.TRUNCATION, column=0)
        original = VALUES[0]
        assert outputs
        for value in outputs:
            assert original.startswith(value[: len(value)])
            assert 1 <= len(original) - len(value) <= 5 + 1  # +1 for rstrip

    def test_token_merge_removes_delimiter(self):
        outputs = self._collect(ErrorType.TOKEN_MERGE, column=1)
        assert outputs
        for value in outputs:
            assert value == "newyork"

    def test_token_transposition_reorders(self):
        outputs = self._collect(ErrorType.TOKEN_TRANSPOSITION, column=1)
        assert outputs
        for value in outputs:
            assert value == "york new"

    def test_spelling_changes_one_token(self):
        outputs = self._collect(ErrorType.SPELLING, column=0)
        assert outputs
        for value in outputs:
            assert value != VALUES[0]
            # Still two tokens (spelling errors never merge/split tokens).
            assert len(value.split()) == 2

    def test_spelling_on_digit_token_stays_digits(self):
        outputs = self._collect(ErrorType.SPELLING, column=3)
        assert outputs
        for value in outputs:
            assert value.isdigit()

    def test_abbreviation_replaces_known_token(self):
        outputs = self._collect(ErrorType.ABBREVIATION, column=0)
        assert outputs
        from repro.data.pools import ABBREVIATIONS

        short_forms = set(ABBREVIATIONS["company"])
        replaced = [v for v in outputs if v.split()[-1] in short_forms]
        # 'company' is the only abbreviatable token in 'boeing company'.
        assert replaced == outputs

    def test_abbreviation_falls_back_to_spelling(self):
        # No abbreviatable token in 'zzqqxx': an abbreviation error must
        # still corrupt the value rather than no-op.
        model = make_model(seed=9)
        changed = 0
        for _ in range(300):
            corrupted, report = model.corrupt(("zzqqxx aabbcc", "x y", "zz", "11111"))
            if (0, ErrorType.ABBREVIATION) in report.errors:
                assert corrupted[0] != "zzqqxx aabbcc"
                changed += 1
        assert changed > 0


class TestProbabilities:
    def test_column_probability_honored(self):
        model = make_model(column_error_probabilities=(0.5, 0.0, 0.0, 0.0), seed=13)
        errored = sum(
            0 if model.corrupt(VALUES)[1].is_clean else 1 for _ in range(1000)
        )
        assert 400 < errored < 600

    def test_name_column_mix_differs_from_others(self):
        """Table 4 has distinct conditional distributions for i=1 vs i≠1."""
        model = make_model(seed=17)
        name_errors = []
        other_errors = []
        for _ in range(2000):
            _, report = model.corrupt(VALUES)
            for column, error in report.errors:
                (name_errors if column == 0 else other_errors).append(error)
        name_missing = name_errors.count(ErrorType.MISSING)
        other_missing = other_errors.count(ErrorType.MISSING)
        assert name_missing == 0
        assert other_missing > 0
        # Spelling dominates both (0.5 and 0.4 in Table 4).
        assert name_errors.count(ErrorType.SPELLING) / len(name_errors) > 0.3
        assert other_errors.count(ErrorType.SPELLING) / len(other_errors) > 0.25


class TestTypeTwo:
    def test_frequent_tokens_targeted_more(self):
        """Type II: error probability proportional to token frequency."""
        frequencies = {"corporation": 1000, "zyxw": 1}

        model = ErrorModel(
            (1.0,),
            method="type2",
            frequency_lookup=lambda token, column: frequencies.get(token, 1),
            name_column=0,
            seed=23,
        )
        corrupted_counts = {"corporation": 0, "zyxw": 0}
        for _ in range(600):
            corrupted, report = model.corrupt(("zyxw corporation",))
            if not report.errors:
                continue
            tokens = (corrupted[0] or "").split()
            if "zyxw" not in tokens:
                corrupted_counts["zyxw"] += 1
            if "corporation" not in tokens:
                corrupted_counts["corporation"] += 1
        assert corrupted_counts["corporation"] > corrupted_counts["zyxw"]
