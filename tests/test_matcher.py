"""End-to-end fuzzy matching: naive, basic, and OSC strategies."""

import random

import pytest

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.db.database import Database
from repro.eti.builder import build_eti

from tests.conftest import ORG_INPUTS


@pytest.fixture()
def org_matcher(org_reference, org_weights, paper_config, org_eti):
    return FuzzyMatcher(org_reference, org_weights, paper_config, org_eti)


class TestPaperScenarios:
    @pytest.mark.parametrize("strategy", ["naive", "basic", "osc"])
    @pytest.mark.parametrize("values,target", ORG_INPUTS[:3])
    def test_table2_inputs_find_r1(self, org_matcher, strategy, values, target):
        """I1–I3 must all resolve to R1 (Boeing Company) under fms."""
        result = org_matcher.match(values, strategy=strategy)
        assert result.best is not None
        assert result.best.tid == target

    def test_exact_match_scores_one(self, org_matcher):
        result = org_matcher.match(("Boeing Company", "Seattle", "WA", "98004"))
        assert result.best.tid == 1
        assert result.best.similarity == pytest.approx(1.0)

    def test_match_returns_reference_values(self, org_matcher):
        result = org_matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.best.values == ("Boeing Company", "Seattle", "WA", "98004")

    def test_i3_would_mislead_edit_distance(self, org_matcher):
        """The headline claim: fms sends I3 to R1 where ed picks R2."""
        result = org_matcher.match(("Boeing Corporation", "Seattle", "WA", "98004"))
        assert result.best.tid == 1


class TestQueryOptions:
    def test_k_returns_multiple(self, org_matcher):
        result = org_matcher.match(
            ("Beoing Company", "Seattle", "WA", "98004"), k=3, strategy="naive"
        )
        assert len(result.matches) == 3
        similarities = [m.similarity for m in result.matches]
        assert similarities == sorted(similarities, reverse=True)

    def test_k_limits_results(self, org_matcher):
        result = org_matcher.match(
            ("Beoing Company", "Seattle", "WA", "98004"), k=2, strategy="naive"
        )
        assert len(result.matches) == 2

    def test_min_similarity_filters(self, org_matcher):
        values = ("Beoing Company", "Seattle", "WA", "98004")
        loose = org_matcher.match(values, k=3, min_similarity=0.0, strategy="naive")
        strict = org_matcher.match(values, k=3, min_similarity=0.8, strategy="naive")
        assert len(strict.matches) < len(loose.matches)
        assert all(m.similarity >= 0.8 for m in strict.matches)

    def test_impossible_threshold_returns_empty(self, org_matcher):
        result = org_matcher.match(
            ("zzz qqq", "xxx", "yy", "11111"), min_similarity=0.99
        )
        assert result.matches == []

    @pytest.mark.parametrize("strategy", ["basic", "osc"])
    def test_indexed_threshold_filters_results(self, org_matcher, strategy):
        """A positive c exercises the admission optimization and the final
        similarity filter on the indexed paths."""
        values = ("Beoing Company", "Seattle", "WA", "98004")
        result = org_matcher.match(
            values, k=3, min_similarity=0.7, strategy=strategy
        )
        assert all(m.similarity >= 0.7 for m in result.matches)
        naive = org_matcher.match(values, k=3, min_similarity=0.7, strategy="naive")
        assert {m.tid for m in result.matches} <= {m.tid for m in naive.matches} | {
            m.tid for m in result.matches
        }
        # The known best match clears the threshold on all strategies.
        assert result.best is not None and result.best.tid == 1

    def test_unknown_strategy_rejected(self, org_matcher):
        with pytest.raises(ValueError, match="unknown strategy"):
            org_matcher.match(("a", "b", "c", "d"), strategy="magic")

    def test_wrong_arity_rejected(self, org_matcher):
        with pytest.raises(ValueError, match="columns"):
            org_matcher.match(("a", "b"))

    def test_indexed_strategy_requires_eti(self, org_reference, org_weights, paper_config):
        matcher = FuzzyMatcher(org_reference, org_weights, paper_config)
        with pytest.raises(ValueError, match="requires a built ETI"):
            matcher.match(("a", "b", "c", "d"), strategy="basic")
        # naive still works
        assert matcher.match(("a", "b", "c", "d"), strategy="naive") is not None

    def test_default_strategy_follows_config(self, org_reference, org_weights, org_eti, paper_config):
        osc_matcher = FuzzyMatcher(
            org_reference, org_weights, paper_config.with_(use_osc=True), org_eti
        )
        basic_matcher = FuzzyMatcher(
            org_reference, org_weights, paper_config.with_(use_osc=False), org_eti
        )
        values = ("Boeing Company", "Seattle", "WA", "98004")
        assert osc_matcher.match(values).stats.strategy == "osc"
        assert basic_matcher.match(values).stats.strategy == "basic"

    def test_all_null_input(self, org_matcher):
        result = org_matcher.match((None, None, None, None))
        assert result.matches == []

    def test_match_many_preserves_order(self, org_matcher):
        batch = [values for values, _ in ORG_INPUTS[:3]]
        results = org_matcher.match_many(batch)
        assert len(results) == 3
        singles = [org_matcher.match(values) for values in batch]
        for bulk, single in zip(results, singles):
            assert bulk.best.tid == single.best.tid
            assert bulk.best.similarity == single.best.similarity

    def test_match_many_forwards_options(self, org_matcher):
        results = org_matcher.match_many(
            [("Beoing Company", "Seattle", "WA", "98004")],
            k=3,
            strategy="naive",
        )
        assert len(results[0].matches) == 3
        assert results[0].stats.strategy == "naive"


class TestStatistics:
    def test_eti_lookups_counted(self, org_matcher):
        result = org_matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.stats.eti_lookups > 0

    def test_naive_counts_fms_evaluations(self, org_matcher):
        result = org_matcher.match(("a", "b", "c", "d"), strategy="naive")
        assert result.stats.fms_evaluations == 3  # one per reference tuple

    def test_elapsed_recorded(self, org_matcher):
        result = org_matcher.match(("a", "b", "c", "d"), strategy="naive")
        assert result.stats.elapsed_seconds > 0

    def test_fetches_bounded_by_admitted(self, org_matcher):
        result = org_matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.stats.candidates_fetched <= max(result.stats.tids_admitted, 1)


def build_random_world(seed, num_reference=60, num_queries=25, **config_kwargs):
    """A random small reference relation plus dirty queries against it."""
    rng = random.Random(seed)
    tokens = [
        "boeing", "company", "corporation", "united", "pacific", "airlines",
        "seattle", "tacoma", "portland", "spokane", "everett", "renton",
    ]
    states = ["wa", "or", "ca"]

    def make_name():
        return " ".join(rng.choices(tokens[:6], k=rng.randint(1, 3)))

    db = Database.in_memory()
    reference = ReferenceTable(db, "r", ["name", "city", "state"])
    rows = []
    for tid in range(num_reference):
        rows.append(
            (tid, (make_name(), rng.choice(tokens[6:]), rng.choice(states)))
        )
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), 3)
    config = MatchConfig(q=3, signature_size=2, **config_kwargs)
    eti, _ = build_eti(db, reference, config)
    matcher = FuzzyMatcher(reference, weights, config, eti)

    queries = []
    for _ in range(num_queries):
        _, values = rows[rng.randrange(len(rows))]
        dirty = []
        for value in values:
            chars = list(value)
            for _ in range(rng.randint(0, 2)):
                pos = rng.randrange(len(chars))
                chars[pos] = rng.choice("abcdefghijklmnop")
            dirty.append("".join(chars))
        queries.append(tuple(dirty))
    return matcher, queries


class TestStrategyEquivalence:
    """basic must agree with naive; osc must agree with basic.

    The indexed algorithms are *probabilistically* safe, so strict equality
    of the returned tid is only required up to similarity ties and min-hash
    misfortune; we require the returned similarity to match naive's best
    similarity almost always, and exactly for the basic strategy whose
    candidate pruning is deterministic given the ETI.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_basic_matches_naive_similarity(self, seed):
        matcher, queries = build_random_world(seed)
        mismatches = 0
        for values in queries:
            naive = matcher.match(values, strategy="naive")
            basic = matcher.match(values, strategy="basic")
            assert basic.best is not None
            if abs(basic.best.similarity - naive.best.similarity) > 1e-9:
                mismatches += 1
        assert mismatches <= 1  # min-hash can lose a candidate, rarely

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_osc_close_to_basic(self, seed):
        matcher, queries = build_random_world(seed)
        mismatches = 0
        for values in queries:
            basic = matcher.match(values, strategy="basic")
            osc = matcher.match(values, strategy="osc")
            assert osc.best is not None
            if abs(osc.best.similarity - basic.best.similarity) > 1e-9:
                mismatches += 1
        # The paper's permissive stopping bound may stop on a slightly
        # sub-optimal tuple occasionally.
        assert mismatches <= 3

    def test_conservative_osc_matches_basic_exactly(self):
        matcher, queries = build_random_world(7, osc_conservative=True)
        for values in queries:
            basic = matcher.match(values, strategy="basic")
            osc = matcher.match(values, strategy="osc")
            if basic.best is None:
                # No reference tuple shares a signature q-gram: both
                # strategies see the same empty candidate set.
                assert osc.best is None
            else:
                assert osc.best.similarity == pytest.approx(basic.best.similarity)

    @pytest.mark.parametrize("scheme", list(SignatureScheme))
    def test_schemes_agree_on_clean_inputs(self, scheme):
        matcher, _ = build_random_world(3, scheme=scheme)
        for tid, values in list(matcher.reference.scan())[:15]:
            result = matcher.match(values)
            assert result.best.similarity == pytest.approx(1.0)
            assert result.best.tid == tid or (
                # Duplicate reference tuples can tie at similarity 1.0.
                matcher.reference.fetch(result.best.tid) == values
            )
