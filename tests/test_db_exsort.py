"""External merge sort."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.exsort import SortStats, external_sort


class TestBasicSorting:
    def test_empty_input(self):
        assert list(external_sort([])) == []

    def test_single_element(self):
        assert list(external_sort([5])) == [5]

    def test_already_sorted(self):
        data = list(range(100))
        assert list(external_sort(data)) == data

    def test_reverse_sorted(self):
        data = list(range(100, 0, -1))
        assert list(external_sort(data)) == sorted(data)

    def test_key_function(self):
        rows = [("b", 2), ("a", 1), ("c", 0)]
        assert list(external_sort(rows, key=lambda r: r[1])) == [
            ("c", 0),
            ("a", 1),
            ("b", 2),
        ]

    def test_memory_limit_validation(self):
        with pytest.raises(ValueError):
            list(external_sort([1, 2], memory_limit=1))


class TestSpilling:
    def test_spills_when_over_limit(self):
        stats = SortStats()
        data = [random.Random(3).randrange(1000) for _ in range(1000)]
        rng = random.Random(3)
        data = [rng.randrange(1000) for _ in range(1000)]
        result = list(external_sort(data, memory_limit=100, stats=stats))
        assert result == sorted(data)
        assert stats.runs > 1
        assert stats.spilled_rows >= 900
        assert stats.merge_passes == 1

    def test_no_spill_when_under_limit(self):
        stats = SortStats()
        result = list(external_sort([3, 1, 2], memory_limit=100, stats=stats))
        assert result == [1, 2, 3]
        assert stats.spilled_rows == 0
        assert stats.runs == 1

    def test_exact_multiple_of_limit(self):
        data = list(range(50, 0, -1))
        assert list(external_sort(data, memory_limit=10)) == sorted(data)

    def test_stability_across_runs(self):
        # Rows with equal keys must keep input order even when they land in
        # different spill runs.
        rows = [(i % 5, i) for i in range(200)]
        result = list(external_sort(rows, key=lambda r: r[0], memory_limit=20))
        for key in range(5):
            sequence = [i for k, i in result if k == key]
            assert sequence == sorted(sequence)

    def test_temp_files_cleaned_up(self, tmp_path):
        import os

        data = list(range(500, 0, -1))
        list(external_sort(data, memory_limit=50, tmp_dir=str(tmp_path)))
        assert os.listdir(str(tmp_path)) == []

    def test_early_close_cleans_temp_files(self, tmp_path):
        import os

        data = list(range(500, 0, -1))
        gen = external_sort(data, memory_limit=50, tmp_dir=str(tmp_path))
        next(gen)
        gen.close()
        assert os.listdir(str(tmp_path)) == []

    def test_rows_in_counted(self):
        stats = SortStats()
        list(external_sort(range(123), stats=stats))
        assert stats.rows_in == 123


class TestComplexRows:
    def test_pre_eti_shaped_rows(self):
        # The actual use: sort pre-ETI rows on the full 4-column key.
        rng = random.Random(7)
        grams = ["ing", "oei", "com", "pan", "sea"]
        rows = [
            (rng.choice(grams), rng.randrange(3), rng.randrange(4), rng.randrange(100))
            for _ in range(500)
        ]
        result = list(external_sort(rows, memory_limit=64))
        assert result == sorted(rows)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-10_000, 10_000), max_size=400),
        st.integers(min_value=2, max_value=50),
    )
    def test_property_sorted_permutation(self, data, limit):
        result = list(external_sort(data, memory_limit=limit))
        assert result == sorted(data)
