"""OSC fetching and stopping tests, including the paper's §4.3.2 example."""

import pytest

from repro.core.candidates import ScoreTable
from repro.core.osc import fetching_test, similarity_upper_bound, stopping_test


def paper_example_table():
    """The §4.3.2 walkthrough state after fetching '980' and '004'.

    I1's q-grams by descending weight: 980/004 (1.0 each), wa (0.75),
    sea/ttl (0.5), eoi/ing (0.25), com/pan (0.125); total weight 4.5.
    '980' lists {R1,R2,R3}, '004' lists {R1}.
    """
    table = ScoreTable(threshold=0.0)
    table.add_tid_list([1, 2, 3], weight=1.0, remaining_weight=4.5)
    table.add_tid_list([1], weight=1.0, remaining_weight=3.5)
    return table


class TestFetchingTest:
    def test_paper_example_fetches(self):
        """R1 extrapolates to 2.0 * 4.5/2.0 = 4.5 > 3.5 -> fetch."""
        decision = fetching_test(
            paper_example_table(), k=1, processed_weight=2.0, total_weight=4.5
        )
        assert decision.should_fetch
        assert decision.top_tids == (1,)
        assert decision.outside_score_cap == pytest.approx(3.5)

    def test_indistinguishable_scores_do_not_fetch(self):
        """After only '980' everything is tied: no fetch (the paper
        "cannot yet distinguish between the 1st and 2nd best scores")."""
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1, 2, 3], weight=1.0, remaining_weight=4.5)
        decision = fetching_test(table, k=1, processed_weight=1.0, total_weight=4.5)
        assert not decision.should_fetch

    def test_no_tids_no_fetch(self):
        decision = fetching_test(
            ScoreTable(0.0), k=1, processed_weight=1.0, total_weight=4.0
        )
        assert not decision.should_fetch
        assert decision.top_tids == ()

    def test_fewer_than_k_tids_no_fetch(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1], weight=1.0, remaining_weight=4.0)
        decision = fetching_test(table, k=2, processed_weight=1.0, total_weight=4.0)
        assert not decision.should_fetch

    def test_missing_runner_up_treated_as_zero(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1], weight=2.0, remaining_weight=4.0)
        decision = fetching_test(table, k=1, processed_weight=2.0, total_weight=4.0)
        # Outside cap = 0 + (4.0 - 2.0) = 2.0 < extrapolated 4.0.
        assert decision.should_fetch
        assert decision.outside_score_cap == pytest.approx(2.0)

    def test_zero_processed_weight_no_fetch(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1, 2], weight=0.0, remaining_weight=4.0)
        decision = fetching_test(table, k=1, processed_weight=0.0, total_weight=4.0)
        assert not decision.should_fetch


class TestStoppingTest:
    def test_paper_example_stop_threshold(self):
        """Stop iff fms(u, R1) >= 3.5/4.5 (the example's stated bound)."""
        assert stopping_test([0.80], 3.5, 4.5, q=3)
        assert not stopping_test([0.75], 3.5, 4.5, q=3)

    def test_all_k_must_pass(self):
        assert not stopping_test([0.9, 0.5], 3.5, 4.5, q=3)
        assert stopping_test([0.9, 0.8], 3.5, 4.5, q=3)

    def test_zero_input_weight(self):
        assert stopping_test([0.0], 1.0, 0.0, q=3)

    def test_conservative_bound_is_stricter(self):
        # Conservative requires fms >= min(2/q * cap/w + (1-1/q), 1).
        # cap=1.0, w=4.5, q=3: bound = 2/3*0.222 + 2/3 = 0.815.
        assert stopping_test([0.5], 1.0, 4.5, q=3)  # paper bound 0.222
        assert not stopping_test([0.5], 1.0, 4.5, q=3, conservative=True)
        assert stopping_test([0.82], 1.0, 4.5, q=3, conservative=True)

    def test_conservative_bound_caps_at_one(self):
        # Huge outside cap: bound capped at 1.0, only exact matches stop.
        assert not stopping_test([0.999], 100.0, 4.5, q=3, conservative=True)
        assert stopping_test([1.0], 100.0, 4.5, q=3, conservative=True)


class TestSimilarityUpperBound:
    def test_zero_score(self):
        assert similarity_upper_bound(0.0, 4.0, q=4) == pytest.approx(0.75)

    def test_full_score(self):
        assert similarity_upper_bound(4.0, 4.0, q=4) == 1.0

    def test_monotone_in_score(self):
        bounds = [similarity_upper_bound(s, 4.0, q=4) for s in (0.0, 1.0, 2.0)]
        assert bounds == sorted(bounds)

    def test_zero_weight_degenerates_to_one(self):
        assert similarity_upper_bound(1.0, 0.0, q=4) == 1.0

    def test_q_dependence(self):
        # Larger q -> larger baseline adjustment.
        assert similarity_upper_bound(0.0, 1.0, q=5) > similarity_upper_bound(
            0.0, 1.0, q=2
        )
