"""The fms similarity function — §3's definitions and worked example."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MatchConfig, TranspositionCost
from repro.core.fms import (
    fms,
    input_tuple_weight,
    transformation_cost,
    tuple_transformation_cost,
)
from repro.core.tokens import TupleTokens


class UnitWeights:
    """w(t, i) = 1 for every token — the paper's worked-example setting."""

    def weight(self, token, column):
        return 1.0

    def frequency(self, token, column):
        return 1


class MappedWeights:
    """Explicit (token, column) -> weight map; unknown tokens get 1.0."""

    def __init__(self, mapping):
        self.mapping = mapping

    def weight(self, token, column):
        return self.mapping.get((token, column), 1.0)

    def frequency(self, token, column):
        return 1


UNIT = UnitWeights()
CONFIG3 = MatchConfig(q=3, signature_size=2)


class TestTransformationCost:
    def test_identical_sequences_cost_zero(self):
        assert transformation_cost(("a", "b"), ("a", "b"), 0, UNIT, CONFIG3) == 0.0

    def test_replacement_cost_is_ed_times_weight(self):
        # replace 'beoing' by 'boeing': ed = 2/6.
        cost = transformation_cost(("beoing",), ("boeing",), 0, UNIT, CONFIG3)
        assert cost == pytest.approx(2 / 6)

    def test_paper_i3_r1_name_cost(self):
        """§3.1: tc(u[1], v[1]) = 0.33 + 0.64 ≈ 0.97 with unit weights."""
        cost = transformation_cost(
            ("beoing", "corporation"), ("boeing", "company"), 0, UNIT, CONFIG3
        )
        assert cost == pytest.approx(2 / 6 + 7 / 11, abs=1e-9)

    def test_deletion_costs_full_weight(self):
        cost = transformation_cost(("extra",), (), 0, UNIT, CONFIG3)
        assert cost == pytest.approx(1.0)

    def test_insertion_costs_cins_weight(self):
        cost = transformation_cost((), ("missing",), 0, UNIT, CONFIG3)
        assert cost == pytest.approx(CONFIG3.token_insertion_factor)

    def test_insert_delete_asymmetry(self):
        """Absent tokens are penalized less than spurious ones (§3.1)."""
        insert = transformation_cost((), ("tok",), 0, UNIT, CONFIG3)
        delete = transformation_cost(("tok",), (), 0, UNIT, CONFIG3)
        assert insert < delete

    def test_weights_scale_costs(self):
        weights = MappedWeights({("corporation", 0): 0.1})
        cheap = transformation_cost(("corporation",), ("company",), 0, weights, CONFIG3)
        expensive = transformation_cost(("boeing",), ("bon",), 0, weights, CONFIG3)
        # With IDF-style weights, replacing frequent 'corporation' is
        # cheaper than replacing rare 'boeing' despite larger edit distance.
        assert cheap < expensive

    def test_empty_to_empty(self):
        assert transformation_cost((), (), 0, UNIT, CONFIG3) == 0.0

    def test_column_weight_scales(self):
        base = transformation_cost(("a",), ("bb",), 0, UNIT, CONFIG3)
        doubled = transformation_cost(
            ("a",), ("bb",), 0, UNIT, CONFIG3, column_weight=2.0
        )
        assert doubled == pytest.approx(2 * base)

    def test_replacement_beats_delete_insert_when_similar(self):
        # 'beoing' -> 'boeing' should use replacement (0.33), not delete +
        # insert (1.0 + 0.5).
        cost = transformation_cost(("beoing",), ("boeing",), 0, UNIT, CONFIG3)
        assert cost < 1.0

    def test_delete_insert_beats_replacement_when_dissimilar(self):
        # Dissimilar same-length tokens: replacement ed = 1.0 * w = 1.0;
        # the DP should never pay more than that.
        cost = transformation_cost(("aaaa",), ("zzzz",), 0, UNIT, CONFIG3)
        assert cost <= 1.0


class TestFms:
    def test_paper_worked_example(self):
        """fms(I3, R1) = 1 − 0.97/5.0 ≈ 0.806 with unit weights."""
        i3 = ("Beoing Corporation", "Seattle", "WA", "98004")
        r1 = ("Boeing Company", "Seattle", "WA", "98004")
        similarity = fms(i3, r1, UNIT, CONFIG3)
        expected = 1 - (2 / 6 + 7 / 11) / 5.0
        assert similarity == pytest.approx(expected, abs=1e-9)

    def test_exact_match_is_one(self):
        values = ("Boeing Company", "Seattle", "WA", "98004")
        assert fms(values, values, UNIT, CONFIG3) == 1.0

    def test_case_insensitive(self):
        assert fms(("BOEING",), ("boeing",), UNIT, CONFIG3) == 1.0

    def test_bounded_below_by_zero(self):
        # Cost can exceed w(u); similarity must clamp at 0.
        similarity = fms(("a",), ("completely different tokens here",), UNIT, CONFIG3)
        assert similarity == 0.0

    def test_null_input_column(self):
        u = ("Company Beoing", "Seattle", None, "98014")
        v = ("Boeing Company", "Seattle", "WA", "98014")
        similarity = fms(u, v, UNIT, CONFIG3)
        assert 0.0 < similarity < 1.0

    def test_empty_input_tuple(self):
        assert fms((None,), (None,), UNIT, CONFIG3) == 1.0
        assert fms((None,), ("something",), UNIT, CONFIG3) == 0.0

    def test_asymmetry(self):
        u = ("boeing",)
        v = ("boeing company corporation",)
        assert fms(u, v, UNIT, CONFIG3) != fms(v, u, UNIT, CONFIG3)

    def test_accepts_tuple_tokens(self):
        u = TupleTokens.from_values(("boeing",))
        v = TupleTokens.from_values(("boeing",))
        assert fms(u, v, UNIT, CONFIG3) == 1.0

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fms(("a",), ("a", "b"), UNIT, CONFIG3)

    def test_default_config(self):
        assert fms(("x",), ("x",), UNIT) == 1.0

    @given(
        st.lists(
            st.one_of(st.none(), st.text(alphabet="abcd ", max_size=15)),
            min_size=1,
            max_size=3,
        ).map(tuple)
    )
    @settings(max_examples=80, deadline=None)
    def test_self_similarity(self, values):
        assert fms(values, values, UNIT, CONFIG3) == pytest.approx(1.0)

    @given(
        st.lists(st.text(alphabet="abcd ", max_size=15), min_size=2, max_size=2).map(tuple),
        st.lists(st.text(alphabet="abcd ", max_size=15), min_size=2, max_size=2).map(tuple),
    )
    @settings(max_examples=80, deadline=None)
    def test_range(self, u, v):
        assert 0.0 <= fms(u, v, UNIT, CONFIG3) <= 1.0


class TestTranspositions:
    def test_transposition_cheaper_than_two_replacements(self):
        config = CONFIG3.with_(allow_transpositions=True)
        without = fms(("company boeing",), ("boeing company",), UNIT, CONFIG3)
        with_swap = fms(("company boeing",), ("boeing company",), UNIT, config)
        assert with_swap > without

    def test_transposition_cost_functions(self):
        # Weights chosen so the swap beats insert+delete (1.5 * 0.8 = 1.2)
        # under every cost function, making each g observable.
        weights = MappedWeights({("a", 0): 0.8, ("b", 0): 0.9})
        u, v = ("b", "a"), ("a", "b")
        costs = {}
        for kind in TranspositionCost:
            config = CONFIG3.with_(
                allow_transpositions=True,
                transposition_cost=kind,
                transposition_constant=0.3,
            )
            costs[kind] = transformation_cost(u, v, 0, weights, config)
        assert costs[TranspositionCost.MINIMUM] == pytest.approx(0.8)
        assert costs[TranspositionCost.AVERAGE] == pytest.approx(0.85)
        assert costs[TranspositionCost.MAXIMUM] == pytest.approx(0.9)
        assert costs[TranspositionCost.CONSTANT] == pytest.approx(0.3)

    def test_transposition_only_adjacent_equal_pairs(self):
        config = CONFIG3.with_(allow_transpositions=True)
        # ('a','b') vs ('b','a') qualifies; ('a','b') vs ('c','a') does not.
        swap = transformation_cost(("a", "b"), ("b", "a"), 0, UNIT, config)
        no_swap = transformation_cost(("a", "b"), ("c", "a"), 0, UNIT, config)
        assert swap < no_swap

    def test_paper_i4_needs_transposition(self):
        """I4 [Company Beoing, ...]: with transpositions fms recognizes R1."""
        config = CONFIG3.with_(allow_transpositions=True)
        i4 = ("Company Beoing", "Seattle", None, "98014")
        r1 = ("Boeing Company", "Seattle", "WA", "98004")
        plain = fms(i4, r1, UNIT, CONFIG3)
        with_swap = fms(i4, r1, UNIT, config)
        assert with_swap > plain


class TestColumnWeights:
    def test_uniform_weights_match_plain(self):
        config = CONFIG3.with_(column_weights=(1.0, 1.0))
        u, v = ("beoing", "seattle"), ("boeing", "tacoma")
        assert fms(u, v, UNIT, config) == pytest.approx(fms(u, v, UNIT, CONFIG3))

    def test_upweighted_column_dominates(self):
        # Error in column 0 only; upweighting column 0 lowers similarity.
        u, v = ("beoing", "seattle"), ("boeing", "seattle")
        heavy = CONFIG3.with_(column_weights=(10.0, 1.0))
        light = CONFIG3.with_(column_weights=(1.0, 10.0))
        assert fms(u, v, UNIT, heavy) < fms(u, v, UNIT, light)

    def test_wrong_arity_rejected(self):
        config = CONFIG3.with_(column_weights=(1.0,))
        with pytest.raises(ValueError):
            fms(("a", "b"), ("a", "b"), UNIT, config)

    def test_input_weight_uses_column_weights(self):
        tokens = TupleTokens.from_values(("a", "b"))
        config = CONFIG3.with_(column_weights=(3.0, 1.0))
        # normalized to average 1: (1.5, 0.5) -> total weight 2.0.
        assert input_tuple_weight(tokens, UNIT, config) == pytest.approx(2.0)


class TestTupleTransformationCost:
    def test_sums_columns(self):
        u = TupleTokens.from_values(("beoing", "seatle"))
        v = TupleTokens.from_values(("boeing", "seattle"))
        total = tuple_transformation_cost(u, v, UNIT, CONFIG3)
        col0 = transformation_cost(("beoing",), ("boeing",), 0, UNIT, CONFIG3)
        col1 = transformation_cost(("seatle",), ("seattle",), 1, UNIT, CONFIG3)
        assert total == pytest.approx(col0 + col1)

    def test_arity_mismatch(self):
        u = TupleTokens.from_values(("a",))
        v = TupleTokens.from_values(("a", "b"))
        with pytest.raises(ValueError):
            tuple_transformation_cost(u, v, UNIT, CONFIG3)
