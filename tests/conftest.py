"""Shared fixtures: the paper's running example and a small workbench."""

from __future__ import annotations

import pytest

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.db.database import Database
from repro.eti.builder import build_eti

# Table 1 of the paper: the organization reference relation.
ORG_ROWS = (
    (1, ("Boeing Company", "Seattle", "WA", "98004")),
    (2, ("Bon Corporation", "Seattle", "WA", "98014")),
    (3, ("Companions", "Seattle", "WA", "98024")),
)

# Table 2: erroneous input tuples (I1..I4) and their intended targets.
ORG_INPUTS = (
    (("Beoing Company", "Seattle", "WA", "98004"), 1),
    (("Beoing Co.", "Seattle", "WA", "98004"), 1),
    (("Boeing Corporation", "Seattle", "WA", "98004"), 1),
    (("Company Beoing", "Seattle", None, "98014"), 1),
)

ORG_COLUMNS = ("org_name", "city", "state", "zipcode")


@pytest.fixture()
def org_db():
    db = Database.in_memory()
    yield db
    db.close()


@pytest.fixture()
def org_reference(org_db):
    """The Table 1 reference relation loaded into the engine."""
    reference = ReferenceTable(org_db, "orgs", list(ORG_COLUMNS))
    reference.load(ORG_ROWS)
    return reference


@pytest.fixture()
def org_weights(org_reference):
    return build_frequency_cache(
        org_reference.scan_values(), org_reference.num_columns
    )


@pytest.fixture()
def paper_config():
    """q=3, H=2 — the parameters of the paper's worked examples."""
    return MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)


@pytest.fixture()
def org_eti(org_db, org_reference, paper_config):
    eti, _ = build_eti(org_db, org_reference, paper_config)
    return eti
