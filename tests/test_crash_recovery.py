"""Deterministic crash-point recovery sweeps.

The harness kills a simulated process after the N-th durable operation
(page write, log append, fsync — see
:class:`~repro.db.faults.CrashPoint`), tearing the fatal write at a
seeded cut.  Sweeping N over a transactional maintenance workload visits
every distinct on-disk state a real crash could leave behind, and for
each one asserts the three durability invariants:

1. the recovered reference relation is a *consistent prefix* of the
   applied operations (never a half-applied tuple),
2. the recovered ETI equals a from-scratch rebuild over that prefix, and
3. fuzzy-match answers over the recovered index are identical to the
   rebuild's.

Scale the sweep with ``REPRO_CRASH_SEEDS`` (default 2 tear seeds; CI
runs 12).  The sweep itself carries the ``crash`` marker.
"""

import json
import os
import shutil

import pytest

from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.db.database import Database
from repro.db.errors import CrashError, DatabaseError
from repro.db.faults import CrashableStorage, CrashableWalFile, CrashPoint
from repro.db.fsck import check_database
from repro.db.page import PAGE_SIZE
from repro.db.pager import InMemoryStorage
from repro.db.snapshot import load_database, save_database
from repro.db.wal import WalFile, WalStorage
from repro.eti.builder import build_eti
from repro.eti.index import EtiIndex
from repro.eti.maintenance import EtiMaintainer

from tests.conftest import ORG_COLUMNS, ORG_ROWS

CONFIG = MatchConfig(q=3, signature_size=2)

SEEDS = range(int(os.environ.get("REPRO_CRASH_SEEDS", "2")))

# Maintenance operations applied after the template snapshot.  Each runs
# in its own WAL transaction, so every crash must land the database on a
# prefix of this sequence; all six prefix states are pairwise distinct.
OPS = (
    ("insert", 10, ("Boing Corp", "Kent", "WA", "98032")),
    ("insert", 11, ("Cascade Couriers", "Renton", "WA", "98055")),
    ("delete", 2, None),
    ("insert", 12, ("Bon Voyage Company", "Tacoma", "WA", "98402")),
    ("delete", 10, None),
)

QUERIES = (
    ("Beoing Company", "Seattle", "WA", "98004"),
    ("Bon Corporaton", "Seattle", "WA", "98014"),
    ("Cascade Couriers", "Renton", "WA", "98055"),
)


def eti_as_dict(eti):
    """Materialize an ETI as ``{key: (frequency, tid_list)}`` (layout-free)."""
    return {
        (row[0], row[1], row[2]): (
            row[3],
            tuple(row[4]) if row[4] is not None else None,
        )
        for row in eti.relation.scan()
    }


def expected_state(k):
    """Reference rows after the first ``k`` operations."""
    rows = {tid: tuple(values) for tid, values in ORG_ROWS}
    for kind, tid, values in OPS[:k]:
        if kind == "insert":
            rows[tid] = tuple(values)
        else:
            del rows[tid]
    return rows


def copy_template(template_dir, dest_dir):
    """Clone the template's page/meta/wal files; return the page path."""
    for name in os.listdir(template_dir):
        shutil.copy(os.path.join(template_dir, name), os.path.join(dest_dir, name))
    return str(dest_dir / "db.pages")


def run_workload(page_path, crash_point=None):
    """Load the database, apply every op transactionally, checkpoint.

    With a :class:`CrashPoint`, both the page file and the log are
    wrapped so the countdown covers their interleaved durable-op
    sequence, and the simulated death surfaces as :class:`CrashError`.
    """
    kwargs = {}
    if crash_point is not None:
        kwargs = {
            "storage_wrap": lambda s: CrashableStorage(s, crash_point),
            "wal_wrap": lambda w: CrashableWalFile(w, crash_point),
        }
    db = load_database(page_path, **kwargs)
    try:
        reference = ReferenceTable.attach(db, "orgs", list(ORG_COLUMNS))
        eti = EtiIndex(db.relation("eti"))
        maintainer = EtiMaintainer(reference, eti, CONFIG, database=db)
        for kind, tid, values in OPS:
            if kind == "insert":
                maintainer.insert_tuple(tid, values)
            else:
                maintainer.delete_tuple(tid)
        # Explicit path: the crash wrappers hide the FileStorage underneath.
        save_database(db, page_path)
    finally:
        # Not db.close(): closing flushes, and a dead process must not
        # issue further I/O.  Release the file descriptors only.
        db.pool.storage.close()


def verify_recovered(page_path):
    """Assert all three durability invariants; return the recovered prefix."""
    report = check_database(page_path)
    assert report.ok, report.errors

    db = load_database(page_path)
    try:
        reference = ReferenceTable.attach(db, "orgs", list(ORG_COLUMNS))
        got = {tid: tuple(values) for tid, values in reference.scan()}
        prefixes = [k for k in range(len(OPS) + 1) if expected_state(k) == got]
        assert prefixes, f"recovered state matches no op prefix: {sorted(got)}"
        k = prefixes[0]

        fresh_db = Database.in_memory()
        fresh_ref = ReferenceTable(fresh_db, "orgs", list(ORG_COLUMNS))
        fresh_ref.load(sorted(got.items()))
        fresh_eti, _ = build_eti(fresh_db, fresh_ref, CONFIG)
        recovered_eti = EtiIndex(db.relation("eti"))
        assert eti_as_dict(recovered_eti) == eti_as_dict(fresh_eti), (
            f"recovered ETI diverges from a rebuild over prefix {k}"
        )

        weights = build_frequency_cache(
            reference.scan_values(), reference.num_columns
        )
        fresh_weights = build_frequency_cache(
            fresh_ref.scan_values(), fresh_ref.num_columns
        )
        matcher = FuzzyMatcher(reference, weights, CONFIG, recovered_eti)
        fresh_matcher = FuzzyMatcher(fresh_ref, fresh_weights, CONFIG, fresh_eti)
        for query in QUERIES:
            recovered_answer = [
                (m.tid, m.similarity) for m in matcher.match(query).matches
            ]
            rebuilt_answer = [
                (m.tid, m.similarity) for m in fresh_matcher.match(query).matches
            ]
            assert recovered_answer == rebuilt_answer, (query, k)
        fresh_db.close()
        return k
    finally:
        db.close()


@pytest.fixture(scope="module")
def template_dir(tmp_path_factory):
    """A snapshotted reference + ETI warehouse, cloned per crash run."""
    base = tmp_path_factory.mktemp("crash-template")
    db = Database.on_disk(str(base / "db.pages"))
    reference = ReferenceTable(db, "orgs", list(ORG_COLUMNS))
    reference.load(ORG_ROWS)
    build_eti(db, reference, CONFIG)
    save_database(db)
    db.close()
    return base


@pytest.fixture(scope="module")
def total_ops(template_dir, tmp_path_factory):
    """Durable-op count of one crash-free workload (the sweep's range)."""
    work = tmp_path_factory.mktemp("crash-dryrun")
    page_path = copy_template(template_dir, work)
    probe = CrashPoint(crash_after=10**9)
    run_workload(page_path, probe)
    assert not probe.crashed
    return probe.ops


class TestCrashFree:
    def test_workload_without_crash_applies_every_op(self, template_dir, tmp_path):
        page_path = copy_template(template_dir, tmp_path)
        run_workload(page_path)
        assert verify_recovered(page_path) == len(OPS)

    def test_workload_has_enough_crash_points(self, total_ops):
        # The sweep must cover every transaction boundary and the
        # checkpoint's apply/meta/reset phases.
        assert total_ops > 4 * len(OPS)


class TestCrashSweep:
    @pytest.mark.crash
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_crash_point_recovers_consistently(
        self, template_dir, total_ops, tmp_path, seed
    ):
        recovered_prefixes = set()
        for crash_after in range(total_ops):
            work = tmp_path / f"run-{crash_after}"
            work.mkdir()
            page_path = copy_template(template_dir, work)
            crash_point = CrashPoint(crash_after, seed=seed)
            with pytest.raises(CrashError):
                run_workload(page_path, crash_point)
            recovered_prefixes.add(verify_recovered(page_path))
            shutil.rmtree(work)  # keep the sweep's disk footprint flat
        # The sweep must actually traverse the workload: the earliest
        # crash recovers the template, the latest recovers everything.
        assert 0 in recovered_prefixes
        assert len(OPS) in recovered_prefixes

    def test_crash_during_checkpoint_loses_nothing(
        self, template_dir, total_ops, tmp_path
    ):
        # The final durable ops belong to save_database; dying there must
        # still recover every committed operation.
        page_path = copy_template(template_dir, tmp_path)
        crash_point = CrashPoint(total_ops - 1, seed=0)
        with pytest.raises(CrashError):
            run_workload(page_path, crash_point)
        assert verify_recovered(page_path) == len(OPS)


class TestWalRecordIntegrity:
    def test_large_commit_payload_survives_reopen(self, tmp_path):
        # Regression: the scan used to reject any record whose payload
        # exceeded ~32 KiB as a corrupt length field, so a committed
        # catalog manifest past that size (a few thousand heap/ETI pages'
        # worth of page_numbers) was fsync'd, reported durable, and then
        # silently truncated away — transaction and all — on the next open.
        wal_path = str(tmp_path / "big.wal")
        storage = WalStorage(InMemoryStorage(), WalFile(wal_path))
        storage.allocate()
        storage.write(0, b"\x07" * PAGE_SIZE)
        manifest = json.dumps({"page_numbers": list(range(40_000))}).encode()
        assert len(manifest) > 200_000
        storage.commit(manifest)
        storage.close()

        reopened = WalStorage(InMemoryStorage(), WalFile(wal_path))
        assert reopened.recovery.torn_bytes == 0
        assert reopened.recovery.committed_txns == 1
        assert reopened.recovered_catalog == manifest
        assert reopened.read(0) == b"\x07" * PAGE_SIZE
        reopened.close()

    def test_short_pwrite_appends_whole_record(self, tmp_path, monkeypatch):
        # Regression: WalFile.append ignored os.pwrite's return value, so
        # a short write left a gap in the log that commit() still reported
        # durable; the transaction then vanished as a torn tail on reopen.
        real_pwrite = os.pwrite

        def trickle_pwrite(fd, data, offset):
            return real_pwrite(fd, bytes(data)[:7], offset)

        monkeypatch.setattr("repro.db.wal.os.pwrite", trickle_pwrite)
        wal_path = str(tmp_path / "trickle.wal")
        storage = WalStorage(InMemoryStorage(), WalFile(wal_path))
        storage.allocate()
        storage.write(0, b"\x03" * PAGE_SIZE)
        storage.commit(b"manifest")
        storage.close()
        monkeypatch.undo()

        reopened = WalStorage(InMemoryStorage(), WalFile(wal_path))
        assert reopened.recovery.torn_bytes == 0
        assert reopened.recovery.committed_txns == 1
        assert reopened.recovered_catalog == b"manifest"
        assert reopened.read(0) == b"\x03" * PAGE_SIZE
        reopened.close()


class TestTornAndForeignLogs:
    def test_torn_tail_is_discarded(self, template_dir, tmp_path):
        page_path = copy_template(template_dir, tmp_path)
        db = load_database(page_path)
        reference = ReferenceTable.attach(db, "orgs", list(ORG_COLUMNS))
        eti = EtiIndex(db.relation("eti"))
        maintainer = EtiMaintainer(reference, eti, CONFIG, database=db)
        maintainer.insert_tuple(10, ("Boing Corp", "Kent", "WA", "98032"))
        db.pool.storage.close()

        with open(page_path + ".wal", "ab") as handle:
            handle.write(b"\x02garbage-from-a-torn-append")

        reopened = load_database(page_path)
        assert reopened.wal.recovery.torn_bytes > 0
        assert 10 in ReferenceTable.attach(reopened, "orgs", list(ORG_COLUMNS))
        reopened.close()

    def test_foreign_generation_is_refused(self, template_dir, tmp_path):
        page_path = copy_template(template_dir, tmp_path)
        db = load_database(page_path)
        # Forge a log from a different lineage: bump its generation far
        # past the snapshot's.
        db.wal.reset(db.wal.generation + 7)
        db.pool.storage.close()
        with pytest.raises(DatabaseError, match="generation"):
            load_database(page_path)

    def test_stale_pre_checkpoint_log_is_discarded(self, template_dir, tmp_path):
        # A log exactly one generation behind the snapshot is the
        # checkpoint-crash leftover: its images are already in the page
        # file, so load must discard it and still answer correctly.
        page_path = copy_template(template_dir, tmp_path)
        db = load_database(page_path)
        db.wal.reset(db.wal.generation - 1)
        db.pool.storage.close()
        reopened = load_database(page_path)
        assert reopened.wal.generation == reopened.wal.recovery.generation + 1
        assert sorted(
            tid for tid, _ in ReferenceTable.attach(
                reopened, "orgs", list(ORG_COLUMNS)
            ).scan()
        ) == [1, 2, 3]
        reopened.close()
