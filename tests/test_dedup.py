"""Offline fuzzy-duplicate elimination."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MatchConfig
from repro.core.reference import ReferenceTable
from repro.data.errors import ErrorModel
from repro.data.generator import generate_customers
from repro.db.database import Database
from repro.dedup import FuzzyDeduplicator, UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert not uf.connected(1, 2)

    def test_union_connects(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.connected(1, 2)
        assert uf.find(1) == uf.find(2)

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_groups(self):
        uf = UnionFind([0])
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        groups = sorted(uf.groups().values())
        assert groups == [[0], [1, 2, 3], [4, 5]]

    def test_implicit_add_on_find(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf

    def test_connected_unknown_items(self):
        uf = UnionFind()
        assert not uf.connected("a", "b")
        assert len(uf) == 0

    def test_union_returns_root(self):
        uf = UnionFind()
        root = uf.union("a", "b")
        assert root in ("a", "b")
        assert uf.find("a") == root

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_partition(self, pairs):
        uf = UnionFind()
        naive: list[set] = []
        for a, b in pairs:
            uf.union(a, b)
            set_a = next((s for s in naive if a in s), None)
            set_b = next((s for s in naive if b in s), None)
            if set_a is None and set_b is None:
                naive.append({a, b})
            elif set_a is None:
                set_b.add(a)
            elif set_b is None:
                set_a.add(b)
            elif set_a is not set_b:
                set_a |= set_b
                naive.remove(set_b)
        for group in naive:
            members = sorted(group)
            for member in members[1:]:
                assert uf.connected(members[0], member)


def relation_with_filler(name, rows, filler=40, seed=29):
    """A relation with ``rows`` plus generated filler tuples.

    Tiny relations make IDF degenerate (a token occurring in every tuple
    weighs zero); the filler gives the interesting rows realistic weights.
    """
    customers = generate_customers(filler * 2, seed=seed, unique=True)
    db = Database.in_memory()
    num_columns = len(rows[0][1])
    reference = ReferenceTable(
        db, name, ["name", "city", "state", "zipcode"][:num_columns]
    )
    # Column truncation can re-introduce duplicates; keep distinct prefixes.
    seen = set()
    loaded = 0
    for customer in customers:
        values = customer.values[:num_columns]
        if values in seen or loaded >= filler:
            continue
        seen.add(values)
        reference.insert(loaded, values)
        loaded += 1
    reference.load(rows)
    return db, reference


def make_relation_with_duplicates(num_clean=120, duplicate_groups=8, seed=11):
    """A relation where some customers appear 2-3 times with errors."""
    customers = generate_customers(num_clean, seed=seed, unique=True)
    error_model = ErrorModel((0.5, 0.3, 0.3, 0.3), seed=seed + 1)
    rows = [(c.tid, c.values) for c in customers]
    expected_groups = []
    next_tid = num_clean
    for i in range(duplicate_groups):
        source = customers[i * 7]
        group = [source.tid]
        for _ in range(2):
            dirty, _ = error_model.corrupt(source.values)
            rows.append((next_tid, dirty))
            group.append(next_tid)
            next_tid += 1
        expected_groups.append(tuple(group))
    db = Database.in_memory()
    reference = ReferenceTable(db, "dup_rel", ["name", "city", "state", "zipcode"])
    reference.load(rows)
    return db, reference, expected_groups


class TestFuzzyDeduplicator:
    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzyDeduplicator(threshold=0.0)
        with pytest.raises(ValueError):
            FuzzyDeduplicator(neighbors=0)

    def test_clean_relation_has_no_clusters(self):
        customers = generate_customers(60, seed=3, unique=True)
        db = Database.in_memory()
        reference = ReferenceTable(db, "clean", ["name", "city", "state", "zipcode"])
        reference.load((c.tid, c.values) for c in customers)
        report = FuzzyDeduplicator(threshold=0.95).deduplicate(reference, db)
        assert report.clusters == []
        assert report.duplicate_count == 0
        assert report.tuples_scanned == 60

    def test_finds_injected_duplicates(self):
        db, reference, expected_groups = make_relation_with_duplicates()
        dedup = FuzzyDeduplicator(threshold=0.60, config=MatchConfig())
        report = dedup.deduplicate(reference, db)
        found = {tuple(sorted(c.member_tids)) for c in report.clusters}
        hits = sum(
            1
            for group in expected_groups
            if any(set(group) <= set(cluster) for cluster in found)
        )
        # Most injected groups must be recovered fully.
        assert hits >= len(expected_groups) * 0.7

    def test_exact_duplicates_always_cluster(self):
        db, reference = relation_with_filler(
            "exact",
            [
                (100, ("pacific holdings", "seattle")),
                (101, ("pacific holdings", "seattle")),
                (102, ("granite partners", "tacoma")),
            ],
        )
        report = FuzzyDeduplicator(threshold=0.99).deduplicate(reference, db)
        assert len(report.clusters) == 1
        assert report.clusters[0].member_tids == (100, 101)

    def test_canonical_is_most_informative(self):
        """The canonical tuple carries the most token weight (no missing
        fields), so the complete variant survives."""
        db, reference = relation_with_filler(
            "canon",
            [
                (100, ("sterling manufacturing", None)),
                (101, ("sterling manufacturing", "spokane")),
                (102, ("harbor logistics", "portland")),
            ],
        )
        from repro.core.config import MatchConfig as MC
        from repro.core.fms import fms as fms_fn
        from repro.core.weights import build_frequency_cache

        weights = build_frequency_cache(reference.scan_values(), 2)
        forward = fms_fn(reference.fetch(100), reference.fetch(101), weights, MC())
        report = FuzzyDeduplicator(threshold=forward - 0.02).deduplicate(
            reference, db
        )
        # Filler person-names may form their own clusters at this
        # threshold; the assertion targets the planted pair's cluster.
        cluster = next(c for c in report.clusters if 100 in c.member_tids)
        assert cluster.member_tids == (100, 101)
        assert cluster.canonical_tid == 101
        assert cluster.duplicate_tids == (100,)

    def test_duplicates_of_mapping(self):
        db, reference = relation_with_filler(
            "map", [(100, ("acme widgets", "yakima")), (101, ("acme widgets", "yakima"))]
        )
        report = FuzzyDeduplicator(threshold=0.99).deduplicate(reference, db)
        mapping = report.duplicates_of()
        assert len(mapping) == 1
        (duplicate, canonical), = mapping.items()
        assert {duplicate, canonical} == {100, 101}

    def test_temporary_eti_dropped(self):
        db = Database.in_memory()
        reference = ReferenceTable(db, "tidy", ["name"])
        reference.load([(0, ("alpha",)), (1, ("beta",))])
        FuzzyDeduplicator(threshold=0.9).deduplicate(reference, db)
        assert "tidy_dedup_eti" not in db

    def test_asymmetric_direction_merges_missing_field(self):
        """A tuple with a dropped token merges with its complete version
        thanks to the reverse-direction fms check.

        Forward (complete -> incomplete) pays a full deletion of
        'evergreen'; reverse only pays the discounted insertion, so only
        the reverse direction clears the threshold.
        """
        db, reference = relation_with_filler(
            "asym",
            [
                (100, ("cascade evergreen ventures", "bellingham")),
                (101, ("cascade ventures", "bellingham")),
                (102, ("quantum dynamics", "boise")),
            ],
        )
        from repro.core.config import MatchConfig as MC
        from repro.core.fms import fms as fms_fn
        from repro.core.weights import build_frequency_cache

        weights = build_frequency_cache(reference.scan_values(), 2)
        forward = fms_fn(
            reference.fetch(100), reference.fetch(101), weights, MC()
        )
        reverse = fms_fn(
            reference.fetch(101), reference.fetch(100), weights, MC()
        )
        # Pick a threshold separating the two directions, so only the
        # reverse check can merge the pair.
        threshold = (forward + reverse) / 2
        assert forward < threshold < reverse
        report = FuzzyDeduplicator(threshold=threshold).deduplicate(reference, db)
        assert any(
            set(c.member_tids) == {100, 101} for c in report.clusters
        ), report.clusters
