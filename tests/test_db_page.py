"""Slotted page behaviour."""

import pytest

from repro.db.errors import PageFullError, RecordNotFoundError
from repro.db.page import MAX_RECORD_SIZE, PAGE_SIZE, Page


class TestPageBasics:
    def test_fresh_page_empty(self):
        page = Page()
        assert page.num_slots == 0
        assert list(page.records()) == []

    def test_insert_and_read(self):
        page = Page()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_insert_returns_sequential_slots(self):
        page = Page()
        slots = [page.insert(bytes([i])) for i in range(10)]
        assert slots == list(range(10))

    def test_insert_sets_dirty(self):
        page = Page()
        assert not page.dirty
        page.insert(b"x")
        assert page.dirty

    def test_records_yields_all_live(self):
        page = Page()
        payloads = [f"rec{i}".encode() for i in range(5)]
        for p in payloads:
            page.insert(p)
        assert [r for _, r in page.records()] == payloads

    def test_empty_record_allowed(self):
        page = Page()
        slot = page.insert(b"")
        assert page.read(slot) == b""


class TestPageDelete:
    def test_delete_removes_from_records(self):
        page = Page()
        page.insert(b"a")
        slot_b = page.insert(b"b")
        page.insert(b"c")
        page.delete(slot_b)
        assert [r for _, r in page.records()] == [b"a", b"c"]

    def test_read_deleted_raises(self):
        page = Page()
        slot = page.insert(b"a")
        page.delete(slot)
        with pytest.raises(RecordNotFoundError):
            page.read(slot)

    def test_double_delete_raises(self):
        page = Page()
        slot = page.insert(b"a")
        page.delete(slot)
        with pytest.raises(RecordNotFoundError):
            page.delete(slot)

    def test_out_of_range_slot_raises(self):
        page = Page()
        with pytest.raises(RecordNotFoundError):
            page.read(0)
        with pytest.raises(RecordNotFoundError):
            page.read(-1)


class TestPageCapacity:
    def test_oversized_record_rejected(self):
        page = Page()
        with pytest.raises(PageFullError):
            page.insert(b"x" * (MAX_RECORD_SIZE + 1))

    def test_max_record_fits_on_fresh_page(self):
        page = Page()
        slot = page.insert(b"x" * MAX_RECORD_SIZE)
        assert len(page.read(slot)) == MAX_RECORD_SIZE

    def test_free_space_decreases(self):
        page = Page()
        before = page.free_space
        page.insert(b"x" * 100)
        assert page.free_space < before

    def test_page_fills_up(self):
        page = Page()
        inserted = 0
        record = b"y" * 512
        while page.can_fit(record):
            page.insert(record)
            inserted += 1
        assert inserted > 0
        with pytest.raises(PageFullError):
            page.insert(record)

    def test_many_small_records(self):
        page = Page()
        count = 0
        while page.can_fit(b"z"):
            page.insert(b"z")
            count += 1
        # Each record costs 1 byte data + 4 bytes slot.
        assert count > PAGE_SIZE // 10


class TestPageSerialization:
    def test_round_trip_through_bytes(self):
        page = Page()
        for i in range(20):
            page.insert(f"record-{i}".encode())
        page.delete(5)
        restored = Page(bytes(page.data))
        assert list(restored.records()) == list(page.records())

    def test_wrong_buffer_size_rejected(self):
        with pytest.raises(ValueError):
            Page(b"short")

    def test_restored_page_not_dirty(self):
        page = Page()
        page.insert(b"a")
        restored = Page(bytes(page.data))
        assert not restored.dirty
