"""The cross-query cache layer: LRU mechanics, counters, and parity.

The contract under test is twofold: the caches must behave like caches
(bounded, LRU eviction, accurate hit/miss/eviction accounting), and they
must be *invisible* in results — a cached matcher returns bit-identical
``Match`` lists to an uncached one on the synthetic error-injected
dataset, across every strategy, including after reference and weight
mutations (version-based invalidation).
"""

import threading
import time

import pytest

from repro.core.batch import BatchMatcher
from repro.core.cache import (
    CachingWeightFunction,
    LRUCache,
    MatcherCaches,
)
from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import build_eti


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "default") == "default"

    def test_counts_hits_and_misses(self):
        cache = LRUCache(4)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_capacity_is_a_hard_bound(self):
        cache = LRUCache(8)
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 8
        assert cache.stats.evictions == 92

    def test_get_or_compute_computes_once(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_compute_error_caches_nothing(self):
        cache = LRUCache(4)

        def boom():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        assert cache.get_or_compute("k", lambda: 7) == 7

    def test_disabled_cache_stores_nothing(self):
        cache = LRUCache(0)
        assert not cache.enabled
        cache.put("a", 1)
        assert cache.get("a") is None
        calls = []
        for _ in range(2):
            cache.get_or_compute("a", lambda: calls.append(1) or 5)
        assert len(calls) == 2  # recomputed every time
        assert cache.stats.hits == 0
        assert cache.stats.misses == 3

    def test_clear_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestMatcherCaches:
    def test_disabled_bundle(self):
        caches = MatcherCaches.disabled()
        assert not caches.enabled
        assert all(not cache.enabled for cache in caches.all_caches())

    def test_counters_shape(self):
        caches = MatcherCaches()
        counters = caches.counters()
        assert set(counters) == {"reference_tokens", "token_weights", "signatures"}
        for bucket in counters.values():
            assert {"hits", "misses", "evictions", "hit_rate", "entries"} <= set(
                bucket
            )


class TestCachingWeightFunction:
    def test_parity_with_base(self, org_weights):
        cached = CachingWeightFunction(org_weights, LRUCache(128))
        for token, column in [("boeing", 0), ("seattle", 1), ("unseen", 0)]:
            assert cached.weight(token, column) == org_weights.weight(token, column)
            assert cached.frequency(token, column) == org_weights.frequency(
                token, column
            )

    def test_invalidates_on_weight_mutation(self, org_weights):
        cached = CachingWeightFunction(org_weights, LRUCache(128))
        before = cached.weight("boeing", 0)
        org_weights.add_tuple(("Boeing Blimps", "Everett", "WA", "98201"))
        after = cached.weight("boeing", 0)
        assert after == org_weights.weight("boeing", 0)
        assert after != before  # |R| and freq(boeing) both moved


def build_error_injected_world(num_reference=300, num_inputs=60, repeats=3):
    """A synthetic reference relation plus an error-injected dirty batch."""
    customers = generate_customers(num_reference, seed=11, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    config = MatchConfig(q=4, signature_size=2)
    eti, _ = build_eti(db, reference, config)
    dataset = make_dataset(rows, DatasetSpec.preset("D2"), num_inputs, seed=12)
    batch = [dirty.values for dirty in dataset.inputs] * repeats
    return db, reference, weights, config, eti, batch


def result_view(results):
    return [
        [(match.tid, match.similarity, match.values) for match in result.matches]
        for result in results
    ]


@pytest.fixture(scope="module")
def error_world():
    db, reference, weights, config, eti, batch = build_error_injected_world()
    yield reference, weights, config, eti, batch
    db.close()


class TestCachedUncachedParity:
    @pytest.mark.parametrize("strategy", ["naive", "basic", "osc"])
    def test_identical_matches(self, error_world, strategy):
        reference, weights, config, eti, batch = error_world
        subset = batch if strategy != "naive" else batch[:30]
        uncached = FuzzyMatcher(
            reference, weights, config, eti, caches=MatcherCaches.disabled()
        )
        cached = FuzzyMatcher(reference, weights, config, eti)
        expected = result_view(
            [uncached.match(values, k=3, strategy=strategy) for values in subset]
        )
        # Twice through the same matcher: the second pass runs hot.
        for _ in range(2):
            got = result_view(
                [cached.match(values, k=3, strategy=strategy) for values in subset]
            )
            assert got == expected

    def test_match_many_equals_per_tuple_match(self, error_world):
        reference, weights, config, eti, batch = error_world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        bulk = matcher.match_many(batch)
        singles = [matcher.match(values) for values in batch]
        assert result_view(bulk) == result_view(singles)

    def test_stats_report_cache_hits_on_repeat(self, error_world):
        reference, weights, config, eti, batch = error_world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        matcher.match(batch[0])
        repeat = matcher.match(batch[0])
        assert repeat.stats.weight_cache_hits > 0
        assert repeat.stats.signature_cache_hits > 0
        assert repeat.stats.reference_cache_hits > 0
        assert repeat.stats.weight_cache_misses == 0
        assert repeat.stats.signature_cache_misses == 0

    def test_candidates_fetched_unchanged_by_caching(self, error_world):
        """The Figure 8 metric counts logical fetches, cached or not."""
        reference, weights, config, eti, batch = error_world
        uncached = FuzzyMatcher(
            reference, weights, config, eti, caches=MatcherCaches.disabled()
        )
        cached = FuzzyMatcher(reference, weights, config, eti)
        for values in batch[:20]:
            a = uncached.match(values).stats.candidates_fetched
            cached.match(values)
            b = cached.match(values).stats.candidates_fetched  # hot run
            assert a == b

    def test_reference_mutation_invalidates_tokens(self, error_world):
        reference, weights, config, eti, batch = error_world
        matcher = FuzzyMatcher(reference, weights, config, eti)
        matcher.match(batch[0])  # warm the reference-token cache
        tid, values = next(iter(reference.scan()))
        removed = reference.delete(tid)
        try:
            result = matcher.match(removed, strategy="naive", k=1)
            assert all(match.tid != tid for match in result.matches)
        finally:
            reference.insert(tid, removed)


class TestBatchInvalidationRace:
    """Version-based invalidation against warm :class:`BatchMatcher` workers.

    The batch engine keeps worker matchers (and their caches) alive across
    batches; mutating the weight provider or the reference relation bumps a
    version that every worker's cache layer watches.  The contract: after a
    mutation, no worker may serve a stale cached entry — batch results must
    be bit-identical to a freshly built uncached matcher's.
    """

    def make_world(self):
        return build_error_injected_world(
            num_reference=150, num_inputs=20, repeats=2
        )

    def fresh_expected(self, reference, weights, config, eti, batch):
        matcher = FuzzyMatcher(
            reference, weights, config, eti, caches=MatcherCaches.disabled()
        )
        return result_view([matcher.match(v, k=2) for v in batch])

    def test_weight_mutation_between_batches(self):
        db, reference, weights, config, eti, batch = self.make_world()
        try:
            with BatchMatcher(reference, weights, config, eti, jobs=2) as engine:
                engine.match_many(batch, k=2)  # warm every worker's memo
                weights.add_tuple(
                    ("zyzzyva consolidated", "outpost", "zz", "99999")
                )
                got = result_view(engine.match_many(batch, k=2))
                assert got == self.fresh_expected(
                    reference, weights, config, eti, batch
                )
        finally:
            db.close()

    def test_reference_mutation_between_batches(self):
        db, reference, weights, config, eti, batch = self.make_world()
        try:
            with BatchMatcher(reference, weights, config, eti, jobs=2) as engine:
                engine.match_many(batch, k=2)  # warm reference-token caches
                tid, values = next(iter(reference.scan()))
                reference.delete(tid)
                reference.insert(tid, ("renamed entity",) + tuple(values[1:]))
                got = result_view(engine.match_many(batch, k=2))
                assert got == self.fresh_expected(
                    reference, weights, config, eti, batch
                )
        finally:
            db.close()

    def test_weight_mutation_mid_batch_settles_exact(self):
        """A version bump racing in-flight workers never wedges the caches.

        The mid-flight batch itself may mix pre- and post-mutation weights
        (queries already running finish with what they started with); the
        guarantee under test is that the workers' memos notice the version
        bump, so the next quiesced batch is exact.
        """
        db, reference, weights, config, eti, batch = self.make_world()
        try:
            big_batch = batch * 4
            with BatchMatcher(reference, weights, config, eti, jobs=4) as engine:
                engine.match_many(batch, k=2)  # warm the workers

                def mutate():
                    time.sleep(0.005)  # land mid-batch
                    weights.add_tuple(
                        ("interleaved mutation inc", "midflight", "mm", "12121")
                    )

                mutator = threading.Thread(target=mutate)
                mutator.start()
                racy = engine.match_many(big_batch, k=2)
                mutator.join()
                assert len(racy) == len(big_batch)

                got = result_view(engine.match_many(batch, k=2))
                assert got == self.fresh_expected(
                    reference, weights, config, eti, batch
                )
        finally:
            db.close()
