"""Call graph: per-edge resolution, reachability, and output determinism."""

from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.callgraph import DYNAMIC, Program
from repro.analysis.framework import Module

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def fixture_program():
    module = Module.load(FIXTURES / "callgraph_edges.py")
    return Program([module])


def _edges_from_run(program):
    run_qualname = next(
        q for q in program.functions if q.endswith("Widget.run")
    )
    return {
        (edge.callee.rsplit(".", 1)[-1], edge.resolution)
        for edge in program.callees(run_qualname)
    }


def test_self_method_edge(fixture_program):
    assert ("refresh", "self") in _edges_from_run(fixture_program)


def test_module_level_function_edge(fixture_program):
    assert ("helper", "local") in _edges_from_run(fixture_program)


def test_aliased_import_edge(fixture_program):
    """``import json as j; j.loads(...)`` resolves to ``json.loads``."""
    run_qualname = next(
        q for q in fixture_program.functions if q.endswith("Widget.run")
    )
    edges = {e.callee: e.resolution for e in fixture_program.callees(run_qualname)}
    assert edges.get("json.loads") == "import"


def test_unresolvable_call_is_dynamic(fixture_program):
    """A method on an untyped value falls back to the <dynamic> sink."""
    assert (DYNAMIC, "dynamic") in _edges_from_run(fixture_program)


def test_edges_are_in_source_order(fixture_program):
    run_qualname = next(
        q for q in fixture_program.functions if q.endswith("Widget.run")
    )
    lines = [edge.line for edge in fixture_program.callees(run_qualname)]
    assert lines == sorted(lines)


def test_reaches_returns_witness_path():
    """Transitive reachability reports the chain to the blocking seed."""
    module = Module.load(FIXTURES / "bad_blocking.py")
    program = Program([module])
    flush = next(q for q in program.functions if q.endswith("._flush"))
    witness = program.reaches({"os.fsync"})
    assert flush in witness
    assert witness[flush][-1] == "os.fsync"


def test_program_over_package_builds_and_resolves():
    """The graph over the real package resolves a healthy share of edges."""
    modules = [
        Module.load(p, root=SRC_REPRO.parent)
        for p in sorted(SRC_REPRO.rglob("*.py"))
    ]
    program = Program(modules)
    assert len(program.functions) > 300
    resolved = [e for e in program.edges if e.callee != DYNAMIC]
    assert len(resolved) > 500


def test_json_output_is_byte_identical_across_runs(capsys):
    """The acceptance gate: --format json is deterministic."""
    assert main(["--format", "json", str(FIXTURES / "bad_blocking.py")]) == 1
    first = capsys.readouterr().out
    assert main(["--format", "json", str(FIXTURES / "bad_blocking.py")]) == 1
    second = capsys.readouterr().out
    assert first == second
    assert first.encode() == second.encode()


def test_sarif_output_has_rules_and_results(capsys):
    import json

    assert main(["--format", "sarif", str(FIXTURES / "bad_blocking.py")]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    run_block = document["runs"][0]
    rule_ids = {r["id"] for r in run_block["tool"]["driver"]["rules"]}
    assert "blocking-under-lock" in rule_ids
    assert all(
        r["ruleId"] in rule_ids and r["locations"] for r in run_block["results"]
    )
