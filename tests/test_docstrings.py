"""Documentation coverage: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MEMBER_PREFIXES = ("_",)


def iter_repro_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [
        module.__name__
        for module in iter_repro_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_repro_modules():
        for name, obj in vars(module).items():
            if name.startswith(IGNORED_MEMBER_PREFIXES):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at the definition site
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_public_methods_documented():
    missing = []
    for module in iter_repro_modules():
        for class_name, cls in vars(module).items():
            if class_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for method_name, method in vars(cls).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{class_name}.{method_name}")
    assert not missing, f"public methods without docstrings: {missing}"
