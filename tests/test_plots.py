"""ASCII chart rendering."""

import pytest

from repro.eval.figures import FigureResult
from repro.eval.plots import bar_chart, figure_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], title="T", width=10)
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a  |")
        assert lines[2].startswith("bb |")
        # The max value fills the full width.
        assert "█" * 10 in lines[2]

    def test_proportional_bars(self):
        chart = bar_chart(["x", "y"], [5.0, 10.0], width=10)
        x_line, y_line = chart.splitlines()
        assert x_line.count("█") == 5
        assert y_line.count("█") == 10

    def test_shared_ceiling(self):
        chart = bar_chart(["x"], [1.0], max_value=4.0, width=8)
        assert chart.count("█") == 2

    def test_value_formatting(self):
        chart = bar_chart(["x"], [0.123456], value_format="{:.4f}")
        assert "0.1235" in chart

    def test_empty_series(self):
        assert "(no data)" in bar_chart([], [], title="empty")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_zero_values(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0], width=10)
        assert "█" not in chart

    def test_negative_clamped(self):
        chart = bar_chart(["a", "b"], [-1.0, 2.0], width=10)
        first = chart.splitlines()[0]
        assert first.count("█") == 0


class TestGroupedBarChart:
    def test_groups_per_label(self):
        chart = grouped_bar_chart(
            ["Q_1", "Q_2"],
            {"D1": [1.0, 2.0], "D2": [3.0, 4.0]},
            width=8,
        )
        lines = [l for l in chart.splitlines() if l]
        assert len(lines) == 4
        assert lines[0].startswith("Q_1 D1")
        assert lines[3].startswith("Q_2 D2")

    def test_shared_scale(self):
        chart = grouped_bar_chart(
            ["x"], {"a": [5.0], "b": [10.0]}, width=10
        )
        a_line, b_line = [l for l in chart.splitlines() if l]
        assert a_line.count("█") == 5
        assert b_line.count("█") == 10

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["x", "y"], {"a": [1.0]})


class TestFigureChart:
    def test_renders_figure_result(self):
        figure = FigureResult(
            "Figure 10: OSC", ("strategy", "success"), [("Q_1", 0.6), ("Q_2", 0.8)]
        )
        chart = figure_chart(figure, width=10)
        assert "Figure 10" in chart
        assert "success" in chart
        assert chart.count("|") == 4
