"""Tokenization and per-column token identity."""

from hypothesis import given, strategies as st

from repro.core.tokens import DEFAULT_DELIMITERS, TupleTokens, tokenize


class TestTokenize:
    def test_whitespace_split(self):
        assert tokenize("Boeing Company") == ["boeing", "company"]

    def test_lowercasing(self):
        assert tokenize("SEATTLE") == ["seattle"]

    def test_none_is_empty(self):
        assert tokenize(None) == []

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_delimiters(self):
        assert tokenize("Beoing Co.") == ["beoing", "co"]

    def test_multiple_delimiters_collapse(self):
        assert tokenize("a,,  b..c") == ["a", "b", "c"]

    def test_custom_delimiters(self):
        assert tokenize("a-b c", delimiters=" ") == ["a-b", "c"]

    def test_order_preserved(self):
        assert tokenize("company beoing") == ["company", "beoing"]

    def test_duplicates_preserved_in_sequence(self):
        assert tokenize("new new york") == ["new", "new", "york"]

    @given(st.text(max_size=40))
    def test_no_empty_tokens(self, s):
        assert all(tokenize(s))

    @given(st.text(max_size=40))
    def test_tokens_contain_no_delimiters(self, s):
        for token in tokenize(s):
            assert not any(d in token for d in DEFAULT_DELIMITERS)


class TestTupleTokens:
    def test_sequences_and_sets(self):
        tokens = TupleTokens.from_values(("Boeing Company", "Seattle"))
        assert tokens.sequences == (("boeing", "company"), ("seattle",))
        assert tokens.sets == (frozenset({"boeing", "company"}), frozenset({"seattle"}))

    def test_num_columns(self):
        assert TupleTokens.from_values(("a", "b", None)).num_columns == 3

    def test_none_column(self):
        tokens = TupleTokens.from_values(("x", None))
        assert tokens.sequences[1] == ()
        assert tokens.sets[1] == frozenset()

    def test_duplicates_collapse_in_sets(self):
        tokens = TupleTokens.from_values(("new new york",))
        assert tokens.sequences[0] == ("new", "new", "york")
        assert tokens.sets[0] == frozenset({"new", "york"})

    def test_same_token_in_two_columns_kept_per_column(self):
        """'madison' in the name column differs from 'madison' in city."""
        tokens = TupleTokens.from_values(("madison", "madison"))
        pairs = list(tokens.all_tokens())
        assert ("madison", 0) in pairs
        assert ("madison", 1) in pairs
        assert tokens.token_count() == 2

    def test_all_tokens_sorted_within_column(self):
        tokens = TupleTokens.from_values(("zeta alpha", None))
        assert list(tokens.all_tokens()) == [("alpha", 0), ("zeta", 0)]

    def test_token_count_paper_example(self):
        # I3 [Boeing Corporation, Seattle, WA, 98004] has five tokens.
        tokens = TupleTokens.from_values(
            ("Boeing Corporation", "Seattle", "WA", "98004")
        )
        assert tokens.token_count() == 5

    def test_column_tokens_accessor(self):
        tokens = TupleTokens.from_values(("a b", "c"))
        assert tokens.column_tokens(0) == frozenset({"a", "b"})
        assert tokens.column_tokens(1) == frozenset({"c"})

    @given(st.lists(st.one_of(st.none(), st.text(max_size=20)), max_size=5))
    def test_token_count_matches_sets(self, values):
        tokens = TupleTokens.from_values(values)
        assert tokens.token_count() == sum(len(s) for s in tokens.sets)
