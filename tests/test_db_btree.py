"""B+-tree: point/range lookups, duplicates, bulk load, invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.btree import BPlusTree
from repro.db.errors import DuplicateKeyError, RecordNotFoundError


class TestUniqueTree:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]

    def test_search_missing_returns_empty(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "five")
        assert tree.search(6) == []

    def test_get_with_default(self):
        tree = BPlusTree(order=4)
        assert tree.get(1, "fallback") == "fallback"
        tree.insert(1, "one")
        assert tree.get(1) == "one"

    def test_contains(self):
        tree = BPlusTree(order=4)
        tree.insert(3, None)
        assert 3 in tree
        assert 4 not in tree

    def test_duplicate_insert_rejected(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, "b")

    def test_many_inserts_random_order(self):
        tree = BPlusTree(order=8)
        keys = list(range(2000))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        assert len(tree) == 2000
        assert tree.height > 1
        tree.check_invariants()
        for key in (0, 999, 1999):
            assert tree.search(key) == [key * 2]

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        keys = [5, 1, 9, 3, 7]
        for key in keys:
            tree.insert(key, None)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        tree.insert(("ing", 2, 1), "rid-a")
        tree.insert(("ing", 1, 1), "rid-b")
        assert tree.search(("ing", 2, 1)) == ["rid-a"]
        assert tree.search(("ing", 1, 1)) == ["rid-b"]

    def test_reinsert_after_delete(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.delete(1)
        tree.insert(1, "b")
        assert tree.search(1) == ["b"]


class TestDuplicateTree:
    def test_duplicates_kept_in_insert_order(self):
        tree = BPlusTree(order=4, unique=False)
        for value in ("a", "b", "c"):
            tree.insert(7, value)
        assert tree.search(7) == ["a", "b", "c"]

    def test_duplicates_across_splits(self):
        tree = BPlusTree(order=4, unique=False)
        for i in range(100):
            tree.insert(42, i)
        for i in range(50):
            tree.insert(41, -i)
            tree.insert(43, -i)
        assert tree.search(42) == list(range(100))
        tree.check_invariants()

    def test_delete_all_under_key(self):
        tree = BPlusTree(order=4, unique=False)
        for i in range(20):
            tree.insert(1, i)
        tree.insert(2, "keep")
        assert tree.delete(1) == 20
        assert tree.search(1) == []
        assert tree.search(2) == ["keep"]
        assert len(tree) == 1

    def test_delete_specific_value(self):
        tree = BPlusTree(order=4, unique=False)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, value="a") == 1
        assert tree.search(1) == ["b"]

    def test_delete_missing_raises(self):
        tree = BPlusTree(order=4, unique=False)
        tree.insert(1, "a")
        with pytest.raises(RecordNotFoundError):
            tree.delete(2)

    def test_delete_missing_value_raises(self):
        tree = BPlusTree(order=4, unique=False)
        tree.insert(1, "a")
        with pytest.raises(RecordNotFoundError):
            tree.delete(1, value="zzz")


class TestRange:
    @pytest.fixture()
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(key, key)
        return tree

    def test_half_open_range(self, tree):
        keys = [k for k, _ in tree.range(10, 20)]
        assert keys == [10, 12, 14, 16, 18]

    def test_inclusive_hi(self, tree):
        keys = [k for k, _ in tree.range(10, 20, include_hi=True)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_lo(self, tree):
        keys = [k for k, _ in tree.range(10, 20, include_lo=False)]
        assert keys == [12, 14, 16, 18]

    def test_open_ended_low(self, tree):
        keys = [k for k, _ in tree.range(None, 6)]
        assert keys == [0, 2, 4]

    def test_open_ended_high(self, tree):
        keys = [k for k, _ in tree.range(94, None)]
        assert keys == [94, 96, 98]

    def test_full_range(self, tree):
        assert len(list(tree.range())) == 50

    def test_bounds_between_keys(self, tree):
        keys = [k for k, _ in tree.range(9, 15)]
        assert keys == [10, 12, 14]

    def test_empty_range(self, tree):
        assert list(tree.range(200, 300)) == []


class TestBulkLoad:
    def test_matches_incremental(self):
        items = [(i, i * 10) for i in range(1000)]
        bulk = BPlusTree.bulk_load(items, order=16)
        incremental = BPlusTree(order=16)
        for key, value in items:
            incremental.insert(key, value)
        assert list(bulk.items()) == list(incremental.items())
        bulk.check_invariants()

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(2, None), (1, None)])

    def test_duplicate_rejected_in_unique(self):
        with pytest.raises(DuplicateKeyError):
            BPlusTree.bulk_load([(1, "a"), (1, "b")])

    def test_duplicates_allowed_when_not_unique(self):
        tree = BPlusTree.bulk_load([(1, "a"), (1, "b")], unique=False)
        assert tree.search(1) == ["a", "b"]

    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_insert_after_bulk_load(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(100)], order=8)
        tree.insert(1000, "new")
        assert tree.search(1000) == ["new"]
        tree.check_invariants()


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-1000, 1000), st.integers()),
            max_size=300,
        )
    )
    def test_matches_dict_model(self, entries):
        tree = BPlusTree(order=5)
        model: dict[int, int] = {}
        for key, value in entries:
            if key in model:
                with pytest.raises(DuplicateKeyError):
                    tree.insert(key, value)
            else:
                tree.insert(key, value)
                model[key] = value
        tree.check_invariants()
        assert list(tree.items()) == sorted(model.items())
        for key in list(model)[:20]:
            assert tree.search(key) == [model[key]]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 5)), max_size=300)
    )
    def test_duplicates_match_multimap_model(self, entries):
        tree = BPlusTree(order=5, unique=False)
        model: dict[int, list[int]] = {}
        for key, value in entries:
            tree.insert(key, value)
            model.setdefault(key, []).append(value)
        tree.check_invariants()
        for key, values in model.items():
            assert tree.search(key) == values

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=200),
        st.integers(-120, 120),
        st.integers(-120, 120),
    )
    def test_range_matches_sorted_filter(self, keys, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        tree = BPlusTree(order=5, unique=False)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range(lo, hi)]
        expected = sorted(k for k in keys if lo <= k < hi)
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(-500, 500), max_size=200))
    def test_delete_then_absent(self, keys):
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, key)
        to_delete = sorted(keys)[::2]
        for key in to_delete:
            tree.delete(key)
        tree.check_invariants()
        for key in to_delete:
            assert tree.search(key) == []
        assert len(tree) == len(keys) - len(to_delete)
