"""Edit distance, q-grams, Jaccard — including the paper's worked numbers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.strings import (
    cached_edit_distance,
    edit_distance,
    edit_distance_raw,
    jaccard,
    qgram_set,
    tuple_edit_similarity,
)

words = st.text(alphabet="abcdefg", max_size=12)


class TestEditDistanceRaw:
    def test_identical(self):
        assert edit_distance_raw("boeing", "boeing") == 0

    def test_empty_vs_word(self):
        assert edit_distance_raw("", "abc") == 3
        assert edit_distance_raw("abc", "") == 3

    def test_both_empty(self):
        assert edit_distance_raw("", "") == 0

    def test_single_substitution(self):
        assert edit_distance_raw("cat", "car") == 1

    def test_insertion(self):
        assert edit_distance_raw("cat", "cart") == 1

    def test_paper_company_corporation(self):
        # Section 3's figure: 7 operations between the two strings.
        assert edit_distance_raw("company", "corporation") == 7

    def test_boeing_bon(self):
        # b-o-(e)-(i)-n-(g): delete e, i, g.
        assert edit_distance_raw("boeing", "bon") == 3

    def test_beoing_boeing(self):
        # One transposition = 2 character edits under plain Levenshtein.
        assert edit_distance_raw("beoing", "boeing") == 2

    @given(words, words)
    def test_symmetry(self, a, b):
        assert edit_distance_raw(a, b) == edit_distance_raw(b, a)

    @given(words, words)
    def test_bounds(self, a, b):
        d = edit_distance_raw(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(words, words, words)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance_raw(a, c) <= (
            edit_distance_raw(a, b) + edit_distance_raw(b, c)
        )

    @given(words)
    def test_identity(self, a):
        assert edit_distance_raw(a, a) == 0


class TestNormalizedEditDistance:
    def test_paper_normalization(self):
        # ed('company', 'corporation') = 7/11 ≈ 0.64
        assert edit_distance("company", "corporation") == pytest.approx(7 / 11)

    def test_beoing_example(self):
        # §3.1: 'beoing' vs 'boeing' at distance 0.33
        assert edit_distance("beoing", "boeing") == pytest.approx(2 / 6)

    def test_empty_strings(self):
        assert edit_distance("", "") == 0.0

    def test_completely_different(self):
        assert edit_distance("abc", "xyz") == 1.0

    @given(words, words)
    def test_range(self, a, b):
        assert 0.0 <= edit_distance(a, b) <= 1.0

    @given(words, words)
    def test_cached_matches_uncached(self, a, b):
        assert cached_edit_distance(a, b) == edit_distance(a, b)


class TestQGramSet:
    def test_paper_boeing_3grams(self):
        assert qgram_set("boeing", 3) == {"boe", "oei", "ein", "ing"}

    def test_short_token_is_its_own_gram(self):
        assert qgram_set("wa", 3) == {"wa"}

    def test_exact_length_token(self):
        assert qgram_set("abc", 3) == {"abc"}

    def test_empty_string(self):
        assert qgram_set("", 3) == frozenset()

    def test_repeated_grams_collapse(self):
        assert qgram_set("aaaa", 2) == {"aa"}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgram_set("abc", 0)

    @given(words, st.integers(1, 5))
    def test_gram_count_bound(self, s, q):
        grams = qgram_set(s, q)
        if len(s) <= q:
            assert len(grams) <= 1
        else:
            assert len(grams) <= len(s) - q + 1

    @given(words.filter(lambda s: len(s) > 3))
    def test_grams_are_substrings(self, s):
        for gram in qgram_set(s, 3):
            assert gram in s


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(2 / 4)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty(self):
        assert jaccard({"a"}, set()) == 0.0


class TestTupleEditSimilarity:
    def test_identical_tuples(self):
        assert tuple_edit_similarity(("a b", "c"), ("a b", "c")) == 1.0

    def test_case_insensitive(self):
        assert tuple_edit_similarity(("Boeing",), ("boeing",)) == 1.0

    def test_none_as_empty(self):
        assert tuple_edit_similarity((None,), (None,)) == 1.0
        assert tuple_edit_similarity((None, "x"), (None, "x")) == 1.0

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            tuple_edit_similarity(("a",), ("a", "b"))

    def test_ed_prefers_bon_corporation(self):
        """The paper's motivating failure of edit distance (§1).

        I3 = [Boeing Corporation, ...] must look *closer to R2* than to its
        true target R1 under ed, because transforming 'corporation' to
        'company' costs more characters than 'boeing' to 'bon'.
        """
        i3 = ("Boeing Corporation", "Seattle", "WA", "98004")
        r1 = ("Boeing Company", "Seattle", "WA", "98004")
        r2 = ("Bon Corporation", "Seattle", "WA", "98014")
        assert tuple_edit_similarity(i3, r2) > tuple_edit_similarity(i3, r1)

    @given(
        st.lists(st.one_of(st.none(), words), min_size=1, max_size=4).map(tuple)
    )
    def test_self_similarity(self, values):
        assert tuple_edit_similarity(values, values) == 1.0

    @given(
        st.lists(words, min_size=2, max_size=2).map(tuple),
        st.lists(words, min_size=2, max_size=2).map(tuple),
    )
    def test_range(self, u, v):
        assert 0.0 <= tuple_edit_similarity(u, v) <= 1.0
