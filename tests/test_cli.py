"""The command-line interface: generate → corrupt → match round trips."""

import csv
import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    return main(argv)


@pytest.fixture()
def reference_csv(tmp_path):
    path = tmp_path / "reference.csv"
    run_cli(["generate", "--count", "150", "--seed", "3", "--out", str(path)])
    return path


@pytest.fixture()
def dirty_csv(tmp_path, reference_csv):
    path = tmp_path / "dirty.csv"
    run_cli(
        [
            "corrupt",
            "--reference", str(reference_csv),
            "--count", "25",
            "--preset", "D3",
            "--seed", "5",
            "--out", str(path),
        ]
    )
    return path


class TestGenerate:
    def test_writes_header_and_rows(self, reference_csv):
        with open(reference_csv, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["tid", "name", "city", "state", "zipcode"]
        assert len(rows) == 151
        assert rows[1][0] == "0"

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        run_cli(["generate", "--count", "50", "--seed", "9", "--out", str(a)])
        run_cli(["generate", "--count", "50", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestCorrupt:
    def test_writes_target_tid(self, dirty_csv):
        with open(dirty_csv, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "target_tid"
        assert len(rows) == 26
        assert all(row[0].isdigit() for row in rows[1:])

    def test_custom_probabilities(self, tmp_path, reference_csv):
        path = tmp_path / "custom.csv"
        run_cli(
            [
                "corrupt",
                "--reference", str(reference_csv),
                "--count", "10",
                "--probabilities", "1.0,0.0,0.0,0.0",
                "--out", str(path),
            ]
        )
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 11

    def test_type2(self, tmp_path, reference_csv):
        path = tmp_path / "t2.csv"
        run_cli(
            [
                "corrupt",
                "--reference", str(reference_csv),
                "--count", "10",
                "--preset", "D2",
                "--method", "type2",
                "--out", str(path),
            ]
        )
        assert path.exists()

    def test_requires_preset_or_probabilities(self, reference_csv):
        with pytest.raises(SystemExit):
            run_cli(["corrupt", "--reference", str(reference_csv), "--count", "5"])


class TestMatch:
    def test_match_output_schema(self, tmp_path, reference_csv, dirty_csv):
        out = tmp_path / "matches.csv"
        run_cli(
            [
                "match",
                "--reference", str(reference_csv),
                "--input", str(dirty_csv),
                "--q", "3",
                "--out", str(out),
            ]
        )
        with open(out, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][-2:] == ["matched_tid", "similarity"]
        assert len(rows) == 26
        matched = [row for row in rows[1:] if row[-2] != ""]
        assert matched, "at least some inputs must match"
        for row in matched:
            assert 0.0 <= float(row[-1]) <= 1.0

    def test_high_accuracy_on_clean_preset(self, tmp_path, reference_csv, dirty_csv):
        out = tmp_path / "matches.csv"
        run_cli(
            [
                "match",
                "--reference", str(reference_csv),
                "--input", str(dirty_csv),
                "--out", str(out),
            ]
        )
        with open(out, newline="") as handle:
            rows = list(csv.reader(handle))[1:]
        correct = sum(1 for row in rows if row[0] == row[-2])
        assert correct / len(rows) > 0.75

    def test_strategy_flag(self, tmp_path, reference_csv, dirty_csv):
        for strategy in ("naive", "basic", "osc"):
            out = tmp_path / f"m_{strategy}.csv"
            run_cli(
                [
                    "match",
                    "--reference", str(reference_csv),
                    "--input", str(dirty_csv),
                    "--strategy", strategy,
                    "--out", str(out),
                ]
            )
            assert out.exists()

    def test_column_mismatch_rejected(self, tmp_path, reference_csv):
        bad = tmp_path / "bad.csv"
        bad.write_text("name,city\nfoo,bar\n")
        with pytest.raises(SystemExit, match="attribute columns"):
            run_cli(
                [
                    "match",
                    "--reference", str(reference_csv),
                    "--input", str(bad),
                    "--out", str(tmp_path / "x.csv"),
                ]
            )


class TestDedup:
    def test_dedup_output(self, tmp_path, reference_csv):
        # Duplicate a few reference rows verbatim, then dedup.
        polluted = tmp_path / "polluted.csv"
        lines = reference_csv.read_text().splitlines()
        header, rows = lines[0], lines[1:]
        extra = [
            f"{1000 + i},{row.split(',', 1)[1]}" for i, row in enumerate(rows[:5])
        ]
        polluted.write_text("\n".join([header] + rows + extra) + "\n")
        out = tmp_path / "dedup.csv"
        run_cli(
            [
                "dedup",
                "--reference", str(polluted),
                "--threshold", "0.99",
                "--out", str(out),
            ]
        )
        with open(out, newline="") as handle:
            result_rows = list(csv.reader(handle))
        assert result_rows[0][-1] == "duplicate_of"
        flagged = [row for row in result_rows[1:] if row[-1] != ""]
        # Each planted exact duplicate pairs with its source.
        assert len(flagged) == 5


class TestExplain:
    def test_explain_traces_and_matches(self, capsys, reference_csv, dirty_csv):
        with open(dirty_csv, newline="") as handle:
            rows = list(csv.reader(handle))
        values = rows[1][1:]  # first dirty tuple's attributes
        run_cli(
            ["explain", "--reference", str(reference_csv)]
            + [v if v else "" for v in values]
        )
        output = capsys.readouterr().out
        assert "w(u) =" in output
        assert "lookup (" in output
        assert "match tid=" in output or "no match" in output

    def test_explain_wrong_arity(self, reference_csv):
        with pytest.raises(SystemExit, match="columns"):
            run_cli(["explain", "--reference", str(reference_csv), "just-one"])


class TestEvaluate:
    def test_evaluate_fig7_tiny(self, capsys):
        """The evaluate subcommand renders figure tables end-to-end."""
        run_cli(
            [
                "evaluate",
                "--reference-size", "120",
                "--inputs", "6",
                "--figures", "fig7",
                "--seed", "2",
            ]
        )
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "Q+T_3" in output


class TestPersistedWarehouse:
    def _match(self, tmp_path, reference_csv, dirty_csv, db_path, extra=()):
        out = tmp_path / "warehouse-matches.csv"
        run_cli(
            [
                "match",
                "--reference", str(reference_csv),
                "--input", str(dirty_csv),
                "--q", "3",
                "--db", str(db_path),
                *extra,
                "--out", str(out),
            ]
        )
        return out

    def test_first_run_builds_second_reuses(
        self, tmp_path, reference_csv, dirty_csv, capsys
    ):
        db_path = tmp_path / "warehouse.pages"
        first = self._match(tmp_path, reference_csv, dirty_csv, db_path)
        assert "built ETI" in capsys.readouterr().err
        assert db_path.exists()
        assert (tmp_path / "warehouse.pages.meta.json").exists()
        assert (tmp_path / "warehouse.pages.wal").exists()

        second = self._match(tmp_path, reference_csv, dirty_csv, db_path)
        assert "reused persisted ETI" in capsys.readouterr().err
        assert first.read_text() == second.read_text()

    def test_no_wal_leaves_no_log(self, tmp_path, reference_csv, dirty_csv):
        db_path = tmp_path / "nolog.pages"
        self._match(tmp_path, reference_csv, dirty_csv, db_path, ("--no-wal",))
        assert db_path.exists()
        assert not (tmp_path / "nolog.pages.wal").exists()

    def test_fsck_clean_warehouse(self, tmp_path, reference_csv, dirty_csv, capsys):
        db_path = tmp_path / "clean.pages"
        self._match(tmp_path, reference_csv, dirty_csv, db_path)
        capsys.readouterr()
        assert run_cli(["fsck", str(db_path), "--eti-name", "eti"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fsck_flags_corruption(self, tmp_path, reference_csv, dirty_csv, capsys):
        db_path = tmp_path / "damaged.pages"
        self._match(tmp_path, reference_csv, dirty_csv, db_path)
        with open(db_path, "r+b") as handle:  # flip one byte mid-file
            handle.seek(db_path.stat().st_size // 2)
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        capsys.readouterr()
        assert run_cli(["fsck", str(db_path)]) == 2
        assert "checksum mismatch" in capsys.readouterr().out

    def test_fsck_warns_on_torn_tail(self, tmp_path, reference_csv, dirty_csv, capsys):
        db_path = tmp_path / "torn.pages"
        self._match(tmp_path, reference_csv, dirty_csv, db_path)
        from repro.db.snapshot import load_database

        db = load_database(str(db_path))
        with db.transaction():
            db.relation("reference").insert((999_999, "Torn", "X", "YY", "00000"))
        db.pool.storage.close()
        with open(str(db_path) + ".wal", "ab") as handle:
            handle.write(b"\x01torn-begin-record-prefix")
        capsys.readouterr()
        assert run_cli(["fsck", str(db_path)]) == 1
        assert "torn tail" in capsys.readouterr().out

    def test_recover_checkpoints_the_log(
        self, tmp_path, reference_csv, dirty_csv, capsys
    ):
        db_path = tmp_path / "recoverable.pages"
        self._match(tmp_path, reference_csv, dirty_csv, db_path)
        from repro.db.snapshot import load_database
        from repro.db.wal import HEADER_SIZE

        db = load_database(str(db_path))
        with db.transaction():
            db.relation("reference").insert((999_998, "Late", "X", "YY", "00000"))
        db.pool.storage.close()
        wal_path = tmp_path / "recoverable.pages.wal"
        assert wal_path.stat().st_size > HEADER_SIZE  # a live tail to replay

        capsys.readouterr()
        assert run_cli(["recover", str(db_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "committed txns:  1" in out
        assert wal_path.stat().st_size > HEADER_SIZE  # dry run kept the tail

        assert run_cli(["recover", str(db_path)]) == 0
        assert "checkpointed" in capsys.readouterr().out
        assert wal_path.stat().st_size == HEADER_SIZE  # emptied by checkpoint
        assert run_cli(["fsck", str(db_path)]) == 0


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "generate", "corrupt", "match", "dedup", "evaluate", "fsck", "recover"
        ):
            assert command in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])
