"""Direct checks of the paper's analytical claims (§3.2, §4.1).

These pin the *relationships between functions* the paper argues from,
complementing the experiment-shaped benchmarks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MatchConfig
from repro.core.fms import fms
from repro.core.strings import edit_distance, tuple_edit_similarity

CONFIG = MatchConfig(q=3, signature_size=2)
tokens = st.text(alphabet="abcdefgh", min_size=1, max_size=10)


class UnitWeights:
    """All-ones weights isolate the structural part of fms."""

    def weight(self, token, column):
        return 1.0

    def frequency(self, token, column):
        return 1


UNIT = UnitWeights()


class TestFmsGeneralizesEditDistance:
    """§3: "our notion of similarity ... is similar to edit distance
    except that we operate on tokens and explicitly consider weights."

    For single-token columns with unit weights, the generalization
    collapses: replacement (cost ed·1) is never beaten by delete+insert
    (cost 1 + c_ins), so fms(u, v) = 1 − ed(u, v) exactly.
    """

    @given(tokens, tokens)
    @settings(max_examples=150, deadline=None)
    def test_single_token_equivalence(self, t1, t2):
        similarity = fms((t1,), (t2,), UNIT, CONFIG)
        assert similarity == pytest.approx(1.0 - edit_distance(t1, t2))

    @given(tokens, tokens, tokens, tokens)
    @settings(max_examples=100, deadline=None)
    def test_two_columns_sum_costs(self, a1, a2, b1, b2):
        similarity = fms((a1, b1), (a2, b2), UNIT, CONFIG)
        expected = 1.0 - min(
            (edit_distance(a1, a2) + edit_distance(b1, b2)) / 2.0, 1.0
        )
        assert similarity == pytest.approx(expected)


class TestImplicitLengthWeighting:
    """§3.2, Equation (1): ed implicitly weights token mappings in
    proportion to their lengths — "longer tokens get higher weights"."""

    def test_long_token_error_hurts_ed_more(self):
        # One substitution inside a long token vs inside a short token,
        # same record otherwise.  ed penalizes both by 1 character over
        # the total length — but when the *whole token must change*, ed's
        # cost scales with token length.
        base = ("boeing corporation",)
        long_changed = ("boeing corpxxxxion",)  # 4 edits in the long token
        short_changed = ("bxxxng corporation",)  # 3 edits in the short token
        assert tuple_edit_similarity(base, long_changed) < tuple_edit_similarity(
            base, ("boexng corporation",)
        )
        # Replacing the long token entirely costs ed more than the short.
        replace_long = ("boeing company",)
        replace_short = ("bon corporation",)
        assert tuple_edit_similarity(base, replace_long) < tuple_edit_similarity(
            base, replace_short
        )

    def test_fms_with_idf_inverts_the_preference(self):
        """With IDF-style weights the frequent long token becomes cheap to
        replace — the paper's I3 story in miniature."""

        class IdfLike:
            def weight(self, token, column):
                return {"corporation": 0.2, "boeing": 2.0}.get(token, 1.0)

            def frequency(self, token, column):
                return 1

        base = ("boeing corporation",)
        replace_long = ("boeing company",)   # cheap: 'corporation' is frequent
        replace_short = ("bon corporation",)  # expensive: 'boeing' is rare
        weights = IdfLike()
        sim_long = fms(replace_long, base, weights, CONFIG)
        sim_short = fms(replace_short, base, weights, CONFIG)
        assert sim_long > sim_short

    def test_ed_and_fms_disagree_exactly_on_i3(self):
        """Tables 1–2: ed prefers R2 for I3, fms prefers R1 — both facts in
        one place (the motivating example of the whole paper)."""
        from repro.core.weights import build_frequency_cache

        r1 = ("Boeing Company", "Seattle", "WA", "98004")
        r2 = ("Bon Corporation", "Seattle", "WA", "98014")
        i3 = ("Boeing Corporation", "Seattle", "WA", "98004")
        # A reference with enough filler to give IDF-ish weights.
        reference_values = [r1, r2, ("Companions", "Seattle", "WA", "98024")] + [
            (f"filler corporation {i}", "Seattle", "WA", f"9810{i % 10}")
            for i in range(20)
        ]
        weights = build_frequency_cache(reference_values, 4)
        assert tuple_edit_similarity(i3, r2) > tuple_edit_similarity(i3, r1)
        assert fms(i3, r1, weights, CONFIG) > fms(i3, r2, weights, CONFIG)
