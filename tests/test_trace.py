"""Query tracing (`match(..., trace=True)`)."""

import pytest

from repro.core.matcher import FuzzyMatcher


@pytest.fixture()
def matcher(org_reference, org_weights, paper_config, org_eti):
    return FuzzyMatcher(org_reference, org_weights, paper_config, org_eti)


class TestTrace:
    def test_disabled_by_default(self, matcher):
        result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.trace is None

    def test_trace_lists_tokens_and_weights(self, matcher):
        result = matcher.match(
            ("Beoing Company", "Seattle", "WA", "98004"), trace=True
        )
        text = "\n".join(result.trace)
        assert "token 'beoing'" in text
        assert "w(u) =" in text

    def test_trace_records_lookups(self, matcher):
        result = matcher.match(
            ("Beoing Company", "Seattle", "WA", "98004"), trace=True
        )
        lookups = [line for line in result.trace if line.startswith("lookup")]
        assert len(lookups) == result.stats.eti_lookups
        assert any("tids" in line or "miss" in line for line in lookups)

    def test_osc_events_traced(self, matcher):
        result = matcher.match(
            ("Boeing Company", "Seattle", "WA", "98004"), trace=True, strategy="osc"
        )
        text = "\n".join(result.trace)
        if result.stats.osc_succeeded:
            assert "OSC stopping test passed" in text
        assert result.stats.osc_fetch_attempts == text.count("fetching test passed")

    def test_basic_verification_traced(self, matcher):
        result = matcher.match(
            ("Beoing Company", "Seattle", "WA", "98004"),
            trace=True,
            strategy="basic",
        )
        text = "\n".join(result.trace)
        assert "verification phase" in text
        assert "verify tid" in text

    def test_zero_weight_trace(self, org_reference, paper_config, org_eti):
        class ZeroWeights:
            def weight(self, token, column):
                return 0.0

            def frequency(self, token, column):
                return 1

        matcher = FuzzyMatcher(
            org_reference, ZeroWeights(), paper_config, org_eti
        )
        result = matcher.match(("a", "b", "c", "d"), trace=True)
        assert any("zero" in line for line in result.trace)

    def test_same_answer_with_and_without_trace(self, matcher):
        values = ("Boeing Corporation", "Seattle", "WA", "98004")
        plain = matcher.match(values)
        traced = matcher.match(values, trace=True)
        assert plain.best.tid == traced.best.tid
        assert plain.best.similarity == traced.best.similarity
