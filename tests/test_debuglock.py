"""DebugLock: the dynamic half of the lock-discipline contract."""

import threading

import pytest

from repro.analysis.debuglock import (
    DebugLock,
    ENV_FLAG,
    LockOrderInversionError,
    UnguardedAccessError,
    assert_owned,
    debug_locks_enabled,
    held_locks,
    lock_order_edges,
    make_lock,
    make_rlock,
    reset_lock_order,
)


@pytest.fixture(autouse=True)
def _clean_order_graph():
    reset_lock_order()
    yield
    reset_lock_order()


def test_env_flag_gates_the_factories(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert not debug_locks_enabled()
    assert not isinstance(make_lock("A"), DebugLock)
    assert not isinstance(make_rlock("A"), DebugLock)
    monkeypatch.setenv(ENV_FLAG, "0")
    assert not debug_locks_enabled()
    monkeypatch.setenv(ENV_FLAG, "1")
    assert debug_locks_enabled()
    lock = make_lock("A")
    rlock = make_rlock("A")
    assert isinstance(lock, DebugLock) and not lock.reentrant
    assert isinstance(rlock, DebugLock) and rlock.reentrant


def test_context_manager_tracks_ownership():
    lock = DebugLock("A")
    assert not lock.owned and not lock.locked()
    with lock:
        assert lock.owned and lock.locked()
        assert list(held_locks()) == ["A"]
    assert not lock.owned and not lock.locked()
    assert list(held_locks()) == []


def test_lock_order_inversion_raises_before_deadlock():
    a, b = DebugLock("A"), DebugLock("B")
    with a:
        with b:
            pass
    assert lock_order_edges() == {"A": ("B",)}
    with b:
        with pytest.raises(LockOrderInversionError):
            a.acquire()
    assert not a.locked()


def test_reset_lock_order_forgets_edges():
    a, b = DebugLock("A"), DebugLock("B")
    with a:
        with b:
            pass
    reset_lock_order()
    assert lock_order_edges() == {}
    with b:
        with a:  # no longer an inversion
            pass


def test_order_graph_aggregates_by_name_across_instances():
    """Names are type-level: two BufferPool instances share one node."""
    with DebugLock("Pool._lock"):
        with DebugLock("Cache._lock"):
            pass
    with DebugLock("Cache._lock"):
        with pytest.raises(LockOrderInversionError):
            DebugLock("Pool._lock").acquire()


def test_non_reentrant_reacquire_raises_instead_of_deadlocking():
    lock = DebugLock("A", reentrant=False)
    with lock:
        with pytest.raises(UnguardedAccessError):
            lock.acquire()
    assert not lock.locked()


def test_reentrant_lock_nests():
    lock = DebugLock("A", reentrant=True)
    with lock:
        with lock:
            assert lock.owned
        assert lock.owned
    assert not lock.locked()


def test_assert_owned_contract():
    lock = DebugLock("A")
    with pytest.raises(UnguardedAccessError):
        lock.assert_owned()
    with lock:
        lock.assert_owned()
        assert_owned(lock)
    # The module-level helper is a no-op for plain locks.
    assert_owned(threading.Lock())


def test_release_by_non_owner_raises():
    lock = DebugLock("A")
    lock.acquire()
    errors = []

    def bad_release():
        try:
            lock.release()
        except UnguardedAccessError as exc:
            errors.append(exc)

    thread = threading.Thread(target=bad_release)
    thread.start()
    thread.join()
    lock.release()
    assert len(errors) == 1


def test_debug_locks_serialize_across_threads():
    lock = DebugLock("A")
    total = 0

    def work():
        nonlocal total
        for _ in range(200):
            with lock:
                total += 1

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert total == 800
