"""Edit-distance kernels and budgeted verification: exactness by sweep.

The fast path is only allowed to be fast, never different: a seeded
randomized sweep (> 10k pairs, covering unicode, > 64-char tokens, empty
strings, and the short-token cases q-gram handling cares about) asserts
the Myers bit-parallel kernel and the banded/thresholded kernel agree
with the classic reference DP, and a matcher-level A/B proves candidates
abandoned by the verification cost budget never belonged in the top-K.
"""

import random

import pytest

from repro.core.config import MatchConfig
from repro.core.fms import fms, fms_budgeted, input_tuple_weight, transformation_cost
from repro.core.kernels import (
    MYERS_MIN_PATTERN,
    best_distance,
    bounded_distance,
    classic_distance,
    myers_distance,
)
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.strings import bounded_edit_distance, cached_edit_distance
from repro.core.tokens import TupleTokens
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import build_eti

ALPHABETS = (
    "abcdefghijklmnopqrstuvwxyz",
    "ab",  # high-collision: exercises dense match masks
    "abcdefghijklmnopqrstuvwxyz0123456789",
    "αβγδεζηθικλμνξο",  # non-ASCII codepoints
    "日本語処理系統",  # multi-byte unicode
)


def random_pair(rng):
    """One seeded token pair drawn from the sweep's category mix."""
    category = rng.randrange(10)
    if category == 0:
        # Empty / near-empty operands.
        alphabet = rng.choice(ALPHABETS)
        short = "".join(rng.choice(alphabet) for _ in range(rng.randrange(3)))
        return ("", short) if rng.random() < 0.5 else (short, "")
    if category == 1:
        # Below the Myers routing threshold (q-gram short-token zone).
        alphabet = rng.choice(ALPHABETS)
        length = rng.randrange(1, MYERS_MIN_PATTERN)
        return (
            "".join(rng.choice(alphabet) for _ in range(length)),
            "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 8))),
        )
    if category == 2:
        # Long tokens: patterns past one 64-bit word (block variant).
        alphabet = rng.choice(ALPHABETS)
        s1 = "".join(rng.choice(alphabet) for _ in range(rng.randint(65, 110)))
        chars = list(s1)
        for _ in range(rng.randrange(12)):
            chars[rng.randrange(len(chars))] = rng.choice(alphabet)
        return s1, "".join(chars)
    alphabet = rng.choice(ALPHABETS)
    s1 = "".join(rng.choice(alphabet) for _ in range(rng.randint(3, 24)))
    if rng.random() < 0.5:
        # Mutated near-duplicate, the verification hot case.
        chars = list(s1)
        for _ in range(rng.randrange(1, 5)):
            op = rng.random()
            position = rng.randrange(len(chars)) if chars else 0
            if op < 0.4 and chars:
                chars[position] = rng.choice(alphabet)
            elif op < 0.7 and chars:
                del chars[position]
            else:
                chars.insert(position, rng.choice(alphabet))
        return s1, "".join(chars)
    return s1, "".join(rng.choice(alphabet) for _ in range(rng.randint(3, 24)))


class TestKernelParity:
    def test_randomized_sweep(self):
        """> 10k seeded pairs: Myers == classic == banded contract."""
        rng = random.Random(2003)
        for _ in range(10_500):
            s1, s2 = random_pair(rng)
            classic = classic_distance(s1, s2)
            assert myers_distance(s1, s2) == classic, (s1, s2)
            assert best_distance(s1, s2) == classic, (s1, s2)
            limit = rng.randrange(0, max(len(s1), len(s2)) + 2)
            bounded = bounded_distance(s1, s2, limit)
            if classic <= limit:
                assert bounded == classic, (s1, s2, limit)
            else:
                # Early exit must certify a lower bound, never under- or
                # over-claim: limit < bound <= true distance.
                assert limit < bounded <= classic, (s1, s2, limit)

    def test_known_distances(self):
        assert myers_distance("company", "corporation") == 7
        assert classic_distance("company", "corporation") == 7
        assert myers_distance("", "") == 0
        assert myers_distance("abc", "abc") == 0
        assert bounded_distance("company", "corporation", 11) == 7

    def test_negative_limit_short_circuits(self):
        assert bounded_distance("a", "b", -1) == 1
        assert bounded_distance("same", "same", -1) == 0

    def test_length_gap_lower_bound(self):
        # When the length difference alone exceeds the limit, the gap is
        # itself a certified lower bound — no DP work needed.
        assert bounded_distance("ab", "abcdefgh", 3) == 6

    def test_bounded_edit_distance_contract(self):
        rng = random.Random(7)
        for _ in range(2_000):
            s1, s2 = random_pair(rng)
            cutoff = rng.random()
            value, exact = bounded_edit_distance(s1, s2, cutoff)
            true = cached_edit_distance(s1, s2)
            if exact:
                assert value == true, (s1, s2, cutoff)
            else:
                assert value <= true, (s1, s2, cutoff)


def build_world(num_reference, num_inputs, seed, config=None):
    """A seeded reference relation, ETI, and error-injected query batch."""
    customers = generate_customers(num_reference, seed=seed, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    if config is None:
        config = MatchConfig(q=4, signature_size=2)
    eti, _ = build_eti(db, reference, config)
    dataset = make_dataset(rows, DatasetSpec.preset("D2"), num_inputs, seed=seed + 1)
    queries = [dirty.values for dirty in dataset.inputs]
    return db, rows, reference, weights, config, eti, queries


@pytest.fixture(scope="module")
def budget_world():
    db, rows, reference, weights, config, eti, queries = build_world(
        num_reference=150, num_inputs=40, seed=21
    )
    yield rows, reference, weights, config, eti, queries
    db.close()


class TestBudgetedDp:
    def test_transformation_cost_budget_contract(self, budget_world):
        """Never above exact; at or under budget means exact."""
        rows, _, weights, config, _, queries = budget_world
        rng = random.Random(5)
        abandons = 0
        for dirty in queries:
            u = TupleTokens.from_values(dirty)
            v = TupleTokens.from_values(rows[rng.randrange(len(rows))][1])
            for column in range(u.num_columns):
                exact = transformation_cost(
                    u.sequences[column], v.sequences[column], column,
                    weights, config,
                )
                budget = exact * rng.choice((0.25, 0.9, 1.1))
                got = transformation_cost(
                    u.sequences[column], v.sequences[column], column,
                    weights, config, budget=budget,
                )
                assert got <= exact + 1e-12, (dirty, column)
                if got <= budget:
                    assert got == exact, (dirty, column)
                elif got < exact:
                    abandons += 1  # certified lower bound, DP abandoned early
        assert abandons > 0, "budget never abandoned a DP"

    def test_fms_budgeted_matches_fms_without_budget(self, budget_world):
        rows, _, weights, config, _, queries = budget_world
        for dirty in queries[:10]:
            u = TupleTokens.from_values(dirty)
            v = TupleTokens.from_values(rows[0][1])
            similarity, pruned = fms_budgeted(u, v, weights, config)
            assert not pruned
            assert similarity == fms(u, v, weights, config)

    def test_fms_budgeted_prune_is_sound(self, budget_world):
        """A pruned candidate's exact similarity cannot reach the bar."""
        rows, _, weights, config, _, queries = budget_world
        rng = random.Random(17)
        pruned_seen = 0
        for dirty in queries:
            u = TupleTokens.from_values(dirty)
            u_weight = input_tuple_weight(u, weights, config)
            v = TupleTokens.from_values(rows[rng.randrange(len(rows))][1])
            budget = 0.25 * u_weight
            upper, pruned = fms_budgeted(
                u, v, weights, config, u_weight=u_weight, cost_budget=budget
            )
            exact = fms(u, v, weights, config, u_weight=u_weight)
            if pruned:
                pruned_seen += 1
                bar = 1.0 - budget / u_weight
                assert exact <= bar + 1e-9, (dirty, upper)
                assert exact <= upper + 1e-12, (dirty, upper)
            else:
                assert upper == exact, dirty
        assert pruned_seen > 0, "budget never pruned a candidate"


class TestBudgetedVerificationTopK:
    @pytest.mark.parametrize("strategy", ["basic", "osc"])
    @pytest.mark.parametrize("k", [1, 3])
    def test_top_k_bit_identical_and_prunes_fire(self, k, strategy):
        """Budget-abandoned candidates never appear in the returned top-K.

        The proof is the strongest available: the budgeted matcher must
        return *exactly* the exhaustive matcher's top-K (tids and
        similarities), while demonstrably pruning candidates along the
        way.  (OSC's stopping-test verifications are always exact; the
        prunes it reports come from the shared finish loop it falls back
        to when the stopping test never passes.)
        """
        db, _, reference, weights, config, eti, queries = build_world(
            num_reference=150, num_inputs=50, seed=33,
            config=MatchConfig(q=4, signature_size=2, k=k, use_osc=True),
        )
        try:
            exhaustive = FuzzyMatcher(
                reference, weights,
                config.with_(budgeted_verification=False), eti,
            )
            budgeted = FuzzyMatcher(reference, weights, config, eti)
            prunes = 0
            for dirty in queries:
                expected = exhaustive.match(dirty, k=k, strategy=strategy)
                got = budgeted.match(dirty, k=k, strategy=strategy)
                assert [(m.tid, m.similarity) for m in got.matches] == [
                    (m.tid, m.similarity) for m in expected.matches
                ], dirty
                prunes += got.stats.verify_budget_prunes
                assert expected.stats.verify_budget_prunes == 0
            if k == 1:
                assert prunes > 0, "budget never pruned any candidate"
        finally:
            db.close()
