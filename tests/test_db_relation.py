"""Relations, indexes, and the database catalog."""

import pytest

from repro.db.database import Database
from repro.db.errors import (
    DuplicateKeyError,
    RecordNotFoundError,
    RelationError,
    SchemaError,
)
from repro.db.types import Column, ColumnType


@pytest.fixture()
def db():
    database = Database.in_memory()
    yield database
    database.close()


@pytest.fixture()
def people(db):
    rel = db.create_relation(
        "people",
        [
            Column("tid", ColumnType.INT),
            Column("name", ColumnType.STR),
            Column("city", ColumnType.STR, nullable=True),
        ],
    )
    rel.insert((1, "ada", "london"))
    rel.insert((2, "grace", "new york"))
    rel.insert((3, "alan", "london"))
    return rel


class TestRelationBasics:
    def test_insert_and_scan(self, people):
        assert list(people.scan()) == [
            (1, "ada", "london"),
            (2, "grace", "new york"),
            (3, "alan", "london"),
        ]

    def test_len(self, people):
        assert len(people) == 3

    def test_fetch_by_rid(self, people):
        rid = people.insert((4, "edsger", None))
        assert people.fetch(rid) == (4, "edsger", None)

    def test_schema_enforced(self, people):
        with pytest.raises(SchemaError):
            people.insert(("not-an-int", "x", "y"))

    def test_insert_many(self, db):
        rel = db.create_relation("bulk", [Column("v", ColumnType.INT)])
        assert rel.insert_many([(i,) for i in range(100)]) == 100
        assert len(rel) == 100

    def test_delete_removes_from_scan(self, people):
        rid = people.insert((4, "gone", None))
        people.delete(rid)
        assert (4, "gone", None) not in list(people.scan())


class TestIndexes:
    def test_unique_index_lookup(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        assert people.index_get("by_tid", 2) == (2, "grace", "new york")

    def test_unique_violation(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        with pytest.raises(DuplicateKeyError):
            people.insert((1, "dup", None))

    def test_non_unique_index(self, people):
        people.create_index("by_city", ["city"])
        rows = people.index_lookup("by_city", "london")
        assert {r[1] for r in rows} == {"ada", "alan"}

    def test_index_on_existing_rows(self, people):
        # create_index was called after inserts in the fixture's siblings;
        # here ensure pre-existing rows are indexed.
        people.create_index("by_name", ["name"], unique=True)
        assert people.index_get("by_name", "ada")[0] == 1

    def test_composite_index(self, db):
        rel = db.create_relation(
            "eti",
            [
                Column("qgram", ColumnType.STR),
                Column("coordinate", ColumnType.INT),
                Column("column", ColumnType.INT),
            ],
        )
        rel.insert(("ing", 2, 1))
        rel.insert(("ing", 1, 1))
        rel.create_index("key", ["qgram", "coordinate", "column"], unique=True)
        assert rel.index_get("key", ("ing", 2, 1)) == ("ing", 2, 1)

    def test_index_get_missing_raises(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        with pytest.raises(RecordNotFoundError):
            people.index_get("by_tid", 99)

    def test_index_range(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        rows = list(people.index_range("by_tid", 1, 3))
        assert [key for key, _ in rows] == [1, 2]

    def test_duplicate_index_name_rejected(self, people):
        people.create_index("idx", ["tid"])
        with pytest.raises(RelationError):
            people.create_index("idx", ["name"])

    def test_unknown_index_rejected(self, people):
        with pytest.raises(RelationError):
            people.index_lookup("nope", 1)

    def test_insert_updates_all_indexes(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        people.create_index("by_name", ["name"])
        people.insert((10, "barbara", "mit"))
        assert people.index_get("by_tid", 10)[1] == "barbara"
        assert people.index_lookup("by_name", "barbara")[0][0] == 10

    def test_delete_updates_indexes(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        rid = people.insert((10, "temp", None))
        people.delete(rid)
        with pytest.raises(RecordNotFoundError):
            people.index_get("by_tid", 10)

    def test_index_stats(self, people):
        people.create_index("by_tid", ["tid"], unique=True)
        stats = people.index_stats("by_tid")
        assert stats["entries"] == 3
        assert stats["height"] >= 1


class TestDatabase:
    def test_create_and_get(self, db):
        db.create_relation("r", [Column("v", ColumnType.INT)])
        assert db.relation("r").name == "r"
        assert "r" in db

    def test_duplicate_name_rejected(self, db):
        db.create_relation("r", [Column("v", ColumnType.INT)])
        with pytest.raises(RelationError):
            db.create_relation("r", [Column("v", ColumnType.INT)])

    def test_unknown_relation_rejected(self, db):
        with pytest.raises(RelationError):
            db.relation("missing")

    def test_drop(self, db):
        db.create_relation("r", [Column("v", ColumnType.INT)])
        db.drop_relation("r")
        assert "r" not in db
        with pytest.raises(RelationError):
            db.drop_relation("r")

    def test_relation_names(self, db):
        db.create_relation("a", [Column("v", ColumnType.INT)])
        db.create_relation("b", [Column("v", ColumnType.INT)])
        assert db.relation_names() == ("a", "b")

    def test_context_manager(self):
        with Database.in_memory() as db:
            db.create_relation("r", [Column("v", ColumnType.INT)])
        assert db.relation_names() == ()

    def test_on_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "wh.db")
        with Database.on_disk(path) as db:
            rel = db.create_relation("r", [Column("v", ColumnType.STR)])
            for i in range(200):
                rel.insert((f"value-{i}",))
            db.pool.flush()
            rows = list(rel.scan())
        assert len(rows) == 200
        assert rows[57] == ("value-57",)
