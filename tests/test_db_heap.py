"""Heap file behaviour."""

import pytest

from repro.db.errors import PageFullError, RecordNotFoundError
from repro.db.heap import HeapFile, RecordId
from repro.db.page import MAX_RECORD_SIZE
from repro.db.pager import BufferPool


@pytest.fixture()
def heap():
    return HeapFile(BufferPool(capacity=16))


class TestHeapInsert:
    def test_insert_read_round_trip(self, heap):
        rid = heap.insert(b"record")
        assert heap.read(rid) == b"record"

    def test_len_counts_records(self, heap):
        for i in range(10):
            heap.insert(bytes([i]))
        assert len(heap) == 10

    def test_spills_to_multiple_pages(self, heap):
        record = b"x" * 1000
        rids = [heap.insert(record) for _ in range(30)]
        assert heap.num_pages > 1
        assert all(heap.read(rid) == record for rid in rids)

    def test_oversized_record_rejected(self, heap):
        with pytest.raises(PageFullError):
            heap.insert(b"x" * (MAX_RECORD_SIZE + 1))

    def test_rids_unique(self, heap):
        rids = [heap.insert(bytes([i % 256])) for i in range(500)]
        assert len(set(rids)) == 500


class TestHeapScanDelete:
    def test_scan_in_insert_order(self, heap):
        payloads = [f"row-{i}".encode() for i in range(50)]
        for p in payloads:
            heap.insert(p)
        assert [r for _, r in heap.scan()] == payloads

    def test_scan_skips_deleted(self, heap):
        rids = [heap.insert(bytes([i])) for i in range(5)]
        heap.delete(rids[2])
        remaining = [r for _, r in heap.scan()]
        assert bytes([2]) not in remaining
        assert len(remaining) == 4
        assert len(heap) == 4

    def test_read_after_delete_raises(self, heap):
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.read(rid)

    def test_bad_page_index_raises(self, heap):
        heap.insert(b"x")
        with pytest.raises(RecordNotFoundError):
            heap.read(RecordId(99, 0))

    def test_scan_yields_matching_rids(self, heap):
        rids = [heap.insert(f"v{i}".encode()) for i in range(20)]
        scanned = {rid: rec for rid, rec in heap.scan()}
        for i, rid in enumerate(rids):
            assert scanned[rid] == f"v{i}".encode()


class TestRecordId:
    def test_ordering(self):
        assert RecordId(0, 5) < RecordId(1, 0)
        assert RecordId(1, 0) < RecordId(1, 1)

    def test_hashable(self):
        assert len({RecordId(0, 0), RecordId(0, 0), RecordId(0, 1)}) == 2
