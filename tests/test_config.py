"""MatchConfig validation and helpers."""

import pytest

from repro.core.config import MatchConfig, SignatureScheme, TranspositionCost


class TestValidation:
    def test_paper_defaults(self):
        config = MatchConfig()
        assert config.q == 4
        assert config.k == 1
        assert config.min_similarity == 0.0
        assert config.token_insertion_factor == 0.5
        assert config.stop_qgram_threshold == 10_000

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            MatchConfig(q=0)

    def test_negative_signature_size(self):
        with pytest.raises(ValueError):
            MatchConfig(signature_size=-1)

    def test_q_zero_scheme_invalid(self):
        with pytest.raises(ValueError, match="Q_0"):
            MatchConfig(signature_size=0, scheme=SignatureScheme.QGRAMS)

    def test_qt_zero_valid(self):
        config = MatchConfig(signature_size=0, scheme=SignatureScheme.QGRAMS_PLUS_TOKEN)
        assert config.strategy_label == "Q+T_0"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MatchConfig(k=0)

    def test_invalid_min_similarity(self):
        with pytest.raises(ValueError):
            MatchConfig(min_similarity=1.0)
        with pytest.raises(ValueError):
            MatchConfig(min_similarity=-0.1)

    def test_invalid_cins(self):
        with pytest.raises(ValueError):
            MatchConfig(token_insertion_factor=1.5)

    def test_invalid_stop_threshold(self):
        with pytest.raises(ValueError):
            MatchConfig(stop_qgram_threshold=0)

    def test_negative_column_weight(self):
        with pytest.raises(ValueError):
            MatchConfig(column_weights=(1.0, -1.0))

    def test_frozen(self):
        config = MatchConfig()
        with pytest.raises(AttributeError):
            config.q = 5


class TestHelpers:
    def test_strategy_label(self):
        assert MatchConfig(signature_size=3, scheme=SignatureScheme.QGRAMS).strategy_label == "Q_3"
        assert MatchConfig(signature_size=2).strategy_label == "Q+T_2"

    def test_with_returns_modified_copy(self):
        base = MatchConfig()
        changed = base.with_(q=3, k=5)
        assert changed.q == 3 and changed.k == 5
        assert base.q == 4 and base.k == 1

    def test_normalized_column_weights_default(self):
        assert MatchConfig().normalized_column_weights(3) == (1.0, 1.0, 1.0)

    def test_normalized_column_weights_scaling(self):
        config = MatchConfig(column_weights=(2.0, 6.0))
        weights = config.normalized_column_weights(2)
        assert sum(weights) == pytest.approx(2.0)  # average 1
        assert weights[1] / weights[0] == pytest.approx(3.0)

    def test_normalized_column_weights_arity(self):
        config = MatchConfig(column_weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            config.normalized_column_weights(3)

    def test_transposition_cost_enum_values(self):
        assert TranspositionCost("avg") is TranspositionCost.AVERAGE
        assert TranspositionCost("const") is TranspositionCost.CONSTANT

    def test_scheme_enum_values(self):
        assert SignatureScheme("Q") is SignatureScheme.QGRAMS
        assert SignatureScheme("Q+T") is SignatureScheme.QGRAMS_PLUS_TOKEN
