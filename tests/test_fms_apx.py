"""fmsapx / fmst_apx: the upper-bound property and rank preservation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MatchConfig
from repro.core.fms import fms
from repro.core.fms_apx import fms_apx, fms_t_apx
from repro.core.minhash import MinHasher

CONFIG = MatchConfig(q=3, signature_size=2)


class UnitWeights:
    def weight(self, token, column):
        return 1.0

    def frequency(self, token, column):
        return 1


UNIT = UnitWeights()


def random_tuple(rng, tokens, columns=2):
    return tuple(
        " ".join(rng.choices(tokens, k=rng.randint(1, 3))) for _ in range(columns)
    )


def corrupt(rng, values):
    corrupted = []
    for value in values:
        chars = list(value)
        for _ in range(rng.randint(0, 2)):
            pos = rng.randrange(len(chars))
            chars[pos] = rng.choice("abcdefghij")
        corrupted.append("".join(chars))
    return tuple(corrupted)


TOKENS = [
    "boeing", "company", "corporation", "seattle", "tacoma", "united",
    "pacific", "airlines", "systems", "northwest",
]


class TestUpperBound:
    def test_exact_jaccard_upper_bounds_fms_within_lemma_slack(self):
        """f2 >= fms up to the O(1/m) Lemma 4.2 boundary slack.

        The paper's printed adjustment term drops a ``+(1 − 1/q)/m``
        boundary correction (see the fms_apx module docstring), so the
        "upper bound" can undershoot fms by roughly that much per token.
        With q=3 and tokens of length >= 6 the slack is at most about
        (1 − 1/3)/6 ≈ 0.11 per token and far less in aggregate.
        """
        rng = random.Random(0)
        worst = 0.0
        for _ in range(300):
            v = random_tuple(rng, TOKENS)
            u = corrupt(rng, v)
            gap = fms(u, v, UNIT, CONFIG) - fms_apx(u, v, UNIT, CONFIG)
            worst = max(worst, gap)
        assert worst < 0.08

    def test_minhash_upper_bounds_fms_whp(self):
        """The min-hash estimate exceeds fms − slack for almost all pairs."""
        rng = random.Random(1)
        hasher = MinHasher(q=3, num_hashes=4, seed=3)
        violations = 0
        trials = 300
        for _ in range(trials):
            v = random_tuple(rng, TOKENS)
            u = corrupt(rng, v)
            if fms_apx(u, v, UNIT, CONFIG, hasher) < fms(u, v, UNIT, CONFIG) - 0.1:
                violations += 1
        assert violations / trials < 0.05

    def test_identical_tuples_apx_is_one(self):
        values = ("boeing company", "seattle")
        assert fms_apx(values, values, UNIT, CONFIG) == pytest.approx(1.0)

    def test_token_order_ignored(self):
        """fmsapx considers reordered tuples identical (§4.1's example)."""
        u = ("company boeing", "seattle")
        v = ("boeing company", "seattle")
        assert fms_apx(u, v, UNIT, CONFIG) == pytest.approx(1.0)

    def test_per_token_contribution_capped(self):
        # A perfect q-gram match contributes exactly w(t): similarity 1.0,
        # not (2/q + d_q) > 1.
        assert fms_apx(("abcdef",), ("abcdef",), UNIT, CONFIG) == pytest.approx(1.0)

    def test_empty_input(self):
        assert fms_apx((None,), (None,), UNIT, CONFIG) == 1.0
        assert fms_apx((None,), ("x",), UNIT, CONFIG) == 0.0

    def test_empty_reference_column_contributes_zero(self):
        similarity = fms_apx(("boeing", "seattle"), ("boeing", None), UNIT, CONFIG)
        assert similarity == pytest.approx(0.5)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            fms_apx(("a",), ("a", "b"), UNIT, CONFIG)

    @given(
        st.lists(st.text(alphabet="abcde ", max_size=12), min_size=2, max_size=2).map(tuple),
        st.lists(st.text(alphabet="abcde ", max_size=12), min_size=2, max_size=2).map(tuple),
    )
    @settings(max_examples=60, deadline=None)
    def test_range(self, u, v):
        assert 0.0 <= fms_apx(u, v, UNIT, CONFIG) <= 1.0


class TestColumnWeightedApx:
    def test_uniform_weights_match_plain(self):
        config = CONFIG.with_(column_weights=(1.0, 1.0))
        u, v = ("beoing", "seattle"), ("boeing", "tacoma")
        assert fms_apx(u, v, UNIT, config) == pytest.approx(
            fms_apx(u, v, UNIT, CONFIG)
        )

    def test_upweighted_clean_column_raises_similarity(self):
        # Column 0 erroneous, column 1 exact: weighting column 1 up pulls
        # the approximate similarity toward 1.
        u, v = ("zzzz", "seattle"), ("qqqq", "seattle")
        light = CONFIG.with_(column_weights=(1.0, 1.0))
        heavy = CONFIG.with_(column_weights=(1.0, 9.0))
        assert fms_apx(u, v, UNIT, heavy) > fms_apx(u, v, UNIT, light)


class TestPaperExampleI4:
    def test_i4_r1_walkthrough(self):
        """§4.1's worked example: fmsapx(I4, R1) = 1 while fms(I4, R1) < 1."""
        i4 = ("Company Beoing", "Seattle", None, "98014")
        r1 = ("Boeing Company", "Seattle", "WA", "98004")
        # With the paper's narrative: order differences and the missing
        # 'wa' lower fms but not fmsapx; the zip difference affects both.
        apx = fms_apx(i4, r1, UNIT, CONFIG)
        exact = fms(i4, r1, UNIT, CONFIG)
        assert exact < apx


class TestRankPreservation:
    def test_fms_t_apx_is_rank_preserving_in_expectation(self):
        """Lemma 5.1 (statistically): Q+T ordering matches Q ordering."""
        rng = random.Random(2)
        agreements = 0
        trials = 150
        usable = 0
        for _ in range(trials):
            v1 = random_tuple(rng, TOKENS)
            v2 = random_tuple(rng, TOKENS)
            u = corrupt(rng, v1)
            apx1, apx2 = fms_apx(u, v1, UNIT, CONFIG), fms_apx(u, v2, UNIT, CONFIG)
            t1, t2 = fms_t_apx(u, v1, UNIT, CONFIG), fms_t_apx(u, v2, UNIT, CONFIG)
            if abs(apx1 - apx2) < 0.05:
                continue  # too close to call, ranking noise expected
            usable += 1
            if (apx1 > apx2) == (t1 > t2):
                agreements += 1
        assert usable > 50
        assert agreements / usable > 0.9

    def test_t_apx_identical_tuples(self):
        values = ("boeing company", "seattle")
        assert fms_t_apx(values, values, UNIT, CONFIG) == pytest.approx(1.0)

    def test_t_apx_penalizes_token_mismatch_more(self):
        """An erroneous token loses its exact-token half in fmst_apx."""
        u = ("beoing",)
        v = ("boeing",)
        assert fms_t_apx(u, v, UNIT, CONFIG) < fms_apx(u, v, UNIT, CONFIG)

    def test_t_apx_range(self):
        rng = random.Random(3)
        for _ in range(50):
            u = random_tuple(rng, TOKENS)
            v = random_tuple(rng, TOKENS)
            assert 0.0 <= fms_t_apx(u, v, UNIT, CONFIG) <= 1.0
