"""Stateful (model-based) property tests for the storage engine.

Hypothesis drives random operation sequences against the B+-tree and a
relation, checking every intermediate state against a trivially-correct
in-memory model.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.db.btree import BPlusTree
from repro.db.database import Database
from repro.db.errors import DuplicateKeyError, RecordNotFoundError
from repro.db.types import Column, ColumnType

keys = st.integers(-200, 200)
values = st.integers(0, 10_000)


class BTreeMachine(RuleBasedStateMachine):
    """Unique B+-tree vs dict."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=5)
        self.model: dict[int, int] = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        if key in self.model:
            try:
                self.tree.insert(key, value)
                raise AssertionError("duplicate insert must raise")
            except DuplicateKeyError:
                pass
        else:
            self.tree.insert(key, value)
            self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            assert self.tree.delete(key) == 1
            del self.model[key]
        else:
            try:
                self.tree.delete(key)
                raise AssertionError("deleting a missing key must raise")
            except RecordNotFoundError:
                pass

    @rule(key=keys)
    def search(self, key):
        expected = [self.model[key]] if key in self.model else []
        assert self.tree.search(key) == expected

    @rule(lo=keys, hi=keys)
    def range_scan(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        got = [(k, v) for k, v in self.tree.range(lo, hi)]
        expected = sorted(
            (k, v) for k, v in self.model.items() if lo <= k < hi
        )
        assert got == expected

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


class DuplicateBTreeMachine(RuleBasedStateMachine):
    """Non-unique B+-tree vs multimap."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4, unique=False)
        self.model: dict[int, list[int]] = {}

    @rule(key=st.integers(-20, 20), value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model.setdefault(key, []).append(value)

    @rule(key=st.integers(-20, 20))
    def delete_all(self, key):
        if self.model.get(key):
            count = len(self.model[key])
            assert self.tree.delete(key) == count
            del self.model[key]

    @rule(key=st.integers(-20, 20))
    def search(self, key):
        assert self.tree.search(key) == self.model.get(key, [])

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == sum(len(v) for v in self.model.values())


class RelationMachine(RuleBasedStateMachine):
    """Relation with a unique index vs dict keyed by the indexed column."""

    rids = Bundle("rids")

    def __init__(self):
        super().__init__()
        self.db = Database.in_memory()
        self.relation = self.db.create_relation(
            "t",
            [Column("k", ColumnType.INT), Column("v", ColumnType.STR, nullable=True)],
        )
        self.relation.create_index("by_k", ["k"], unique=True)
        self.model: dict[int, str | None] = {}
        self.rid_of: dict[int, object] = {}

    @rule(key=keys, value=st.one_of(st.none(), st.text(max_size=10)))
    def insert(self, key, value):
        if key in self.model:
            try:
                self.relation.insert((key, value))
                raise AssertionError("unique index must reject duplicate")
            except DuplicateKeyError:
                pass
        else:
            rid = self.relation.insert((key, value))
            self.model[key] = value
            self.rid_of[key] = rid

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            self.relation.delete(self.rid_of[key])
            del self.model[key]
            del self.rid_of[key]

    @rule(key=keys, value=st.text(max_size=10))
    def update(self, key, value):
        if key in self.model:
            new_rid = self.relation.update(self.rid_of[key], (key, value))
            self.rid_of[key] = new_rid
            self.model[key] = value

    @rule(key=keys)
    def lookup(self, key):
        if key in self.model:
            assert self.relation.index_get("by_k", key) == (key, self.model[key])
        else:
            assert self.relation.index_lookup("by_k", key) == []

    @invariant()
    def scan_matches_model(self):
        got = sorted(self.relation.scan(), key=lambda r: r[0])
        expected = sorted(self.model.items(), key=lambda r: r[0])
        assert got == [tuple(e) for e in expected]

    def teardown(self):
        self.db.close()


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(max_examples=30, stateful_step_count=40, deadline=None)

TestDuplicateBTreeStateful = DuplicateBTreeMachine.TestCase
TestDuplicateBTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

TestRelationStateful = RelationMachine.TestCase
TestRelationStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
