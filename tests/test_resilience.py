"""The resilience layer: checksums, retries, budgets, breakers, fallback.

Three levels under test, bottom-up:

- storage: the CRC32 ledger in :class:`BufferPool`, retry/backoff on
  :class:`TransientIOError`, and the :class:`FaultInjector` wrapper's
  determinism and fault taxonomy;
- query: :class:`QueryBudget` / :class:`BudgetMeter` degradation,
  :class:`CircuitBreaker` state machine, and the ``osc → basic → naive``
  fallback chain in :class:`FuzzyMatcher`;
- batch: per-item fault isolation (``fail_fast=False``) in
  :class:`BatchMatcher`.

The randomized end-to-end invariant lives in ``test_chaos.py``; these are
the deterministic unit and integration contracts.
"""

import pytest

from repro.core.batch import BatchMatcher
from repro.core.matcher import FuzzyMatcher
from repro.core.resilience import (
    DEGRADED_DEADLINE,
    DEGRADED_PAGE_FETCHES,
    CircuitBreaker,
    Deadline,
    QueryBudget,
    ResiliencePolicy,
    fallback_chain,
)
from repro.db.errors import (
    BufferPoolError,
    PageCorruptionError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.db.faults import FaultConfig, FaultInjector
from repro.db.page import PAGE_SIZE
from repro.db.pager import (
    BufferPool,
    FileStorage,
    InMemoryStorage,
    RetryPolicy,
    page_checksum,
)
from repro.eti.index import EtiIndex

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)


def write_page(pool, page_no, payload: bytes):
    """Scribble ``payload`` into a page through the pool and flush it."""
    page = pool.get_page(page_no)
    page.data[: len(payload)] = payload
    page.dirty = True
    pool.flush()


class TestRetryPolicy:
    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)
        assert policy.delay(3) == pytest.approx(0.05)  # capped
        assert policy.delay(10) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestStorageBounds:
    def test_in_memory_out_of_range_is_typed(self):
        storage = InMemoryStorage()
        storage.allocate()
        with pytest.raises(BufferPoolError, match="page 7 out of range"):
            storage.read(7)
        with pytest.raises(BufferPoolError, match="page 7 out of range"):
            storage.write(7, bytes(PAGE_SIZE))

    def test_file_out_of_range_is_typed(self, tmp_path):
        storage = FileStorage(str(tmp_path / "pages.db"))
        storage.allocate()
        try:
            with pytest.raises(BufferPoolError, match="page 3 out of range"):
                storage.read(3)
            with pytest.raises(BufferPoolError, match="page 3 out of range"):
                storage.write(3, bytes(PAGE_SIZE))
        finally:
            storage.close()


class TestChecksumLedger:
    def test_writes_record_and_reads_verify(self):
        pool = BufferPool(InMemoryStorage(), capacity=2)
        page_no = pool.allocate_page()
        write_page(pool, page_no, b"hello pages")
        expected = pool.checksum(page_no)
        assert expected == page_checksum(pool.storage.read(page_no))
        pool.drop_cache()
        assert bytes(pool.get_page(page_no).data[:11]) == b"hello pages"
        assert pool.stats.checksum_failures == 0

    def test_silent_underlying_corruption_is_caught(self):
        storage = InMemoryStorage()
        pool = BufferPool(storage, capacity=2, retry_policy=FAST_RETRY)
        page_no = pool.allocate_page()
        write_page(pool, page_no, b"important")
        pool.drop_cache()
        # Corrupt the stored bytes behind the pool's back.
        raw = bytearray(storage.read(page_no))
        raw[0] ^= 0xFF
        storage._pages[page_no] = bytes(raw)
        with pytest.raises(PageCorruptionError) as excinfo:
            pool.get_page(page_no)
        assert excinfo.value.page_no == page_no
        assert str(page_no) in str(excinfo.value)

    def test_verification_can_be_disabled(self):
        storage = InMemoryStorage()
        pool = BufferPool(storage, capacity=2, verify_checksums=False)
        page_no = pool.allocate_page()
        write_page(pool, page_no, b"data")
        pool.drop_cache()
        raw = bytearray(storage.read(page_no))
        raw[0] ^= 0xFF
        storage._pages[page_no] = bytes(raw)
        pool.get_page(page_no)  # unverified: corrupt bytes flow through
        assert pool.stats.checksum_failures == 0


class TestFaultInjector:
    def test_disarmed_injects_nothing(self):
        injector = FaultInjector(
            InMemoryStorage(), FaultConfig(read_error_rate=1.0), seed=1
        )
        page_no = injector.allocate()
        injector.read(page_no)
        assert injector.stats.total == 0

    def test_seed_reproducibility(self):
        def run(seed):
            injector = FaultInjector(
                InMemoryStorage(),
                FaultConfig(read_error_rate=0.5, read_corruption_rate=0.3),
                seed=seed,
                armed=True,
            )
            page_no = injector.inner.allocate()
            events = []
            for _ in range(50):
                try:
                    injector.read(page_no)
                    events.append("ok")
                except TransientIOError:
                    events.append("err")
            return events, injector.stats.total

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_max_faults_caps_damage(self):
        injector = FaultInjector(
            InMemoryStorage(),
            FaultConfig(read_error_rate=1.0, max_faults=3),
            armed=True,
        )
        page_no = injector.inner.allocate()
        errors = 0
        for _ in range(10):
            try:
                injector.read(page_no)
            except TransientIOError:
                errors += 1
        assert errors == 3
        assert injector.stats.total == 3

    def test_torn_write_persists_only_a_prefix(self):
        storage = InMemoryStorage()
        injector = FaultInjector(
            storage, FaultConfig(torn_write_rate=1.0), seed=5, armed=True
        )
        page_no = injector.inner.allocate()
        data = bytes(range(256)) * (PAGE_SIZE // 256)
        injector.write(page_no, data)
        stored = storage.read(page_no)
        assert stored != data
        cut = next(
            i for i, (a, b) in enumerate(zip(stored, data)) if a != b
        )
        assert stored[:cut] == data[:cut]
        assert stored[cut:] == bytes(PAGE_SIZE - cut)


class TestPoolUnderFaults:
    def make_pool(self, config, seed=0, **kwargs):
        injector = FaultInjector(InMemoryStorage(), config, seed=seed)
        pool = BufferPool(
            injector, capacity=2, retry_policy=FAST_RETRY, **kwargs
        )
        return pool, injector

    def test_transient_read_errors_are_retried(self):
        pool, injector = self.make_pool(FaultConfig(read_error_rate=0.6), seed=3)
        page_no = pool.allocate_page()
        write_page(pool, page_no, b"resilient")
        injector.arm()
        for _ in range(20):
            pool.drop_cache()
            injector.disarm()
            pool.flush()
            injector.arm()
            assert bytes(pool.get_page(page_no).data[:9]) == b"resilient"
        assert pool.stats.read_retries > 0

    def test_retry_exhaustion_is_typed(self):
        pool, injector = self.make_pool(FaultConfig(read_error_rate=1.0))
        page_no = pool.allocate_page()
        pool.drop_cache()
        injector.arm()
        with pytest.raises(RetryExhaustedError) as excinfo:
            pool.get_page(page_no)
        assert excinfo.value.page_no == page_no
        assert isinstance(excinfo.value.__cause__, TransientIOError)

    def test_transient_read_corruption_heals_via_reread(self):
        # Corrupt the *returned* bytes on some reads: the checksum catches
        # it and the re-read (stored page intact) recovers.
        pool, injector = self.make_pool(
            FaultConfig(read_corruption_rate=0.3), seed=9
        )
        page_no = pool.allocate_page()
        write_page(pool, page_no, b"clean bytes")
        injector.arm()
        healed = 0
        for _ in range(40):
            pool.drop_cache()
            failures_before = pool.stats.checksum_failures
            try:
                page = pool.get_page(page_no)
            except PageCorruptionError:
                continue  # every retry drew a corrupted read: still typed
            assert bytes(page.data[:11]) == b"clean bytes"
            if pool.stats.checksum_failures > failures_before:
                healed += 1
        assert healed > 0

    def test_torn_write_raises_corruption_not_retryable(self):
        pool, injector = self.make_pool(FaultConfig(torn_write_rate=1.0))
        page_no = pool.allocate_page()
        injector.arm()
        # Non-zero page bytes throughout, so any tear changes the content.
        write_page(pool, page_no, bytes(range(1, 256)) * (PAGE_SIZE // 255))
        injector.disarm()
        pool._cache.clear()  # force the next read physical, without flushing
        with pytest.raises(PageCorruptionError) as excinfo:
            pool.get_page(page_no)
        assert excinfo.value.page_no == page_no


class TestQueryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(deadline=0)
        with pytest.raises(ValueError):
            QueryBudget(max_page_fetches=-1)

    def test_from_ms_and_unlimited(self):
        assert QueryBudget.from_ms(250).deadline == pytest.approx(0.25)
        assert QueryBudget.from_ms(None, None).unlimited
        assert not QueryBudget.from_ms(None, 10).unlimited

    def test_meter_deadline(self):
        meter = QueryBudget(deadline=5.0).start()
        assert meter.exhausted() is None
        meter._started -= 10.0  # pretend 10s elapsed
        meter._deadline.at -= 10.0
        assert meter.exhausted() == DEGRADED_DEADLINE

    def test_meter_page_fetches(self):
        pool = BufferPool(InMemoryStorage(), capacity=2)
        page_no = pool.allocate_page()
        meter = QueryBudget(max_page_fetches=2).start(pool)
        assert meter.exhausted() is None
        for _ in range(3):
            pool.drop_cache()
            pool.get_page(page_no)
        assert meter.page_fetches >= 2
        assert meter.exhausted() == DEGRADED_PAGE_FETCHES

    def test_zero_fetch_budget_is_immediately_exhausted(self):
        pool = BufferPool(InMemoryStorage(), capacity=2)
        meter = QueryBudget(max_page_fetches=0).start(pool)
        assert meter.exhausted() == DEGRADED_PAGE_FETCHES


class ManualClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_after_remaining_expired(self):
        clock = ManualClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0  # clamped, never negative

    def test_earliest_picks_the_sooner(self):
        clock = ManualClock()
        soon = Deadline.after(1.0, clock=clock)
        late = Deadline.after(9.0, clock=clock)
        assert late.earliest(soon) is soon
        assert soon.earliest(late) is soon
        assert soon.earliest(None) is soon

    def test_budget_from_deadline_clamps_to_remainder(self):
        clock = ManualClock()
        deadline = Deadline.after(2.0, clock=clock)
        clock.advance(1.5)
        budget = QueryBudget.from_deadline(deadline)
        assert budget.deadline == pytest.approx(0.5)

    def test_budget_from_expired_deadline_uses_floor(self):
        clock = ManualClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(5.0)
        budget = QueryBudget.from_deadline(deadline)
        # Constructible (deadline > 0 is enforced) but effectively spent:
        # the query degrades on its first budget poll.
        assert budget.deadline == pytest.approx(0.001)


class TestCircuitBreakerCooldown:
    """Time-based half-open recovery (the serving layer's mode)."""

    def make(self, clock):
        return CircuitBreaker(failure_threshold=1, cooldown_s=10.0, clock=clock)

    def test_closed_open_half_open_closed(self):
        clock = ManualClock()
        breaker = self.make(clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # cooling down: no trials
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # cooldown elapsed: one probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # probe in flight: nobody else
        breaker.record_success()
        assert breaker.state == "closed"
        assert all(breaker.allow() for _ in range(5))

    def test_failed_probe_retrips_and_restarts_cooldown(self):
        clock = ManualClock()
        breaker = self.make(clock)
        breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()  # the cooldown restarted at the re-trip
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_count_based_mode_unchanged_without_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, half_open_interval=4)
        breaker.record_failure()
        assert breaker.state == "open"  # never "half_open" in count mode
        decisions = [breaker.allow() for _ in range(4)]
        assert decisions == [False, False, False, True]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_trial_cadence(self):
        breaker = CircuitBreaker(failure_threshold=1, half_open_interval=4)
        breaker.record_failure()
        decisions = [breaker.allow() for _ in range(8)]
        assert decisions == [False, False, False, True, False, False, False, True]

    def test_successful_trial_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, half_open_interval=1)
        breaker.record_failure()
        assert breaker.allow()  # immediate half-open trial
        breaker.record_success()
        assert breaker.state == "closed"
        assert all(breaker.allow() for _ in range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_interval=0)


class TestFallbackChain:
    def test_chains(self):
        assert fallback_chain("osc") == ("osc", "basic", "naive")
        assert fallback_chain("basic") == ("basic", "naive")
        assert fallback_chain("naive") == ("naive",)
        assert fallback_chain("custom") == ("custom",)


class FlakyEti(EtiIndex):
    """An ETI whose lookups raise for the first ``failures`` calls."""

    def __init__(self, relation, failures):
        super().__init__(relation)
        self.failures = failures

    def lookup(self, qgram, coordinate, column):
        if self.failures > 0:
            self.failures -= 1
            raise TransientIOError("injected ETI lookup fault")
        return super().lookup(qgram, coordinate, column)


class FlakyRelation:
    """A relation proxy whose index lookups raise for ``failures`` calls.

    :class:`BatchMatcher` rebuilds a fresh ``EtiIndex`` view per worker
    from ``eti.relation``, so batch-level fault tests must inject at the
    relation layer, not the index object.
    """

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures

    def index_get(self, *args, **kwargs):
        if self.failures > 0:
            self.failures -= 1
            raise TransientIOError("injected index fault")
        return self.inner.index_get(*args, **kwargs)

    def __len__(self):
        return len(self.inner)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def flaky_batch_eti(org_eti, failures):
    return EtiIndex(FlakyRelation(org_eti.relation, failures))


class TestMatcherResilience:
    def make_matcher(self, org_reference, org_weights, paper_config, eti,
                     policy=None):
        return FuzzyMatcher(
            org_reference, org_weights, paper_config, eti, resilience=policy
        )

    def test_no_policy_keeps_seed_behaviour(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = FlakyEti(org_eti.relation, failures=10**6)
        matcher = self.make_matcher(org_reference, org_weights, paper_config, flaky)
        with pytest.raises(TransientIOError):
            matcher.match(("Beoing Company", "Seattle", "WA", "98004"))

    def test_fallback_to_naive_is_flagged(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = FlakyEti(org_eti.relation, failures=10**6)
        policy = ResiliencePolicy()
        matcher = self.make_matcher(
            org_reference, org_weights, paper_config, flaky, policy
        )
        result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.best is not None and result.best.tid == 1
        assert result.stats.strategy == "naive"
        assert result.stats.degraded
        assert result.stats.fallback_from == "osc"
        assert result.stats.degraded_reason == "fallback:TransientIOError"

    def test_fallback_answer_matches_clean_naive(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        clean = self.make_matcher(org_reference, org_weights, paper_config, org_eti)
        flaky = FlakyEti(org_eti.relation, failures=10**6)
        faulty = self.make_matcher(
            org_reference, org_weights, paper_config, flaky, ResiliencePolicy()
        )
        query = ("Beoing Co.", "Seattle", "WA", "98004")
        expected = clean.match(query, strategy="naive", k=2)
        got = faulty.match(query, k=2)
        assert [(m.tid, m.similarity) for m in got.matches] == [
            (m.tid, m.similarity) for m in expected.matches
        ]

    def test_breaker_trips_and_circuit_open_skips_eti(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = FlakyEti(org_eti.relation, failures=10**6)
        policy = ResiliencePolicy(breaker=CircuitBreaker(failure_threshold=2))
        matcher = self.make_matcher(
            org_reference, org_weights, paper_config, flaky, policy
        )
        matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert policy.breaker.state == "open"  # osc+basic both failed
        result = matcher.match(("Bon Corporation", "Seattle", "WA", "98014"))
        assert result.stats.degraded_reason == "circuit_open"
        assert result.stats.strategy == "naive"
        assert result.best is not None

    def test_breaker_recovers_after_transient_outage(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = FlakyEti(org_eti.relation, failures=4)
        policy = ResiliencePolicy(
            breaker=CircuitBreaker(failure_threshold=1, half_open_interval=1)
        )
        matcher = self.make_matcher(
            org_reference, org_weights, paper_config, flaky, policy
        )
        matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert policy.breaker.state == "open"
        for _ in range(6):  # half-open trials drain the remaining failures
            result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert policy.breaker.state == "closed"
        assert result.stats.strategy == "osc"
        assert not result.stats.degraded

    def test_zero_fetch_budget_degrades_indexed_query(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        policy = ResiliencePolicy(budget=QueryBudget(max_page_fetches=0))
        matcher = self.make_matcher(
            org_reference, org_weights, paper_config, org_eti, policy
        )
        matcher._pool().drop_cache()
        result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.stats.degraded
        assert result.stats.degraded_reason == DEGRADED_PAGE_FETCHES

    def test_call_site_budget_overrides_policy(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        policy = ResiliencePolicy(budget=QueryBudget(max_page_fetches=0))
        matcher = self.make_matcher(
            org_reference, org_weights, paper_config, org_eti, policy
        )
        result = matcher.match(
            ("Beoing Company", "Seattle", "WA", "98004"),
            budget=QueryBudget(max_page_fetches=10**9),
        )
        assert not result.stats.degraded

    def test_arity_errors_never_fall_back(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        matcher = self.make_matcher(
            org_reference, org_weights, paper_config, org_eti, ResiliencePolicy()
        )
        with pytest.raises(ValueError):
            matcher.match(("too", "few"))


class TestBatchIsolation:
    def test_fail_fast_false_isolates_per_item(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = flaky_batch_eti(org_eti, failures=10**6)
        matcher = FuzzyMatcher(org_reference, org_weights, paper_config, flaky)
        engine = BatchMatcher.from_matcher(matcher, fail_fast=False)
        batch = [("Beoing Company", "Seattle", "WA", "98004")] * 3
        results = engine.match_many(batch, strategy="osc")
        assert all(r.failed for r in results)
        assert all(r.error_type == "TransientIOError" for r in results)
        assert engine.last_report.failed_queries == 3

    def test_fail_fast_true_raises(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = flaky_batch_eti(org_eti, failures=10**6)
        matcher = FuzzyMatcher(org_reference, org_weights, paper_config, flaky)
        engine = BatchMatcher.from_matcher(matcher, fail_fast=True)
        with pytest.raises(TransientIOError):
            engine.match_many(
                [("Beoing Company", "Seattle", "WA", "98004")] * 2,
                strategy="osc",
            )

    def test_mixed_batch_good_items_survive(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        # Fail exactly the first query's ETI path; later queries succeed.
        flaky = flaky_batch_eti(org_eti, failures=1)
        matcher = FuzzyMatcher(org_reference, org_weights, paper_config, flaky)
        engine = BatchMatcher.from_matcher(
            matcher, resilience=ResiliencePolicy(fallback=False), fail_fast=False
        )
        batch = [
            ("Beoing Company", "Seattle", "WA", "98004"),
            ("Bon Corporation", "Seattle", "WA", "98014"),
        ]
        results = engine.match_many(batch, strategy="osc")
        assert results[0].failed
        assert not results[1].failed and results[1].best.tid == 2
        assert engine.last_report.failed_queries == 1

    def test_parallel_isolation(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        flaky = flaky_batch_eti(org_eti, failures=10**6)
        matcher = FuzzyMatcher(org_reference, org_weights, paper_config, flaky)
        with BatchMatcher.from_matcher(matcher, jobs=2, fail_fast=False) as engine:
            batch = [
                ("Beoing Company", "Seattle", "WA", "98004"),
                ("Bon Corporation", "Seattle", "WA", "98014"),
                ("Companions", "Seattle", "WA", "98024"),
            ]
            results = engine.match_many(batch, strategy="basic")
        assert len(results) == 3
        assert all(r.failed for r in results)


class TestSnapshotChecksums:
    def build_and_save(self, tmp_path):
        from repro.db.database import Database
        from repro.db.snapshot import save_database
        from repro.db.types import Column, ColumnType

        path = str(tmp_path / "pages.db")
        db = Database.on_disk(path)
        relation = db.create_relation(
            "t", [Column("a", ColumnType.STR), Column("b", ColumnType.INT)]
        )
        for i in range(200):
            relation.insert((f"row-{i}", i))
        save_database(db)
        db.close()
        return path

    def test_clean_roundtrip_verifies(self, tmp_path):
        from repro.db.snapshot import load_database

        path = self.build_and_save(tmp_path)
        db = load_database(path)
        assert len(db.relation("t")) == 200
        assert db.pool.page_checksums()  # ledger primed from the snapshot
        db.close()

    def test_bit_rot_is_named_at_load(self, tmp_path):
        from repro.db.snapshot import load_database

        path = self.build_and_save(tmp_path)
        # Flip one byte in page 0.
        with open(path, "r+b") as handle:
            handle.seek(100)
            byte = handle.read(1)
            handle.seek(100)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(PageCorruptionError) as excinfo:
            load_database(path)
        assert excinfo.value.page_no == 0
        assert "page 0" in str(excinfo.value)

    def test_metadata_page_count_mismatch(self, tmp_path):
        from repro.db.errors import DatabaseError
        from repro.db.snapshot import load_database

        path = self.build_and_save(tmp_path)
        with open(path, "ab") as handle:  # grow the file by a page
            handle.write(bytes(PAGE_SIZE))
        with pytest.raises(DatabaseError, match="pages"):
            load_database(path)
