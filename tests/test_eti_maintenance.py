"""Incremental ETI maintenance: insert/delete/update reference tuples."""

import pytest

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.tokens import TupleTokens
from repro.core.weights import build_frequency_cache
from repro.db.database import Database
from repro.eti.builder import build_eti
from repro.eti.maintenance import EtiMaintainer
from repro.eti.signature import signature_entries

from tests.conftest import ORG_ROWS


def eti_as_dict(eti):
    """Materialize the ETI as {key: (frequency, tid_list)} for comparison."""
    return {
        (row[0], row[1], row[2]): (row[3], tuple(row[4]) if row[4] is not None else None)
        for row in eti.relation.scan()
    }


@pytest.fixture()
def maintained(org_db, org_reference, paper_config):
    hasher = MinHasher(paper_config.q, paper_config.signature_size, paper_config.seed)
    eti, _ = build_eti(org_db, org_reference, paper_config, hasher=hasher)
    return EtiMaintainer(org_reference, eti, paper_config, hasher)


class TestInsert:
    def test_incremental_equals_rebuild(self, maintained, org_db, paper_config):
        """Inserting tuples one by one must equal building from scratch."""
        new_rows = [
            (10, ("United Airlines", "Chicago", "IL", "60601")),
            (11, ("Boeing Corporation", "Everett", "WA", "98201")),
        ]
        for tid, values in new_rows:
            maintained.insert_tuple(tid, values)

        fresh_reference = ReferenceTable(
            org_db, "orgs_fresh", list(maintained.reference.column_names)
        )
        fresh_reference.load(list(ORG_ROWS) + new_rows)
        fresh_eti, _ = build_eti(
            org_db, fresh_reference, paper_config,
            hasher=maintained.hasher, eti_name="eti_fresh",
        )
        assert eti_as_dict(maintained.eti) == eti_as_dict(fresh_eti)

    def test_inserted_tuple_is_matchable(self, maintained, org_weights, paper_config):
        maintained.insert_tuple(10, ("Raytheon Systems", "Waltham", "MA", "02451"))
        matcher = FuzzyMatcher(
            maintained.reference, org_weights, paper_config,
            maintained.eti, maintained.hasher,
        )
        result = matcher.match(("Raytheno Systems", "Waltham", "MA", "02451"))
        assert result.best is not None
        assert result.best.tid == 10

    def test_mutation_counter(self, maintained):
        maintained.insert_tuple(10, ("A B", "C", "D", "1"))
        maintained.delete_tuple(10)
        assert maintained.mutations == 2

    def test_reference_grows(self, maintained):
        before = len(maintained.reference)
        maintained.insert_tuple(10, ("X Y", "Z", "W", "2"))
        assert len(maintained.reference) == before + 1
        assert 10 in maintained.reference


class TestDelete:
    def test_delete_then_rebuild_equivalence(self, maintained, org_db, paper_config):
        maintained.delete_tuple(2)

        fresh_reference = ReferenceTable(
            org_db, "orgs_fresh2", list(maintained.reference.column_names)
        )
        fresh_reference.load([row for row in ORG_ROWS if row[0] != 2])
        fresh_eti, _ = build_eti(
            org_db, fresh_reference, paper_config,
            hasher=maintained.hasher, eti_name="eti_fresh2",
        )
        assert eti_as_dict(maintained.eti) == eti_as_dict(fresh_eti)

    def test_deleted_tuple_not_returned(self, maintained, org_weights, paper_config):
        maintained.delete_tuple(1)
        matcher = FuzzyMatcher(
            maintained.reference, org_weights, paper_config,
            maintained.eti, maintained.hasher,
        )
        result = matcher.match(("Boeing Company", "Seattle", "WA", "98004"))
        assert result.best is None or result.best.tid != 1

    def test_delete_returns_values(self, maintained):
        values = maintained.delete_tuple(3)
        assert values == ("Companions", "Seattle", "WA", "98024")
        assert 3 not in maintained.reference

    def test_insert_delete_round_trip(self, maintained):
        baseline = eti_as_dict(maintained.eti)
        maintained.insert_tuple(10, ("Vanguard Holdings", "Denver", "CO", "80014"))
        maintained.delete_tuple(10)
        assert eti_as_dict(maintained.eti) == baseline


class TestUpdate:
    def test_update_rewrites_index(self, maintained, org_weights, paper_config):
        maintained.update_tuple(3, ("Compass Airlines", "Tacoma", "WA", "98402"))
        assert maintained.reference.fetch(3) == (
            "Compass Airlines", "Tacoma", "WA", "98402",
        )
        matcher = FuzzyMatcher(
            maintained.reference, org_weights, paper_config,
            maintained.eti, maintained.hasher,
        )
        result = matcher.match(("Compass Airlnies", "Tacoma", "WA", "98402"))
        assert result.best.tid == 3


class TestStopQGrams:
    def test_stop_qgram_stays_stopped(self, org_db, org_reference):
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS,
            stop_qgram_threshold=2,
        )
        hasher = MinHasher(config.q, config.signature_size, config.seed)
        eti, build_stats = build_eti(org_db, org_reference, config, hasher=hasher)
        assert build_stats.stop_qgrams > 0
        maintainer = EtiMaintainer(org_reference, eti, config, hasher)
        # 'seattle' signature grams are stop q-grams (frequency 3 > 2).
        stop_key = next(
            (row[0], row[1], row[2])
            for row in eti.relation.scan()
            if row[4] is None
        )
        maintainer.insert_tuple(10, ("Sonic Systems", "Seattle", "WA", "98101"))
        row = eti.lookup(*stop_key)
        assert row.tid_list is None  # still NULL
        assert row.frequency >= 3

    def test_crossing_threshold_nulls_list(self, org_db, org_reference):
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS,
            stop_qgram_threshold=3,
        )
        hasher = MinHasher(config.q, config.signature_size, config.seed)
        eti, build_stats = build_eti(org_db, org_reference, config, hasher=hasher)
        assert build_stats.stop_qgrams == 0  # all frequencies <= 3
        maintainer = EtiMaintainer(org_reference, eti, config, hasher)
        # A fourth Seattle tuple pushes 'seattle' q-grams past the threshold.
        maintainer.insert_tuple(10, ("Summit Group", "Seattle", "WA", "98102"))
        entries = signature_entries("seattle", hasher, config)
        for entry in entries:
            row = eti.lookup(entry.gram, entry.coordinate, 1)
            assert row.frequency == 4
            assert row.tid_list is None


class TestStopQGramDeletes:
    def test_stop_qgram_stays_stopped_after_deletes(self, org_db, org_reference):
        """Deleting below the threshold must NOT resurrect a tid-list.

        The list was discarded when the gram stopped; it cannot be
        reconstructed incrementally, so the row keeps a NULL list (at a
        decayed frequency) until a full rebuild.
        """
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS,
            stop_qgram_threshold=2,
        )
        hasher = MinHasher(config.q, config.signature_size, config.seed)
        eti, build_stats = build_eti(org_db, org_reference, config, hasher=hasher)
        assert build_stats.stop_qgrams > 0
        maintainer = EtiMaintainer(org_reference, eti, config, hasher)
        stop_key = next(
            (row[0], row[1], row[2])
            for row in eti.relation.scan()
            if row[4] is None
        )
        # Deleting two of the three Seattle tuples sinks the frequency to
        # 1, well below the threshold of 2 — the list must stay NULL.
        maintainer.delete_tuple(2)
        maintainer.delete_tuple(3)
        row = eti.lookup(*stop_key)
        assert row.frequency == 1
        assert row.tid_list is None

    def test_stopped_row_vanishes_at_frequency_zero(self, org_db, org_reference):
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS,
            stop_qgram_threshold=2,
        )
        hasher = MinHasher(config.q, config.signature_size, config.seed)
        eti, _ = build_eti(org_db, org_reference, config, hasher=hasher)
        maintainer = EtiMaintainer(org_reference, eti, config, hasher)
        stop_key = next(
            (row[0], row[1], row[2])
            for row in eti.relation.scan()
            if row[4] is None
        )
        for tid in (1, 2, 3):
            maintainer.delete_tuple(tid)
        assert eti.lookup(*stop_key) is None  # row deleted with its last tid


class TestRebuildBookkeeping:
    def test_weight_drift_counts_unmirrored_mutations(self, maintained):
        assert maintained.weights is None
        assert maintained.weight_drift == 0
        maintained.insert_tuple(10, ("Drift Co", "Olympia", "WA", "98501"))
        maintained.delete_tuple(10)
        assert maintained.weight_drift == 2
        assert maintained.mutations == 2

    def test_no_drift_with_live_weight_cache(
        self, org_db, org_reference, org_weights, paper_config
    ):
        eti, _ = build_eti(
            org_db, org_reference, paper_config, eti_name="eti_drift"
        )
        maintainer = EtiMaintainer(
            org_reference, eti, paper_config, weights=org_weights
        )
        maintainer.insert_tuple(10, ("Mirror Inc", "Olympia", "WA", "98501"))
        assert maintainer.weight_drift == 0
        assert maintainer.mutations == 1

    def test_rebuild_hint_crosses_threshold(self, org_db, org_reference, paper_config):
        eti, _ = build_eti(
            org_db, org_reference, paper_config, eti_name="eti_hint"
        )
        maintainer = EtiMaintainer(
            org_reference, eti, paper_config, rebuild_threshold=2
        )
        assert not maintainer.rebuild_hint
        maintainer.insert_tuple(10, ("One Co", "Olympia", "WA", "98501"))
        assert not maintainer.rebuild_hint
        maintainer.update_tuple(10, ("Two Co", "Olympia", "WA", "98501"))
        # update = delete + insert = 2 mutations, crossing the threshold.
        assert maintainer.mutations == 3
        assert maintainer.rebuild_hint

    def test_rebuild_hint_off_without_threshold(self, maintained):
        maintained.insert_tuple(10, ("Any Co", "Olympia", "WA", "98501"))
        assert not maintained.rebuild_hint

    def test_rebuild_threshold_validated(self, org_db, org_reference, paper_config):
        eti, _ = build_eti(
            org_db, org_reference, paper_config, eti_name="eti_bad"
        )
        with pytest.raises(ValueError, match="rebuild_threshold"):
            EtiMaintainer(
                org_reference, eti, paper_config, rebuild_threshold=0
            )


class TestWeightDriftStory:
    def test_new_tokens_fall_back_to_average_weight(
        self, maintained, org_weights, paper_config
    ):
        """Weights built before an insert treat new tokens as unseen."""
        maintained.insert_tuple(10, ("Zephyr Dynamics", "Spokane", "WA", "99201"))
        assert org_weights.frequency("zephyr", 0) == 0
        assert org_weights.weight("zephyr", 0) == org_weights.average_weight(0)
        # A rebuilt cache sees them.
        rebuilt = build_frequency_cache(
            maintained.reference.scan_values(), maintained.reference.num_columns
        )
        assert rebuilt.frequency("zephyr", 0) == 1


class TestIncrementalWeights:
    def test_maintained_cache_equals_rebuild(
        self, org_db, org_reference, org_weights, paper_config
    ):
        """add_tuple/remove_tuple keep the cache bit-equal to a rebuild."""
        hasher = MinHasher(
            paper_config.q, paper_config.signature_size, paper_config.seed
        )
        eti, _ = build_eti(
            org_db, org_reference, paper_config, hasher=hasher, eti_name="eti_w"
        )
        maintainer = EtiMaintainer(
            org_reference, eti, paper_config, hasher, weights=org_weights
        )
        maintainer.insert_tuple(10, ("Vortex Industries", "Tacoma", "WA", "98402"))
        maintainer.delete_tuple(2)
        rebuilt = build_frequency_cache(
            org_reference.scan_values(), org_reference.num_columns
        )
        assert org_weights.num_tuples == rebuilt.num_tuples
        probes = [
            ("vortex", 0), ("boeing", 0), ("bon", 0), ("seattle", 1),
            ("tacoma", 1), ("wa", 2), ("98402", 3), ("unseen-token", 0),
        ]
        for token, column in probes:
            assert org_weights.frequency(token, column) == rebuilt.frequency(
                token, column
            ), (token, column)
            assert org_weights.weight(token, column) == pytest.approx(
                rebuilt.weight(token, column)
            ), (token, column)

    def test_deleted_tokens_leave_the_cache(self, org_weights):
        org_weights.add_tuple(("Quark Labs", "Yakima", "WA", "98901"))
        assert org_weights.frequency("quark", 0) == 1
        org_weights.remove_tuple(("Quark Labs", "Yakima", "WA", "98901"))
        assert org_weights.frequency("quark", 0) == 0

    def test_wrong_arity_rejected(self, org_weights):
        with pytest.raises(ValueError):
            org_weights.add_tuple(("only", "three", "cols"))

    def test_maintainer_rejects_non_mutable_weights(
        self, org_db, org_reference, paper_config
    ):
        from repro.core.weights import HashedTokenFrequencyCache

        eti, _ = build_eti(
            org_db, org_reference, paper_config, eti_name="eti_w2"
        )
        hashed = HashedTokenFrequencyCache(3, 4)
        with pytest.raises(TypeError, match="add_tuple"):
            EtiMaintainer(org_reference, eti, paper_config, weights=hashed)
