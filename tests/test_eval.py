"""Metrics, reporting, the workbench, and figure drivers (small scale)."""

import pytest

from repro.core.config import SignatureScheme
from repro.eval.figures import (
    fig5_accuracy,
    fig6_times,
    fig7_build_times,
    fig8_candidates,
    fig9_tids,
    fig10_osc,
    run_ed_vs_fms,
    run_strategy_grid,
    strategy_labels,
)
from repro.eval.harness import PAPER_STRATEGIES, Workbench
from repro.eval.metrics import accuracy, mean, normalized_time
from repro.eval.naive import naive_best_match
from repro.eval.reporting import format_series, format_table


class TestMetrics:
    def test_accuracy_all_correct(self):
        assert accuracy([(1, 1), (2, 2)]) == 1.0

    def test_accuracy_mixed(self):
        assert accuracy([(1, 1), (3, 2)]) == 0.5

    def test_accuracy_none_counts_as_miss(self):
        assert accuracy([(None, 1), (2, 2)]) == 0.5

    def test_accuracy_empty(self):
        assert accuracy([]) == 0.0

    def test_normalized_time(self):
        assert normalized_time(10.0, 2.0) == 5.0

    def test_normalized_time_bad_unit(self):
        with pytest.raises(ValueError):
            normalized_time(1.0, 0.0)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (30, 4.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text and "30" in text

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a",), [(1, 2)])

    def test_format_series(self):
        text = format_series("s", [("x", 1.0), ("y", 0.5)])
        assert text == "s: x=1.000 y=0.500"

    def test_strategy_labels(self):
        labels = strategy_labels()
        assert labels[0] == "Q+T_0"
        assert "Q_2" in labels and "Q+T_3" in labels
        assert len(labels) == len(PAPER_STRATEGIES)


@pytest.fixture(scope="module")
def workbench():
    bench = Workbench(num_reference=300, num_inputs=30, seed=12)
    yield bench
    bench.close()


class TestWorkbench:
    def test_reference_loaded(self, workbench):
        assert len(workbench.reference) == 300

    def test_datasets_created(self, workbench):
        assert set(workbench.datasets) == {"D1", "D2", "D3"}
        assert all(len(d) == 30 for d in workbench.datasets.values())

    def test_eti_cached_per_strategy(self, workbench):
        config = workbench.config_for(SignatureScheme.QGRAMS, 2)
        first = workbench.eti_for(config)
        second = workbench.eti_for(config)
        assert first is second

    def test_naive_unit_time_positive_and_cached(self, workbench):
        unit = workbench.naive_unit_time()
        assert unit > 0
        assert workbench.naive_unit_time() == unit

    def test_run_batch_stats(self, workbench):
        config = workbench.config_for(SignatureScheme.QGRAMS_PLUS_TOKEN, 2)
        stats = workbench.run_batch(config, "D3")
        assert stats.queries == 30
        assert 0.0 <= stats.accuracy <= 1.0
        assert stats.avg_eti_lookups > 0
        assert stats.elapsed_seconds > 0
        assert 0.0 <= stats.osc_success_fraction <= 1.0

    def test_reasonable_accuracy_on_clean_dataset(self, workbench):
        config = workbench.config_for(SignatureScheme.QGRAMS, 2)
        stats = workbench.run_batch(config, "D3")
        assert stats.accuracy > 0.7

    def test_custom_dataset(self, workbench):
        from repro.data.datasets import DatasetSpec

        spec = DatasetSpec("T2", (0.9, 0.5, 0.5, 0.6), method="type2")
        dataset = workbench.custom_dataset(spec, count=10)
        assert len(dataset) == 10


@pytest.fixture(scope="module")
def small_grid(workbench):
    strategies = ((SignatureScheme.QGRAMS_PLUS_TOKEN, 0), (SignatureScheme.QGRAMS, 2))
    return run_strategy_grid(workbench, datasets=("D2",), strategies=strategies), (
        (SignatureScheme.QGRAMS_PLUS_TOKEN, 0),
        (SignatureScheme.QGRAMS, 2),
    )


class TestFigureDrivers:
    def test_grid_keys(self, small_grid):
        grid, strategies = small_grid
        assert set(grid) == {("D2", "Q+T_0"), ("D2", "Q_2")}

    def test_fig5(self, small_grid):
        grid, strategies = small_grid
        result = fig5_accuracy(grid, datasets=("D2",), strategies=strategies)
        assert result.headers == ("strategy", "D2")
        assert len(result.rows) == 2
        assert all(0.0 <= row[1] <= 100.0 for row in result.rows)
        assert "Figure 5" in result.render()

    def test_fig6(self, small_grid, workbench):
        grid, strategies = small_grid
        result = fig6_times(grid, workbench.naive_unit_time(), ("D2",), strategies)
        assert all(row[1] > 0 for row in result.rows)

    def test_fig7(self, workbench, small_grid):
        _, strategies = small_grid
        result = fig7_build_times(workbench, workbench.naive_unit_time(), strategies)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[1] > 0  # normalized build time
            assert row[2] > 0  # eti rows

    def test_fig8(self, small_grid):
        grid, strategies = small_grid
        result = fig8_candidates(grid, "D2", strategies)
        assert result.headers[0] == "strategy"
        assert all(row[1] >= 0 for row in result.rows)

    def test_fig9(self, small_grid):
        grid, strategies = small_grid
        result = fig9_tids(grid, "D2", strategies)
        assert all(row[1] > 0 for row in result.rows)

    def test_fig10(self, small_grid):
        grid, strategies = small_grid
        result = fig10_osc(grid, "D2", strategies)
        for row in result.rows:
            assert row[1] + row[2] == pytest.approx(1.0)

    def test_render_all(self, small_grid, workbench):
        grid, strategies = small_grid
        for figure in (
            fig5_accuracy(grid, ("D2",), strategies),
            fig8_candidates(grid, "D2", strategies),
            fig9_tids(grid, "D2", strategies),
            fig10_osc(grid, "D2", strategies),
        ):
            text = figure.render()
            assert text.count("\n") >= 3


class TestEdVsFms:
    def test_naive_best_match(self, workbench):
        from repro.core.fms import fms

        tid, values = next(workbench.reference.scan())
        best_tid, similarity = naive_best_match(
            workbench.reference,
            values,
            lambda u, v: fms(u, v, workbench.weights, workbench.base_config),
        )
        assert best_tid == tid or similarity == pytest.approx(1.0)

    def test_ed_vs_fms_structure(self, workbench):
        result = run_ed_vs_fms(workbench, num_inputs=8)
        assert result.headers == ("error_model", "fms", "ed")
        assert [row[0] for row in result.rows] == ["Type I", "Type II"]
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0
