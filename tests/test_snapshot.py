"""Database snapshot persistence: save, reopen, and reuse a built ETI."""

import pytest

from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.db.database import Database
from repro.db.errors import DatabaseError
from repro.db.snapshot import load_database, save_database
from repro.db.types import Column, ColumnType
from repro.eti.builder import build_eti
from repro.eti.index import EtiIndex

from tests.conftest import ORG_COLUMNS, ORG_ROWS


class TestSnapshotBasics:
    def test_round_trip_rows(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STR)]
        )
        for i in range(500):
            rel.insert((i, f"value-{i}"))
        save_database(db)
        db.close()

        reopened = load_database(path)
        rows = list(reopened.relation("t").scan())
        assert len(rows) == 500
        assert rows[123] == (123, "value-123")
        reopened.close()

    def test_indexes_restored(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STR)]
        )
        rel.create_index("by_k", ["k"], unique=True)
        for i in range(100):
            rel.insert((i, str(i)))
        save_database(db)
        db.close()

        reopened = load_database(path)
        restored = reopened.relation("t")
        assert "by_k" in restored.index_names()
        assert restored.index_get("by_k", 42) == (42, "42")
        reopened.close()

    def test_in_memory_rejected(self):
        db = Database.in_memory()
        with pytest.raises(DatabaseError, match="in-memory"):
            save_database(db)

    def test_missing_metadata_rejected(self, tmp_path):
        path = str(tmp_path / "nothing.pages")
        db = Database.on_disk(path)
        db.close()
        with pytest.raises(DatabaseError, match="no snapshot metadata"):
            load_database(path)

    def test_writes_after_reopen(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation("t", [Column("k", ColumnType.INT)])
        rel.insert((1,))
        save_database(db)
        db.close()

        reopened = load_database(path)
        reopened.relation("t").insert((2,))
        assert sorted(reopened.relation("t").scan()) == [(1,), (2,)]
        reopened.close()


class TestAtomicMetaWrite:
    def test_crash_mid_meta_write_keeps_previous_snapshot(self, tmp_path, monkeypatch):
        """Dying inside the metadata dump must not destroy the old snapshot.

        Regression: save_database used to rewrite the metadata file in
        place, so a crash mid-``json.dump`` left a torn, unloadable file.
        The temp-file + ``os.replace`` protocol keeps the previous
        complete snapshot visible until the new one is fully on disk.
        """
        import json as json_module

        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation("t", [Column("k", ColumnType.INT)])
        rel.insert((1,))
        save_database(db)

        # Second snapshot attempt dies mid-dump, after bytes have been
        # emitted (a partial JSON document reaches the temp file).
        with db.transaction():
            rel.insert((2,))
        real_dump = json_module.dump

        def dying_dump(obj, handle, **kwargs):
            handle.write('{"version": 3, "torn": ')
            raise OSError("simulated crash during metadata write")

        monkeypatch.setattr("repro.db.snapshot.json.dump", dying_dump)
        with pytest.raises(OSError, match="simulated crash"):
            save_database(db)
        monkeypatch.setattr("repro.db.snapshot.json.dump", real_dump)
        db.pool.storage.close()

        # The original metadata still parses, and the committed-but-not-
        # checkpointed row is recovered from the log.
        reopened = load_database(path)
        assert sorted(reopened.relation("t").scan()) == [(1,), (2,)]
        reopened.close()

    def test_failed_meta_write_leaves_wal_intact(self, tmp_path, monkeypatch):
        """The log must not be reset when the checkpoint never completed."""
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation("t", [Column("k", ColumnType.INT)])
        with db.transaction():
            rel.insert((1,))
        generation_before = db.wal.generation

        def dying_dump(obj, handle, **kwargs):
            raise OSError("simulated crash during metadata write")

        monkeypatch.setattr("repro.db.snapshot.json.dump", dying_dump)
        with pytest.raises(OSError, match="simulated crash"):
            save_database(db)
        assert db.wal.generation == generation_before  # reset never ran


class TestNoWalOpenSafety:
    def test_no_wal_open_refuses_live_committed_tail(self, tmp_path):
        """``wal=False`` must not silently serve stale pre-tail state.

        Regression: opening without WAL recovery while the log held
        committed-but-uncheckpointed transactions served the old snapshot
        (its checksums verify fine), and a later save_database on that
        handle deleted the log — making the loss permanent and silent.
        """
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation("t", [Column("k", ColumnType.INT)])
        rel.insert((1,))
        save_database(db)
        db.close()

        reopened = load_database(path)
        with reopened.transaction():
            reopened.relation("t").insert((2,))
        reopened.pool.storage.close()  # die with a committed, live tail

        with pytest.raises(DatabaseError, match="wal=False"):
            load_database(path, wal=False)

        # WAL recovery replays the tail; once checkpointed, the no-WAL
        # engine opens the complete state.
        recovered = load_database(path)
        assert sorted(recovered.relation("t").scan()) == [(1,), (2,)]
        save_database(recovered)
        recovered.close()
        plain = load_database(path, wal=False)
        assert sorted(plain.relation("t").scan()) == [(1,), (2,)]
        plain.close()


class TestEtiReuse:
    def test_persisted_eti_answers_queries(self, tmp_path):
        """§6.2.2.1: the persisted ETI serves subsequent input batches."""
        path = str(tmp_path / "warehouse.pages")
        config = MatchConfig(q=3, signature_size=2)

        db = Database.on_disk(path)
        reference = ReferenceTable(db, "orgs", list(ORG_COLUMNS))
        reference.load(ORG_ROWS)
        build_eti(db, reference, config)
        save_database(db)
        db.close()

        reopened = load_database(path)
        restored_reference = ReferenceTable.attach(reopened, "orgs", list(ORG_COLUMNS))
        weights = build_frequency_cache(
            restored_reference.scan_values(), restored_reference.num_columns
        )
        eti = EtiIndex(reopened.relation("eti"))
        matcher = FuzzyMatcher(restored_reference, weights, config, eti)
        result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.best is not None
        assert result.best.tid == 1
        reopened.close()
