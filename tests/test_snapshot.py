"""Database snapshot persistence: save, reopen, and reuse a built ETI."""

import pytest

from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.db.database import Database
from repro.db.errors import DatabaseError
from repro.db.snapshot import load_database, save_database
from repro.db.types import Column, ColumnType
from repro.eti.builder import build_eti
from repro.eti.index import EtiIndex

from tests.conftest import ORG_COLUMNS, ORG_ROWS


class TestSnapshotBasics:
    def test_round_trip_rows(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STR)]
        )
        for i in range(500):
            rel.insert((i, f"value-{i}"))
        save_database(db)
        db.close()

        reopened = load_database(path)
        rows = list(reopened.relation("t").scan())
        assert len(rows) == 500
        assert rows[123] == (123, "value-123")
        reopened.close()

    def test_indexes_restored(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STR)]
        )
        rel.create_index("by_k", ["k"], unique=True)
        for i in range(100):
            rel.insert((i, str(i)))
        save_database(db)
        db.close()

        reopened = load_database(path)
        restored = reopened.relation("t")
        assert "by_k" in restored.index_names()
        assert restored.index_get("by_k", 42) == (42, "42")
        reopened.close()

    def test_in_memory_rejected(self):
        db = Database.in_memory()
        with pytest.raises(DatabaseError, match="in-memory"):
            save_database(db)

    def test_missing_metadata_rejected(self, tmp_path):
        path = str(tmp_path / "nothing.pages")
        db = Database.on_disk(path)
        db.close()
        with pytest.raises(DatabaseError, match="no snapshot metadata"):
            load_database(path)

    def test_writes_after_reopen(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.on_disk(path)
        rel = db.create_relation("t", [Column("k", ColumnType.INT)])
        rel.insert((1,))
        save_database(db)
        db.close()

        reopened = load_database(path)
        reopened.relation("t").insert((2,))
        assert sorted(reopened.relation("t").scan()) == [(1,), (2,)]
        reopened.close()


class TestEtiReuse:
    def test_persisted_eti_answers_queries(self, tmp_path):
        """§6.2.2.1: the persisted ETI serves subsequent input batches."""
        path = str(tmp_path / "warehouse.pages")
        config = MatchConfig(q=3, signature_size=2)

        db = Database.on_disk(path)
        reference = ReferenceTable(db, "orgs", list(ORG_COLUMNS))
        reference.load(ORG_ROWS)
        build_eti(db, reference, config)
        save_database(db)
        db.close()

        reopened = load_database(path)
        restored_reference = ReferenceTable.attach(reopened, "orgs", list(ORG_COLUMNS))
        weights = build_frequency_cache(
            restored_reference.scan_values(), restored_reference.num_columns
        )
        eti = EtiIndex(reopened.relation("eti"))
        matcher = FuzzyMatcher(restored_reference, weights, config, eti)
        result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.best is not None
        assert result.best.tid == 1
        reopened.close()
