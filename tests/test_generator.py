"""Synthetic Customer generator: determinism and distributional shape."""

from collections import Counter

import pytest

from repro.core.tokens import tokenize
from repro.data.generator import (
    CUSTOMER_COLUMNS,
    CustomerGenerator,
    generate_customers,
)
from repro.data.pools import CITIES


class TestBasics:
    def test_count(self):
        assert len(generate_customers(250)) == 250

    def test_zero_count(self):
        assert generate_customers(0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(CustomerGenerator().generate(-1))

    def test_tids_sequential(self):
        customers = generate_customers(100)
        assert [c.tid for c in customers] == list(range(100))

    def test_start_tid(self):
        customers = list(CustomerGenerator().generate(5, start_tid=1000))
        assert [c.tid for c in customers] == list(range(1000, 1005))

    def test_values_shape(self):
        customer = generate_customers(1)[0]
        assert len(customer.values) == len(CUSTOMER_COLUMNS)
        assert all(isinstance(v, str) and v for v in customer.values)

    def test_deterministic_in_seed(self):
        a = generate_customers(200, seed=9)
        b = generate_customers(200, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_customers(200, seed=1)
        b = generate_customers(200, seed=2)
        assert a != b

    def test_business_fraction_zero(self):
        from repro.data.pools import BUSINESS_SUFFIXES

        customers = generate_customers(300, business_fraction=0.0)
        suffixes = set(BUSINESS_SUFFIXES)
        assert not any(
            c.name.split()[-1] in suffixes for c in customers
        )

    def test_business_fraction_one(self):
        from repro.data.pools import BUSINESS_SUFFIXES

        customers = generate_customers(300, business_fraction=1.0)
        suffixes = set(BUSINESS_SUFFIXES)
        assert all(c.name.split()[-1] in suffixes for c in customers)

    def test_invalid_business_fraction(self):
        with pytest.raises(ValueError):
            CustomerGenerator(business_fraction=1.5)


class TestDistribution:
    def test_city_state_consistent(self):
        pairs = dict(CITIES)
        for customer in generate_customers(500):
            # A multi-token city maps back to exactly one pooled state —
            # except city names repeated across states (e.g. portland).
            assert customer.city in pairs or any(
                city == customer.city for city, _ in CITIES
            )
            assert any(
                customer.city == city and customer.state == state
                for city, state in CITIES
            )

    def test_zip_depends_on_city(self):
        by_city: dict[str, set[str]] = {}
        for customer in generate_customers(800):
            by_city.setdefault(customer.city, set()).add(customer.zipcode[:3])
        for city, prefixes in by_city.items():
            # One 3-digit prefix per city (portland appears in OR and ME
            # with different pool indexes, so allow up to 2).
            assert len(prefixes) <= 2

    def test_zipf_skew_in_name_tokens(self):
        """Token frequencies must be skewed — the property IDF relies on."""
        counts = Counter()
        for customer in generate_customers(2000):
            for token in tokenize(customer.name):
                counts[token] += 1
        frequencies = sorted(counts.values(), reverse=True)
        top_share = sum(frequencies[:10]) / sum(frequencies)
        assert top_share > 0.25  # the head dominates
        assert len(frequencies) > 100  # but the tail is long

    def test_multi_token_names(self):
        customers = generate_customers(500)
        token_counts = [len(c.name.split()) for c in customers]
        assert max(token_counts) >= 3
        assert min(token_counts) >= 2

    def test_zipcodes_are_five_digits(self):
        for customer in generate_customers(300):
            assert len(customer.zipcode) == 5
            assert customer.zipcode.isdigit()
