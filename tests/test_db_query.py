"""Relational operators and the ETI-query plan shape."""

import pytest

from repro.db.query import (
    Filter,
    GroupAggregate,
    IndexScan,
    Limit,
    MemorySource,
    Project,
    SeqScan,
    Sort,
)
from repro.db.types import Column, ColumnType
from repro.db.database import Database


@pytest.fixture()
def numbers():
    return MemorySource(("k", "v"), [(3, "c"), (1, "a"), (2, "b"), (1, "z")])


class TestScanFilterProject:
    def test_seq_scan(self):
        db = Database.in_memory()
        rel = db.create_relation(
            "t", [Column("a", ColumnType.INT), Column("b", ColumnType.STR)]
        )
        rel.insert((1, "x"))
        rel.insert((2, "y"))
        scan = SeqScan(rel)
        assert scan.columns == ("a", "b")
        assert list(scan) == [(1, "x"), (2, "y")]

    def test_filter(self, numbers):
        result = list(Filter(numbers, lambda row: row[0] == 1))
        assert result == [(1, "a"), (1, "z")]

    def test_filter_preserves_columns(self, numbers):
        assert Filter(numbers, lambda r: True).columns == ("k", "v")

    def test_project(self, numbers):
        projected = Project(numbers, ["v"])
        assert projected.columns == ("v",)
        assert list(projected) == [("c",), ("a",), ("b",), ("z",)]

    def test_project_reorders(self, numbers):
        projected = Project(numbers, ["v", "k"])
        assert list(projected)[0] == ("c", 3)

    def test_project_unknown_column(self, numbers):
        with pytest.raises(ValueError):
            Project(numbers, ["nope"])

    def test_limit(self, numbers):
        assert list(Limit(numbers, 2)) == [(3, "c"), (1, "a")]

    def test_limit_zero(self, numbers):
        assert list(Limit(numbers, 0)) == []

    def test_limit_negative_rejected(self, numbers):
        with pytest.raises(ValueError):
            Limit(numbers, -1)


class TestIndexScan:
    @pytest.fixture()
    def indexed_relation(self):
        db = Database.in_memory()
        rel = db.create_relation(
            "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STR)]
        )
        for key in (5, 1, 9, 3, 7):
            rel.insert((key, f"v{key}"))
        rel.create_index("by_k", ["k"], unique=True)
        return rel

    def test_full_scan_in_key_order(self, indexed_relation):
        rows = list(IndexScan(indexed_relation, "by_k"))
        assert [r[0] for r in rows] == [1, 3, 5, 7, 9]

    def test_range_scan(self, indexed_relation):
        rows = list(IndexScan(indexed_relation, "by_k", lo=3, hi=8))
        assert [r[0] for r in rows] == [3, 5, 7]

    def test_columns(self, indexed_relation):
        assert IndexScan(indexed_relation, "by_k").columns == ("k", "v")


class TestSort:
    def test_sort_by_one_column(self, numbers):
        result = list(Sort(numbers, key_columns=("k",)))
        assert [r[0] for r in result] == [1, 1, 2, 3]

    def test_sort_by_two_columns(self):
        source = MemorySource(("a", "b"), [(1, 2), (0, 9), (1, 1)])
        result = list(Sort(source, key_columns=("a", "b")))
        assert result == [(0, 9), (1, 1), (1, 2)]

    def test_sort_records_stats(self, numbers):
        op = Sort(numbers, key_columns=("k",), memory_limit=2)
        list(op)
        assert op.stats.rows_in == 4
        assert op.stats.runs >= 2


class TestGroupAggregate:
    def test_group_counts(self):
        source = MemorySource(("g", "x"), [(1, "a"), (1, "b"), (2, "c")])
        op = GroupAggregate(source, ("g",), [("n", len)])
        assert op.columns == ("g", "n")
        assert list(op) == [(1, 2), (2, 1)]

    def test_group_collects_lists(self):
        source = MemorySource(("g", "tid"), [(1, 10), (1, 11), (2, 12)])
        op = GroupAggregate(
            source, ("g",), [("tids", lambda rows: [r[1] for r in rows])]
        )
        assert list(op) == [(1, [10, 11]), (2, [12])]

    def test_unsorted_input_rejected(self):
        source = MemorySource(("g",), [(2,), (1,), (2,)])
        op = GroupAggregate(source, ("g",), [("n", len)])
        with pytest.raises(ValueError, match="not sorted"):
            list(op)

    def test_empty_input(self):
        source = MemorySource(("g",), [])
        assert list(GroupAggregate(source, ("g",), [("n", len)])) == []

    def test_eti_query_plan(self):
        """The paper's ETI-query: sort pre-ETI rows, group by key prefix."""
        rows = [
            ("sea", 1, 2, 3),
            ("com", 1, 1, 1),
            ("sea", 1, 2, 1),
            ("com", 2, 1, 3),
            ("sea", 1, 2, 2),
        ]
        source = MemorySource(("qgram", "coordinate", "column", "tid"), rows)
        plan = GroupAggregate(
            Sort(source, key_columns=("qgram", "coordinate", "column", "tid")),
            group_columns=("qgram", "coordinate", "column"),
            aggregates=(
                ("frequency", len),
                ("tid_list", lambda group: [r[3] for r in group]),
            ),
        )
        assert list(plan) == [
            ("com", 1, 1, 1, [1]),
            ("com", 2, 1, 1, [3]),
            ("sea", 1, 2, 3, [1, 2, 3]),
        ]
