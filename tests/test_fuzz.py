"""The fuzz subsystem: mutators, targets, harness, and the CLI wiring.

Small deterministic sweeps (the CI ``--smoke`` shape) against all three
targets, plus units for the machinery itself: mutator determinism, the
chunk-plan delivery axis, greedy minimization, and corpus writing.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.fuzz.disk import SnapshotTarget, WalTarget
from repro.fuzz.harness import TARGETS, FuzzReport, minimize, run_fuzz
from repro.fuzz.mutators import MUTATORS, chunk_plan, mutate
from repro.fuzz.wire import WireTarget


class TestMutators:
    def test_deterministic_per_seed(self):
        data = b'{"op":"match","values":["a","b"],"k":2}\n'
        first = [mutate(data, random.Random(42)) for _ in range(5)]
        second = [mutate(data, random.Random(42)) for _ in range(5)]
        assert first == second

    def test_every_mutator_returns_bytes(self):
        data = b'{"op":"ping","flag":true,"n":null}\n'
        rng = random.Random(0)
        for name, mutator in sorted(MUTATORS.items()):
            out = mutator(data, rng)
            assert isinstance(out, bytes), name

    def test_oversize_exceeds_frame_caps(self):
        out = MUTATORS["oversize"](b"x", random.Random(1))
        assert len(out) >= 64 * 1024

    def test_truncate_shrinks_and_handles_empty(self):
        rng = random.Random(3)
        assert len(MUTATORS["truncate"](b"abcdef", rng)) < 6
        assert MUTATORS["truncate"](b"", rng) == b""

    def test_type_confuse_changes_a_json_token(self):
        data = b'{"k":true}'
        out = MUTATORS["type_confuse"](data, random.Random(5))
        assert out != data

    def test_mutate_reports_its_recipe(self):
        data = b'{"op":"ping"}\n'
        out, recipe = mutate(data, random.Random(9))
        assert 1 <= len(recipe) <= 3
        assert all(name in MUTATORS for name in recipe)
        assert isinstance(out, bytes)

    def test_mutate_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            mutate(b"x", random.Random(0), max_rounds=0)

    def test_chunk_plan_sums_to_total(self):
        for seed in range(20):
            rng = random.Random(seed)
            total = rng.randint(1, 5000)
            plan = chunk_plan(total, rng)
            assert sum(plan) == total
            assert all(size > 0 for size in plan)
        assert chunk_plan(0, random.Random(0)) == ()


class TestMinimize:
    def test_shrinks_to_the_failing_byte(self):
        data = b"aaaaaaaaaaaaaaaaXaaaaaaaaaaaaaaa"
        minimized = minimize(data, lambda d: b"X" in d, max_checks=200)
        assert minimized == b"X"

    def test_bounded_by_max_checks(self):
        calls = []

        def probe(candidate):
            calls.append(candidate)
            return True

        minimize(b"a" * 64, probe, max_checks=10)
        assert len(calls) <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            minimize(b"x", lambda d: True, max_checks=0)


class _StubTarget:
    """A fake target whose invariant breaks whenever the input holds X."""

    name = "stub"

    def __init__(self, case_deadline_s: float = 5.0) -> None:
        self.case_deadline_s = case_deadline_s
        self.resets = 0
        self._count = 0

    def start(self):
        pass

    def close(self):
        pass

    def reset(self):
        self.resets += 1

    def run_case(self, rng):
        self._count += 1
        if self._count == 3:  # exactly one failing case per sweep
            data = b"padX" + bytes(rng.randrange(256) for _ in range(8))
            return data, ("stub",), "stub invariant violated"
        return None

    def check_input(self, data):
        return "stub invariant violated" if b"X" in data else None


class TestHarness:
    def test_failure_is_persisted_and_minimized(self, tmp_path, monkeypatch):
        monkeypatch.setitem(TARGETS, "stub", _StubTarget)
        corpus = tmp_path / "corpus"
        report = run_fuzz(
            "stub", seeds=(7,), cases_per_seed=5, corpus_dir=str(corpus)
        )
        assert not report.ok
        assert report.cases_run == 5
        (failure,) = report.failures
        assert failure.detail == "stub invariant violated"
        assert failure.minimized_bytes == 1  # shrunk to the single X
        raw = (corpus / "stub-s7-c2.bin").read_bytes()
        assert b"X" in raw
        assert (corpus / "stub-s7-c2.min.bin").read_bytes() == b"X"
        # JSON round-trip for CI artifacts.
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is False

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz("nope")
        with pytest.raises(ValueError):
            run_fuzz("wire", cases_per_seed=0)

    def test_report_ok_shape(self):
        report = FuzzReport(target="wire", seeds=(0,), cases_per_seed=1)
        assert report.ok
        assert report.as_dict()["failures"] == []


class TestDiskTargets:
    @pytest.mark.parametrize("factory", [WalTarget, SnapshotTarget])
    def test_smoke_sweep_is_clean(self, factory):
        report = run_fuzz(
            factory.name, seeds=(0, 1), cases_per_seed=15
        )
        assert report.cases_run == 30
        assert report.ok, [f.as_dict() for f in report.failures]

    def test_pristine_fixture_loads(self):
        with WalTarget() as target:
            # The unmutated log must load cleanly — the fixture itself
            # cannot be the reason mutated cases "pass" via refusal.
            assert target.check_input(target._pristine["wal"]) is None

    def test_requires_start(self):
        target = SnapshotTarget()
        with pytest.raises(RuntimeError):
            target.check_input(b"")

    def test_validation(self):
        with pytest.raises(ValueError):
            WalTarget(case_deadline_s=0)


class TestWireTarget:
    def test_smoke_sweep_is_clean(self):
        report = run_fuzz("wire", seeds=(0,), cases_per_seed=10)
        assert report.cases_run == 10
        assert report.ok, [f.as_dict() for f in report.failures]

    def test_clean_frame_and_garbage_are_both_fine(self):
        with WireTarget() as target:
            assert target.check_input(b'{"op":"ping"}\n') is None
            assert target.check_input(b"\xff\xfe garbage \x00") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            WireTarget(case_deadline_s=-1)


class TestFuzzCli:
    def test_smoke_run_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            ["fuzz", "--target", "snapshot", "--smoke", "--seeds", "1",
             "--cases", "8"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cases_run"] == 8

    def test_failures_exit_nonzero(self, monkeypatch, capsys):
        from repro import cli
        from repro.fuzz import harness

        monkeypatch.setitem(harness.TARGETS, "wire", _StubTarget)
        code = cli.main(["fuzz", "--target", "wire", "--seeds", "1",
                         "--cases", "5"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["failures"][0]["detail"] == "stub invariant violated"
