"""Product-domain workload generator and cross-domain matching."""

import pytest

from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.errors import ErrorModel
from repro.data.products import (
    PRODUCT_COLUMNS,
    ProductGenerator,
    generate_products,
)
from repro.db.database import Database
from repro.eti.builder import build_eti


class TestProductGenerator:
    def test_count_and_tids(self):
        products = generate_products(120, seed=1)
        assert len(products) == 120
        assert [p.tid for p in products] == list(range(120))

    def test_deterministic(self):
        assert generate_products(60, seed=5) == generate_products(60, seed=5)

    def test_unique_values(self):
        products = generate_products(500, seed=2)
        assert len({p.values for p in products}) == 500

    def test_part_number_shape(self):
        for product in generate_products(100, seed=3):
            series, number, suffix = product.part_number.split("-")
            assert len(series) == 2 and series.isalpha()
            assert len(number) == 4 and number.isdigit()
            assert len(suffix) == 1

    def test_part_numbers_mostly_unique(self):
        products = generate_products(1000, seed=4)
        parts = [p.part_number for p in products]
        assert len(set(parts)) > 990

    def test_names_multi_token(self):
        products = generate_products(200, seed=5)
        assert all(2 <= len(p.product_name.split()) <= 3 for p in products)

    def test_categories_from_small_pool(self):
        products = generate_products(500, seed=6)
        assert len({p.category for p in products}) <= 10

    def test_negative_count(self):
        with pytest.raises(ValueError):
            list(ProductGenerator().generate(-1))


class TestProductMatching:
    @pytest.fixture(scope="class")
    def matcher(self):
        products = generate_products(600, seed=9)
        db = Database.in_memory()
        catalog = ReferenceTable(db, "product", list(PRODUCT_COLUMNS))
        catalog.load((p.tid, p.values) for p in products)
        config = MatchConfig()
        weights = build_frequency_cache(catalog.scan_values(), 3)
        eti, _ = build_eti(db, catalog, config)
        return FuzzyMatcher(catalog, weights, config, eti), products

    def test_clean_records_match_exactly(self, matcher):
        fuzzy, products = matcher
        for product in products[:30]:
            result = fuzzy.match(product.values)
            assert result.best.similarity == pytest.approx(1.0)

    def test_typo_in_part_number_recoverable(self, matcher):
        """The paper's point: an erroneous high-IDF token must still let
        the remaining tokens (and its own q-grams) identify the target."""
        fuzzy, products = matcher
        model = ErrorModel((1.0, 0.0, 0.0), name_column=1, seed=41)
        hits = 0
        trials = 40
        for product in products[:trials]:
            dirty, _ = model.corrupt(product.values)
            result = fuzzy.match(dirty)
            if result.best is not None and result.best.tid == product.tid:
                hits += 1
        assert hits / trials > 0.75

    def test_part_number_can_go_missing(self, matcher):
        fuzzy, products = matcher
        product = products[0]
        result = fuzzy.match((None, product.product_name, product.category))
        assert result.best is not None
        # Name + category alone usually narrow it down, but several
        # products can share both; just require a sane ranked answer.
        assert 0.0 < result.best.similarity <= 1.0
