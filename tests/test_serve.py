"""The serving layer: protocol, admission, ladder, lifecycle, end-to-end.

Unit machines (fake clocks, no sockets) first, then a real TCP server
over the paper's organization relation.  The binding contract under
test everywhere: a served ``match`` resolves to exactly one of
completed / degraded / shed / error, and a *completed* answer is
bit-identical to the offline matcher's.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.batch import BatchMatcher
from repro.core.matcher import FuzzyMatcher
from repro.core.resilience import Deadline, RetryPolicy
from repro.serve.admission import AdmissionQueue, ConnectionGate, WorkItem
from repro.serve.client import ClientTimeoutError, ServeClient
from repro.serve.lifecycle import (
    STAGES,
    DegradationLadder,
    Lifecycle,
    LifecycleError,
    WorkerHealth,
)
from repro.serve.protocol import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    SHED_DEADLINE_EXPIRED,
    SHED_DISPLACED,
    SHED_DRAINING,
    SHED_FRAME_TOO_LARGE,
    SHED_LOADING,
    SHED_OVERLOAD,
    SHED_PIPELINE_OVERFLOW,
    SHED_QUEUE_FULL,
    SHED_SLOW_FRAME,
    SHED_TOO_MANY_CONNECTIONS,
    FrameReader,
    ProtocolError,
    Request,
    SheddedError,
    decode_request,
    encode_line,
)
from repro.serve.server import IdempotencyCache, MatchServer, ServeConfig

from tests.conftest import ORG_INPUTS


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def make_item(priority=PRIORITY_INTERACTIVE, deadline=None, enqueued_at=0.0):
    request = Request(op="match", values=("x",), priority=priority)
    return WorkItem(request, deadline, enqueued_at)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_decode_match(self):
        request = decode_request(
            b'{"op":"match","id":"q7","values":["a",null,"c"],"k":2,'
            b'"min_similarity":0.5,"strategy":"basic","deadline_ms":100,'
            b'"priority":"bulk"}'
        )
        assert request.op == "match"
        assert request.id == "q7"
        assert request.values == ("a", None, "c")
        assert request.k == 2
        assert request.min_similarity == 0.5
        assert request.strategy == "basic"
        assert request.deadline_ms == 100.0
        assert request.priority == PRIORITY_BULK

    def test_defaults(self):
        request = decode_request('{"op":"match","values":["a"]}')
        assert request.id is None
        assert request.k is None
        assert request.strategy is None
        assert request.deadline_ms is None
        assert request.priority == PRIORITY_INTERACTIVE

    def test_non_match_ops_need_no_values(self):
        assert decode_request('{"op":"ping"}').op == "ping"
        assert decode_request('{"op":"stats"}').op == "stats"

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            '["op","match"]',
            '{"op":"nope"}',
            '{"op":"match"}',
            '{"op":"match","values":[]}',
            '{"op":"match","values":[1]}',
            '{"op":"match","values":["a"],"k":0}',
            '{"op":"match","values":["a"],"k":true}',
            '{"op":"match","values":["a"],"min_similarity":"hi"}',
            '{"op":"match","values":["a"],"strategy":"magic"}',
            '{"op":"match","values":["a"],"deadline_ms":0}',
            '{"op":"match","values":["a"],"deadline_ms":true}',
            '{"op":"match","values":["a"],"priority":"vip"}',
            '{"op":"match","values":["a"],"id":7}',
        ],
    )
    def test_rejects(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_encode_line_is_one_line(self):
        raw = encode_line({"ok": True, "id": "x"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------


class TestAdmissionQueue:
    def test_interactive_dequeues_first(self):
        queue = AdmissionQueue(capacity=4)
        bulk = make_item(PRIORITY_BULK)
        inter = make_item(PRIORITY_INTERACTIVE)
        queue.offer(bulk)
        queue.offer(inter)
        assert queue.take(1.0) is inter
        assert queue.take(1.0) is bulk

    def test_capacity_sheds_with_queue_full(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(make_item())
        with pytest.raises(SheddedError) as info:
            queue.offer(make_item())
        assert info.value.reason == SHED_QUEUE_FULL

    def test_bulk_cannot_displace(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(make_item(PRIORITY_INTERACTIVE))
        with pytest.raises(SheddedError) as info:
            queue.offer(make_item(PRIORITY_BULK))
        assert info.value.reason == SHED_QUEUE_FULL

    def test_interactive_displaces_newest_bulk(self):
        queue = AdmissionQueue(capacity=2)
        old_bulk = make_item(PRIORITY_BULK)
        new_bulk = make_item(PRIORITY_BULK)
        queue.offer(old_bulk)
        queue.offer(new_bulk)
        inter = make_item(PRIORITY_INTERACTIVE)
        queue.offer(inter)  # displaces new_bulk, inherits its token
        assert new_bulk.done.is_set()
        assert new_bulk.shed_reason == SHED_DISPLACED
        assert queue.depth == 2
        assert queue.take(1.0) is inter
        assert queue.take(1.0) is old_bulk
        # The semaphore count matched the queue: no phantom third item.
        assert queue.take(0.05) is None

    def test_closed_refuses_offers_but_serves_takes(self):
        queue = AdmissionQueue(capacity=4)
        item = make_item()
        queue.offer(item)
        queue.close()
        with pytest.raises(SheddedError) as info:
            queue.offer(make_item())
        assert info.value.reason == SHED_DRAINING
        assert queue.take(1.0) is item

    def test_shed_bulk_resolves_items_and_self_corrects_tokens(self):
        queue = AdmissionQueue(capacity=8)
        bulks = [make_item(PRIORITY_BULK) for _ in range(3)]
        for item in bulks:
            queue.offer(item)
        victims = queue.shed_bulk(SHED_OVERLOAD)
        assert victims == bulks
        assert all(b.shed_reason == SHED_OVERLOAD for b in bulks)
        # Tokens for shed items surface as timeouts, not phantom items.
        assert queue.take(0.05) is None
        assert queue.depth == 0

    def test_max_depth_is_bounded_by_capacity(self):
        queue = AdmissionQueue(capacity=3)
        for _ in range(3):
            queue.offer(make_item(PRIORITY_BULK))
        queue.offer(make_item(PRIORITY_INTERACTIVE))  # displacement
        assert queue.max_depth <= 3

    def test_wait_accounting_feeds_p95(self):
        clock = FakeClock()
        queue = AdmissionQueue(capacity=4, clock=clock)
        item = make_item(enqueued_at=clock())
        queue.offer(item)
        clock.advance(0.5)
        taken = queue.take(1.0)
        assert taken.queue_wait == pytest.approx(0.5)
        assert queue.p95_wait() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


# ----------------------------------------------------------------------
# Lifecycle, worker health, degradation ladder
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_happy_path(self):
        lifecycle = Lifecycle()
        assert lifecycle.state == "loading"
        lifecycle.transition("serving")
        lifecycle.transition("draining")
        lifecycle.transition("stopped")
        assert lifecycle.is_stopped()

    def test_idempotent_and_illegal(self):
        lifecycle = Lifecycle()
        lifecycle.transition("loading")  # no-op
        with pytest.raises(LifecycleError):
            lifecycle.transition("draining")
        with pytest.raises(LifecycleError):
            lifecycle.transition("warp")

    def test_loading_may_stop_directly(self):
        lifecycle = Lifecycle()
        lifecycle.transition("stopped")
        assert lifecycle.is_stopped()


class TestWorkerHealth:
    def test_stuck_detection_needs_busy_and_silence(self):
        clock = FakeClock()
        health = WorkerHealth(stuck_after_s=1.0, clock=clock)
        health.beat("idle", busy=False)
        health.beat("busy", busy=True)
        clock.advance(2.0)
        assert health.stuck_workers() == ("busy",)
        health.beat("busy", busy=True)  # fresh beat: no longer silent
        assert health.stuck_workers() == ()

    def test_busy_count_and_deregister(self):
        health = WorkerHealth(stuck_after_s=1.0)
        health.beat("a", busy=True)
        health.beat("b", busy=False)
        assert health.workers() == 2
        assert health.busy_workers() == 1
        health.deregister("a")
        assert health.workers() == 1
        assert health.busy_workers() == 0


class TestDegradationLadder:
    def make(self, clock):
        return DegradationLadder(
            degrade_at_s=0.2, recover_at_s=0.05, cooldown_s=5.0, clock=clock
        )

    def test_calm_never_trips(self):
        ladder = self.make(FakeClock())
        assert ladder.observe(0.19) is None
        assert ladder.stage() == "osc"

    def test_trips_one_stage_per_dwell(self):
        clock = FakeClock()
        ladder = self.make(clock)
        assert ladder.observe(1.0) == "osc"
        assert ladder.stage() == "basic"
        # Still overloaded, but inside the dwell window: no cascade.
        assert ladder.observe(1.0) is None
        assert ladder.stage() == "basic"
        clock.advance(5.0)
        assert ladder.observe(1.0) == "basic"
        assert ladder.stage() == "naive"
        clock.advance(5.0)
        assert ladder.observe(1.0) is None  # nothing left to trip
        assert ladder.trips() == 2

    def test_probe_grant_and_reclose(self):
        clock = FakeClock()
        ladder = self.make(clock)
        ladder.observe(1.0)
        # Before cooldown: requests run at the degraded stage, no probe.
        stage, probe = ladder.stage_for_request()
        assert (stage, probe) == ("basic", None)
        clock.advance(5.0)
        stage, probe = ladder.stage_for_request()
        assert stage == "osc"
        assert probe is not None
        # Only one probe in flight.
        assert ladder.stage_for_request() == ("basic", None)
        assert ladder.probe_succeeded(0.01)
        probe.record_success()
        assert ladder.stage() == "osc"

    def test_failed_probe_retrips(self):
        clock = FakeClock()
        ladder = self.make(clock)
        ladder.observe(1.0)
        clock.advance(5.0)
        _stage, probe = ladder.stage_for_request()
        assert not ladder.probe_succeeded(0.5)
        probe.record_failure()
        assert ladder.stage() == "basic"
        # The re-trip restarts the cooldown: no probe until it elapses.
        assert ladder.stage_for_request() == ("basic", None)
        clock.advance(5.0)
        assert ladder.stage_for_request()[0] == "osc"

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationLadder(degrade_at_s=0.1, recover_at_s=0.2, cooldown_s=1.0)


# ----------------------------------------------------------------------
# End-to-end over TCP
# ----------------------------------------------------------------------


@pytest.fixture()
def org_engine(org_reference, org_weights, paper_config, org_eti):
    engine = BatchMatcher(org_reference, org_weights, paper_config, org_eti, jobs=2)
    yield engine
    engine.close()


@pytest.fixture()
def offline_matcher(org_reference, org_weights, paper_config, org_eti):
    return FuzzyMatcher(org_reference, org_weights, paper_config, org_eti)


@contextmanager
def running_server(engine, config=None, **kwargs):
    server = MatchServer(
        engine=engine,
        config=config if config is not None else ServeConfig(workers=2),
        **kwargs,
    )
    try:
        server.start()
        yield server
    finally:
        server.shutdown(drain_budget_s=1.0)


def match_in_thread(server, values, **kwargs):
    """Fire a match on its own connection+thread; returns (thread, box)."""
    host, port = server.address
    box = {}

    def run():
        try:
            with ServeClient(host, port) as client:
                box["response"] = client.match(values, **kwargs)
        except (ConnectionError, OSError) as exc:
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


class TestStartupFailureCleanup:
    """Sockets must not leak when start() or a connection handler fails."""

    def test_bind_failure_closes_listener_socket(self, monkeypatch):
        # Occupy a port so the server's bind fails with EADDRINUSE.
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        created = []
        real_socket = socket.socket

        def capturing_socket(*args, **kwargs):
            sock = real_socket(*args, **kwargs)
            created.append(sock)
            return sock

        monkeypatch.setattr(socket, "socket", capturing_socket)
        server = MatchServer(
            engine_factory=lambda: (None, None),
            config=ServeConfig(port=port),
        )
        try:
            with pytest.raises(OSError):
                server.start()
            assert created, "server never created its listener socket"
            assert all(sock.fileno() == -1 for sock in created), (
                "listener socket leaked after a failed start()"
            )
            assert server._listener is None
        finally:
            blocker.close()

    def test_dead_socket_closes_connection_and_releases_gate(self):
        server = MatchServer(engine_factory=lambda: (None, None))

        class FailingConn:
            def __init__(self):
                self.closed = False

            def settimeout(self, value):
                raise OSError("simulated dead socket")

            def close(self):
                self.closed = True

        conn = FailingConn()
        assert server.gate.admit("peer")
        server._conns.append(conn)
        server._handle_connection(conn, "peer")
        assert conn.closed, "connection socket leaked when the first read failed"
        assert conn not in server._conns
        assert server.gate.open_connections == 0


class TestServerEndToEnd:
    def test_completed_answers_are_bit_identical(self, org_engine, offline_matcher):
        config = ServeConfig(workers=2, default_deadline_ms=None)
        with running_server(org_engine, config) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                for values, _target in ORG_INPUTS:
                    offline = offline_matcher.match(values)
                    response = client.match(values)
                    assert response["outcome"] == "completed"
                    assert response["matches"] == [
                        {
                            "tid": m.tid,
                            "similarity": m.similarity,
                            "values": list(m.values),
                        }
                        for m in offline.matches
                    ]
                    assert response["stage"] == "osc"

    def test_ping_stats_and_protocol_errors(self, org_engine):
        with running_server(org_engine) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                ping = client.ping()
                assert ping["state"] == "serving"
                assert ping["workers"] == 2
                client.match(["Beoing Company", "Seattle", "WA", "98004"])
                stats = client.stats()
                assert stats["completed"] == 1
                assert stats["submitted"] == {"interactive": 1}
                bad = client.request({"op": "match"})  # no values
                assert bad["outcome"] == "error"
                assert bad["error_type"] == "ProtocolError"
                arity = client.match(["just-one-column"])
                assert arity["outcome"] == "error"
                assert arity["error_type"] == "ValueError"

    def test_queue_full_and_displacement(self, org_engine):
        gate = threading.Event()
        config = ServeConfig(
            workers=1, queue_capacity=1, default_deadline_ms=None
        )
        values = ["Beoing Company", "Seattle", "WA", "98004"]
        with running_server(
            org_engine, config, before_execute=lambda item: gate.wait(10)
        ) as server:
            t_busy, busy_box = match_in_thread(server, values)
            assert wait_until(lambda: server.health.busy_workers() == 1)
            t_bulk, bulk_box = match_in_thread(
                server, values, priority=PRIORITY_BULK
            )
            assert wait_until(lambda: server.queue.depth == 1)
            # Queue full + only bulk queued: interactive displaces it.
            t_inter, inter_box = match_in_thread(server, values)
            t_bulk.join(5)
            assert bulk_box["response"]["outcome"] == "shed"
            assert bulk_box["response"]["shed_reason"] == SHED_DISPLACED
            # Queue full again with an interactive queued: next arrival
            # (any class) is refused at the door.
            t_refused, refused_box = match_in_thread(
                server, values, priority=PRIORITY_BULK
            )
            t_refused.join(5)
            assert refused_box["response"]["shed_reason"] == SHED_QUEUE_FULL
            gate.set()
            t_busy.join(5)
            t_inter.join(5)
            assert busy_box["response"]["outcome"] == "completed"
            assert inter_box["response"]["outcome"] == "completed"
            assert server.queue.max_depth <= 1

    def test_deadline_expired_in_queue_is_shed(self, org_engine):
        gate = threading.Event()
        config = ServeConfig(workers=1, default_deadline_ms=None)
        values = ["Beoing Company", "Seattle", "WA", "98004"]
        with running_server(
            org_engine, config, before_execute=lambda item: gate.wait(10)
        ) as server:
            t_busy, busy_box = match_in_thread(server, values, deadline_ms=10_000)
            assert wait_until(lambda: server.health.busy_workers() == 1)
            t_doomed, doomed_box = match_in_thread(server, values, deadline_ms=30)
            assert wait_until(lambda: server.queue.depth == 1)
            time.sleep(0.08)  # burn the queued request's whole deadline
            gate.set()
            t_doomed.join(5)
            assert doomed_box["response"]["outcome"] == "shed"
            assert doomed_box["response"]["shed_reason"] == SHED_DEADLINE_EXPIRED
            t_busy.join(5)
            assert busy_box["response"]["outcome"] == "completed"

    def test_overload_downgrade_and_probe_recovery(self, org_engine):
        config = ServeConfig(
            workers=2,
            default_deadline_ms=None,
            stage_cooldown_s=0.1,
            degrade_p95_s=0.2,
            recover_p95_s=0.05,
        )
        values = ["Beoing Company", "Seattle", "WA", "98004"]
        with running_server(org_engine, config) as server:
            host, port = server.address
            # Simulate sustained queue pressure: the governor trips osc off.
            assert server.ladder.observe(1.0) == "osc"
            with ServeClient(host, port) as client:
                assert client.ping()["state"] == "degraded"
                degraded = client.match(values)
                assert degraded["outcome"] == "degraded"
                assert degraded["stage"] == "basic"
                assert degraded["strategy"] == "basic"
                assert degraded["degraded_reason"] == "overload_stage:basic"
                # Matches are still correct, just computed the cheaper way.
                assert degraded["matches"][0]["tid"] == 1
                time.sleep(0.15)  # past the cooldown: next request probes
                probe = client.match(values)
                assert probe["outcome"] == "completed"
                assert wait_until(lambda: server.ladder.stage() == "osc")
                assert client.ping()["state"] == "serving"

    def test_stuck_worker_surfaces_in_readiness_and_times_out(self, org_engine):
        gate = threading.Event()
        config = ServeConfig(
            workers=1,
            default_deadline_ms=None,
            stuck_after_s=0.05,
            response_grace_s=0.1,
        )
        values = ["Beoing Company", "Seattle", "WA", "98004"]
        with running_server(
            org_engine, config, before_execute=lambda item: gate.wait(10)
        ) as server:
            try:
                t_stuck, stuck_box = match_in_thread(
                    server, values, deadline_ms=50
                )
                assert wait_until(lambda: server.health.busy_workers() == 1)
                assert wait_until(
                    lambda: server.health.stuck_workers() == ("worker-0",)
                )
                host, port = server.address
                with ServeClient(host, port) as client:
                    assert client.ping()["state"] == "degraded"
                t_stuck.join(5)
                assert stuck_box["response"]["error_type"] == "StuckWorkerTimeout"
            finally:
                gate.set()

    def test_drain_finishes_admitted_work(self, org_engine):
        gate = threading.Event()
        config = ServeConfig(workers=1, default_deadline_ms=None)
        values = ["Beoing Company", "Seattle", "WA", "98004"]
        with running_server(
            org_engine, config, before_execute=lambda item: gate.wait(10)
        ) as server:
            t_running, running_box = match_in_thread(server, values)
            assert wait_until(lambda: server.health.busy_workers() == 1)
            t_queued, queued_box = match_in_thread(server, values)
            assert wait_until(lambda: server.queue.depth == 1)
            drainer = threading.Thread(
                target=server.shutdown, kwargs={"drain_budget_s": 5.0}
            )
            drainer.start()
            assert wait_until(lambda: server.lifecycle.state == "draining")
            gate.set()
            drainer.join(10)
            assert server.lifecycle.state == "stopped"
            t_running.join(5)
            t_queued.join(5)
            # Draining means FINISH admitted work, not abandon it.
            assert running_box["response"]["outcome"] == "completed"
            assert queued_box["response"]["outcome"] == "completed"

    def test_drain_budget_sheds_leftovers(self, org_engine):
        gate = threading.Event()
        config = ServeConfig(workers=1, default_deadline_ms=None)
        values = ["Beoing Company", "Seattle", "WA", "98004"]
        with running_server(
            org_engine, config, before_execute=lambda item: gate.wait(10)
        ) as server:
            try:
                t_running, _running_box = match_in_thread(server, values)
                assert wait_until(lambda: server.health.busy_workers() == 1)
                t_queued, queued_box = match_in_thread(server, values)
                assert wait_until(lambda: server.queue.depth == 1)
                server.shutdown(drain_budget_s=0.2)
                assert server.lifecycle.state == "stopped"
                t_queued.join(5)
                assert queued_box["response"]["outcome"] == "shed"
                assert queued_box["response"]["shed_reason"] == "drain_budget"
            finally:
                gate.set()

    def test_loading_state_pings_and_sheds(
        self, org_reference, org_weights, paper_config, org_eti
    ):
        release = threading.Event()
        engine = BatchMatcher(
            org_reference, org_weights, paper_config, org_eti, jobs=2
        )

        def factory():
            release.wait(10)
            return engine, None

        server = MatchServer(engine_factory=factory, config=ServeConfig(workers=1))
        starter = threading.Thread(target=server.start, daemon=True)
        starter.start()
        try:
            assert wait_until(lambda: server.address is not None)
            host, port = server.address
            with ServeClient(host, port) as client:
                assert client.ping()["state"] == "loading"
                shed = client.match(["Beoing Company", "Seattle", "WA", "98004"])
                assert shed["outcome"] == "shed"
                assert shed["shed_reason"] == SHED_LOADING
            release.set()
            starter.join(10)
            assert wait_until(lambda: server.lifecycle.state == "serving")
            with ServeClient(host, port) as client:
                done = client.match(["Beoing Company", "Seattle", "WA", "98004"])
                assert done["outcome"] == "completed"
        finally:
            release.set()
            server.shutdown(drain_budget_s=1.0)
            engine.close()

    def test_offers_after_close_shed_as_draining(self, org_engine):
        with running_server(org_engine) as server:
            server.queue.close()
            with pytest.raises(SheddedError) as info:
                server.queue.offer(make_item())
            assert info.value.reason == SHED_DRAINING

    def test_constructor_validation(self, org_engine):
        with pytest.raises(ValueError):
            MatchServer()
        with pytest.raises(ValueError):
            MatchServer(engine=org_engine, engine_factory=lambda: (org_engine, None))
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            ServeConfig(degrade_p95_s=0.1, shed_p95_s=0.05)
        with pytest.raises(ValueError):
            ServeConfig(drain_budget_s=0)


class TestServeStagesConstant:
    def test_stage_order_matches_fallback_chain(self):
        assert STAGES == ("osc", "basic", "naive")

    def test_deadline_helper_round_trip(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert not deadline.expired()
        clock.advance(2.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0


# ----------------------------------------------------------------------
# Wire boundary hardening (raw sockets against a live server)
# ----------------------------------------------------------------------


@contextmanager
def raw_conn(server, timeout=5.0):
    """A raw client socket + buffered reader against a running server."""
    sock = socket.create_connection(server.address, timeout=timeout)
    sock.settimeout(timeout)
    reader = sock.makefile("rb")
    try:
        yield sock, reader
    finally:
        reader.close()
        sock.close()


def send_recv(sock, reader, raw):
    """Send raw bytes, decode the next response line."""
    sock.sendall(raw)
    return json.loads(reader.readline())


PING = b'{"op":"ping"}\n'


class TestWireBoundary:
    def test_blank_frames_are_skipped_and_connection_survives(self, org_engine):
        with running_server(org_engine) as server:
            with raw_conn(server) as (sock, reader):
                response = send_recv(sock, reader, b"\n   \n\t\n" + PING)
                assert response["ok"] is True

    @pytest.mark.parametrize(
        "frame",
        [
            b"\xc3(\n",  # invalid UTF-8
            b'["op","ping"]\n',  # JSON array, not an object
            b"not json at all\n",
        ],
    )
    def test_malformed_frame_is_typed_and_recoverable(self, org_engine, frame):
        with running_server(org_engine) as server:
            with raw_conn(server) as (sock, reader):
                response = send_recv(sock, reader, frame)
                assert response["outcome"] == "error"
                assert response["error_type"] == "ProtocolError"
                # The handler loop survived: the same connection still works.
                assert send_recv(sock, reader, PING)["ok"] is True

    def test_frame_split_across_single_byte_writes(self, org_engine):
        with running_server(org_engine) as server:
            with raw_conn(server) as (sock, reader):
                for i in range(len(PING)):
                    sock.sendall(PING[i : i + 1])
                assert json.loads(reader.readline())["ok"] is True

    def test_oversize_frame_sheds_then_recovers(self, org_engine):
        config = ServeConfig(workers=2, max_frame_bytes=256)
        with running_server(org_engine, config) as server:
            with raw_conn(server) as (sock, reader):
                huge = b'{"op":"ping","pad":"' + b"x" * 1024 + b'"}\n'
                response = send_recv(sock, reader, huge)
                assert response["outcome"] == "shed"
                assert response["shed_reason"] == SHED_FRAME_TOO_LARGE
                # The line's end was found, so the connection continues.
                assert send_recv(sock, reader, PING)["ok"] is True
            assert server.stats.as_dict()["shed_reasons"][SHED_FRAME_TOO_LARGE] == 1

    def test_unterminated_oversize_disconnects(self, org_engine):
        config = ServeConfig(
            workers=2, max_frame_bytes=128, oversize_drain_bytes=128
        )
        with running_server(org_engine, config) as server:
            with raw_conn(server) as (sock, reader):
                sock.sendall(b"x" * 4096)  # no newline, past cap + drain budget
                response = json.loads(reader.readline())
                assert response["shed_reason"] == SHED_FRAME_TOO_LARGE
                assert reader.readline() == b""  # server closed the connection

    def test_slowloris_is_disconnected_within_deadline(self, org_engine):
        config = ServeConfig(workers=2, frame_timeout_s=0.2)
        with running_server(org_engine, config) as server:
            with raw_conn(server) as (sock, reader):
                sock.sendall(b"{")  # first byte arms the frame deadline
                started = time.monotonic()
                response = json.loads(reader.readline())
                elapsed = time.monotonic() - started
                assert response["shed_reason"] == SHED_SLOW_FRAME
                assert reader.readline() == b""
                assert elapsed < 3.0

    def test_pipeline_overflow_disconnects(self, org_engine):
        config = ServeConfig(workers=2, max_pipelined_frames=2)
        with running_server(org_engine, config) as server:
            with raw_conn(server) as (sock, reader):
                sock.sendall(PING * 40)
                reasons = []
                while True:
                    line = reader.readline()
                    if not line:
                        break
                    reasons.append(json.loads(line).get("shed_reason"))
                assert SHED_PIPELINE_OVERFLOW in reasons

    def test_idle_connection_is_closed_quietly(self, org_engine):
        config = ServeConfig(workers=2, idle_timeout_s=0.2)
        with running_server(org_engine, config) as server:
            with raw_conn(server) as (sock, reader):
                assert reader.readline() == b""  # no shed line: just a close

    def test_per_peer_connection_limit(self, org_engine):
        config = ServeConfig(workers=2, max_connections_per_peer=1)
        with running_server(org_engine, config) as server:
            with raw_conn(server) as (sock1, reader1):
                assert send_recv(sock1, reader1, PING)["ok"] is True
                with raw_conn(server) as (sock2, reader2):
                    refusal = json.loads(reader2.readline())
                    assert refusal["shed_reason"] == SHED_TOO_MANY_CONNECTIONS
                    assert reader2.readline() == b""
                # The admitted connection is unaffected by the refusal.
                assert send_recv(sock1, reader1, PING)["ok"] is True
            # Closing the admitted connection frees the slot.
            assert wait_until(lambda: server.gate.open_connections == 0)
            with raw_conn(server) as (sock3, reader3):
                assert send_recv(sock3, reader3, PING)["ok"] is True

    def test_dead_on_arrival_deadline_is_shed(self, org_engine):
        with running_server(org_engine) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                response = client.match(
                    ["Boeing Company", "Seattle", "WA", "98004"],
                    deadline_ms=0.001,
                )
        assert response["outcome"] == "shed"
        assert response["shed_reason"] == SHED_DEADLINE_EXPIRED

    def test_idempotent_replay_serves_cached_response(self, org_engine):
        with running_server(org_engine) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                first = client.match(
                    ["Beoing Company", "Seattle", "WA", "98004"],
                    idempotency_key="dup-1",
                )
                second = client.match(
                    ["Beoing Company", "Seattle", "WA", "98004"],
                    idempotency_key="dup-1",
                )
            assert first == second
            assert first["outcome"] == "completed"
            assert server.stats.as_dict()["idempotent_replays"] == 1


class TestFrameReaderUnit:
    def _pair(self, **kwargs):
        left, right = socket.socketpair()
        left.settimeout(5.0)
        return left, right, FrameReader(left, **kwargs)

    def test_coalesced_and_split_frames(self):
        left, right, reader = self._pair()
        try:
            right.sendall(b'{"a":1}\n{"b":2}\n{"c"')
            assert reader.next_frame() == b'{"a":1}'
            assert reader.next_frame() == b'{"b":2}'
            right.sendall(b':3}\n')
            assert reader.next_frame() == b'{"c":3}'
        finally:
            left.close()
            right.close()

    def test_eof_yields_trailing_unterminated_line(self):
        left, right, reader = self._pair()
        try:
            right.sendall(b'{"tail":true}')
            right.close()
            assert reader.next_frame() == b'{"tail":true}'
            assert reader.next_frame() is None
        finally:
            left.close()

    def test_validation(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(ValueError):
                FrameReader(left, max_frame_bytes=0)
            with pytest.raises(ValueError):
                FrameReader(left, frame_timeout_s=0)
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# Resilient client (fake servers with scripted behaviour)
# ----------------------------------------------------------------------


class FakeWireServer:
    """A listener that runs one scripted handler per accepted connection."""

    def __init__(self, handlers):
        self.handlers = list(handlers)
        self.lines = []
        self.stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self):
        for handler in self.handlers:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                handler(self, conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self.stop.set()
        self._listener.close()
        self._thread.join(timeout=5.0)


def _read_line(server, conn):
    """Read one request line into ``server.lines``."""
    with conn.makefile("rb") as reader:
        server.lines.append(reader.readline())


class TestServeClientResilience:
    def test_silent_server_raises_typed_timeout(self):
        def silent(server, conn):
            server.stop.wait(10.0)  # accept, then never respond

        with FakeWireServer([silent]) as fake:
            host, port = fake.address
            client = ServeClient(host, port, timeout_s=0.3)
            try:
                with pytest.raises(ClientTimeoutError) as info:
                    client.ping()
                # Still an OSError/TimeoutError for legacy call sites.
                assert isinstance(info.value, TimeoutError)
            finally:
                client.close()

    def test_retry_reconnects_and_reuses_idempotency_key(self):
        def drop_after_read(server, conn):
            _read_line(server, conn)  # connection closes on return

        def answer(server, conn):
            with conn.makefile("rb") as reader:
                server.lines.append(reader.readline())
                conn.sendall(b'{"outcome":"completed","ok":true}\n')

        with FakeWireServer([drop_after_read, answer]) as fake:
            host, port = fake.address
            policy = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)
            client = ServeClient(host, port, timeout_s=2.0, retry=policy)
            try:
                response = client.match(["x"])
            finally:
                client.close()
        assert response["outcome"] == "completed"
        assert len(fake.lines) == 2
        keys = [json.loads(line)["idempotency_key"] for line in fake.lines]
        assert keys[0] == keys[1]  # the retransmission reused the key

    def test_retryable_shed_is_retried_on_one_connection(self):
        def shed_then_answer(server, conn):
            with conn.makefile("rb") as reader:
                server.lines.append(reader.readline())
                conn.sendall(
                    b'{"outcome":"shed","shed_reason":"queue_full","ok":false}\n'
                )
                server.lines.append(reader.readline())
                conn.sendall(b'{"outcome":"completed","ok":true}\n')

        with FakeWireServer([shed_then_answer]) as fake:
            host, port = fake.address
            policy = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)
            client = ServeClient(host, port, timeout_s=2.0, retry=policy)
            try:
                response = client.match(["x"])
            finally:
                client.close()
        assert response["outcome"] == "completed"
        assert len(fake.lines) == 2

    def test_without_retry_shed_is_returned_as_is(self):
        def shed_once(server, conn):
            with conn.makefile("rb") as reader:
                server.lines.append(reader.readline())
                conn.sendall(
                    b'{"outcome":"shed","shed_reason":"queue_full","ok":false}\n'
                )

        with FakeWireServer([shed_once]) as fake:
            host, port = fake.address
            client = ServeClient(host, port, timeout_s=2.0)
            try:
                response = client.match(["x"])
                # No retry policy => no auto idempotency key either.
                assert b"idempotency_key" not in fake.lines[0]
            finally:
                client.close()
        assert response["outcome"] == "shed"


# ----------------------------------------------------------------------
# Boundary machinery units
# ----------------------------------------------------------------------


class TestConnectionGate:
    def test_per_peer_and_global_caps(self):
        gate = ConnectionGate(max_connections=3, max_per_peer=2)
        assert gate.admit("a")
        assert gate.admit("a")
        assert not gate.admit("a")  # per-peer cap
        assert gate.admit("b")
        assert not gate.admit("c")  # global cap
        gate.release("a")
        assert gate.admit("c")
        assert gate.open_connections == 3

    def test_release_unknown_peer_is_harmless(self):
        gate = ConnectionGate(max_connections=2, max_per_peer=2)
        gate.release("ghost")
        assert gate.open_connections == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionGate(max_connections=0, max_per_peer=1)
        with pytest.raises(ValueError):
            ConnectionGate(max_connections=1, max_per_peer=0)


class TestIdempotencyCache:
    def test_lru_eviction(self):
        cache = IdempotencyCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert cache.get("a") == {"n": 1}  # refreshes "a"
        cache.put("c", {"n": 3})  # evicts "b", the least recent
        assert cache.get("b") is None
        assert cache.get("a") == {"n": 1}
        assert cache.get("c") == {"n": 3}
        assert len(cache) == 2


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.05
        )
        delays = [policy.delay(i) for i in range(5)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_is_seeded_and_bounded(self):
        import random

        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        a = [policy.delay(0, rng=random.Random(7)) for _ in range(3)]
        b = [policy.delay(0, rng=random.Random(7)) for _ in range(3)]
        assert a == b  # same seed, same jitter
        assert all(0.005 <= d <= 0.01 for d in a)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_pager_reexport_is_the_same_class(self):
        from repro.db import pager

        assert pager.RetryPolicy is RetryPolicy


def test_bench_serve_importable():
    """The serving benchmark's module contract: levels + JSON targets."""
    import importlib.util
    import json
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "bench_serve",
        Path(__file__).resolve().parent.parent / "benchmarks" / "bench_serve.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert [path.name for path in module.RESULT_PATHS] == [
        "BENCH_serve.json",
        "BENCH_serve.json",
    ]
    payload = json.loads(module.RESULT_PATHS[0].read_text())
    assert payload["benchmark"] == "serve_overhead_and_overload"
    assert set(payload["levels"]) == {"serve_1x", "serve_2x", "serve_10x"}
    for level in payload["levels"].values():
        assert level["outcomes"]["error"] == 0
        assert set(level["latency"]) == {"p50_ms", "p95_ms", "p99_ms", "mean_ms"}
    assert payload["overhead"]["within_gate"] is True
    assert payload["queue_max_depth"] <= payload["queue_capacity"]
