"""Dataset presets (Table 5) and dirty-dataset construction."""

import pytest

from repro.data.datasets import (
    DATASET_PRESETS,
    DatasetSpec,
    ED_VS_FMS_PROBABILITIES,
    make_dataset,
)
from repro.data.generator import generate_customers


@pytest.fixture()
def reference_tuples():
    return [(c.tid, c.values) for c in generate_customers(300, seed=4)]


class TestPresets:
    def test_table5_values(self):
        assert DATASET_PRESETS["D1"] == (0.90, 0.90, 0.90, 0.90)
        assert DATASET_PRESETS["D2"] == (0.80, 0.50, 0.50, 0.60)
        assert DATASET_PRESETS["D3"] == (0.70, 0.50, 0.50, 0.25)

    def test_ed_vs_fms_probabilities(self):
        assert ED_VS_FMS_PROBABILITIES == (0.90, 0.50, 0.50, 0.60)

    def test_preset_lookup(self):
        spec = DatasetSpec.preset("D2")
        assert spec.name == "D2"
        assert spec.column_error_probabilities == DATASET_PRESETS["D2"]
        assert spec.method == "type1"

    def test_preset_with_method(self):
        assert DatasetSpec.preset("D1", method="type2").method == "type2"

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            DatasetSpec.preset("D9")

    def test_d1_dirtier_than_d3(self):
        d1 = DatasetSpec.preset("D1").column_error_probabilities
        d3 = DatasetSpec.preset("D3").column_error_probabilities
        assert all(a >= b for a, b in zip(d1, d3))


class TestMakeDataset:
    def test_size(self, reference_tuples):
        spec = DatasetSpec.preset("D2")
        dataset = make_dataset(reference_tuples, spec, 100, seed=1)
        assert len(dataset) == 100

    def test_targets_are_reference_tids(self, reference_tuples):
        spec = DatasetSpec.preset("D2")
        dataset = make_dataset(reference_tuples, spec, 50, seed=1)
        tids = {tid for tid, _ in reference_tuples}
        assert all(d.target_tid in tids for d in dataset.inputs)

    def test_sampling_without_replacement(self, reference_tuples):
        spec = DatasetSpec.preset("D2")
        dataset = make_dataset(reference_tuples, spec, 200, seed=1)
        targets = [d.target_tid for d in dataset.inputs]
        assert len(set(targets)) == len(targets)

    def test_deterministic(self, reference_tuples):
        spec = DatasetSpec.preset("D1")
        a = make_dataset(reference_tuples, spec, 80, seed=5)
        b = make_dataset(reference_tuples, spec, 80, seed=5)
        assert [d.values for d in a.inputs] == [d.values for d in b.inputs]
        assert [d.target_tid for d in a.inputs] == [d.target_tid for d in b.inputs]

    def test_oversampling_rejected(self, reference_tuples):
        spec = DatasetSpec.preset("D1")
        with pytest.raises(ValueError, match="cannot sample"):
            make_dataset(reference_tuples, spec, 10_000, seed=1)

    def test_negative_count_rejected(self, reference_tuples):
        with pytest.raises(ValueError):
            make_dataset(reference_tuples, DatasetSpec.preset("D1"), -1)

    def test_most_inputs_are_dirty(self, reference_tuples):
        """D1 corrupts every column with p=0.9: nearly all inputs differ."""
        spec = DatasetSpec.preset("D1")
        dataset = make_dataset(reference_tuples, spec, 200, seed=2)
        by_tid = dict(reference_tuples)
        dirty = sum(
            1 for d in dataset.inputs if d.values != tuple(by_tid[d.target_tid])
        )
        assert dirty > 190

    def test_d3_cleaner_than_d1(self, reference_tuples):
        d1 = make_dataset(reference_tuples, DatasetSpec.preset("D1"), 200, seed=3)
        d3 = make_dataset(reference_tuples, DatasetSpec.preset("D3"), 200, seed=3)
        errors_d1 = sum(len(d.report.errors) for d in d1.inputs)
        errors_d3 = sum(len(d.report.errors) for d in d3.inputs)
        assert errors_d1 > errors_d3

    def test_error_counts_summary(self, reference_tuples):
        dataset = make_dataset(
            reference_tuples, DatasetSpec.preset("D1"), 150, seed=4
        )
        counts = dataset.error_counts()
        assert counts  # at least one error type occurred
        assert sum(counts.values()) == sum(
            len(d.report.errors) for d in dataset.inputs
        )
        assert "spelling" in counts

    def test_type2_dataset(self, reference_tuples):
        from repro.core.weights import build_frequency_cache

        cache = build_frequency_cache((v for _, v in reference_tuples), 4)
        spec = DatasetSpec("T2", ED_VS_FMS_PROBABILITIES, method="type2")
        dataset = make_dataset(
            reference_tuples, spec, 100, seed=5, frequency_lookup=cache.frequency
        )
        assert len(dataset) == 100
