"""ETI construction and lookup (§4.2, §5.1)."""

import pytest

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.minhash import MinHasher
from repro.core.tokens import TupleTokens
from repro.eti.builder import EtiBuilder, build_eti
from repro.eti.schema import ETI_INDEX
from repro.eti.signature import TOKEN_COORDINATE, SignatureEntry, signature_entries


class TestSignatureEntries:
    def setup_method(self):
        self.hasher = MinHasher(q=3, num_hashes=2, seed=1)

    def test_q_scheme_long_token(self):
        config = MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)
        entries = signature_entries("corporation", self.hasher, config)
        assert len(entries) == 2
        assert [e.coordinate for e in entries] == [1, 2]
        assert all(e.weight_fraction == pytest.approx(0.5) for e in entries)

    def test_q_scheme_short_token(self):
        config = MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)
        entries = signature_entries("wa", self.hasher, config)
        assert entries == (SignatureEntry(1, "wa", 1.0),)

    def test_qt_scheme_adds_token_coordinate(self):
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS_PLUS_TOKEN
        )
        entries = signature_entries("corporation", self.hasher, config)
        assert entries[0].coordinate == TOKEN_COORDINATE
        assert entries[0].gram == "corporation"
        assert entries[0].weight_fraction == pytest.approx(0.5)
        assert [e.coordinate for e in entries[1:]] == [1, 2]
        assert all(e.weight_fraction == pytest.approx(0.25) for e in entries[1:])

    def test_qt_zero_is_token_only(self):
        config = MatchConfig(
            q=3, signature_size=0, scheme=SignatureScheme.QGRAMS_PLUS_TOKEN
        )
        entries = signature_entries("corporation", self.hasher, config)
        assert entries == (SignatureEntry(TOKEN_COORDINATE, "corporation", 1.0),)

    def test_weight_fractions_sum_to_one(self):
        for scheme in SignatureScheme:
            for size in (1, 2, 3):
                config = MatchConfig(q=3, signature_size=size, scheme=scheme)
                for token in ("corporation", "wa", "boeing"):
                    entries = signature_entries(token, self.hasher, config)
                    assert sum(e.weight_fraction for e in entries) == pytest.approx(1.0)

    def test_empty_token(self):
        config = MatchConfig(q=3, signature_size=2)
        assert signature_entries("", self.hasher, config) == ()

    def test_grams_come_from_minhash(self):
        config = MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)
        entries = signature_entries("corporation", self.hasher, config)
        assert tuple(e.gram for e in entries) == self.hasher.signature("corporation")

    def test_full_scheme_indexes_every_qgram(self):
        config = MatchConfig(q=3, scheme=SignatureScheme.FULL_QGRAMS)
        entries = signature_entries("boeing", self.hasher, config)
        assert {e.gram for e in entries} == {"boe", "oei", "ein", "ing"}
        assert all(e.coordinate == 1 for e in entries)
        assert sum(e.weight_fraction for e in entries) == pytest.approx(1.0)

    def test_full_scheme_short_token(self):
        config = MatchConfig(q=3, scheme=SignatureScheme.FULL_QGRAMS)
        entries = signature_entries("wa", self.hasher, config)
        assert entries == (SignatureEntry(1, "wa", 1.0),)

    def test_full_scheme_label(self):
        config = MatchConfig(q=3, scheme=SignatureScheme.FULL_QGRAMS)
        assert config.strategy_label == "Full"


class TestEtiBuild:
    def test_builds_and_counts(self, org_db, org_reference, paper_config):
        eti, stats = build_eti(org_db, org_reference, paper_config)
        assert stats.reference_tuples == 3
        assert stats.eti_rows == len(eti)
        assert stats.eti_rows > 0
        assert stats.pre_eti_rows >= stats.eti_rows

    def test_every_reference_token_is_indexed(
        self, org_db, org_reference, paper_config
    ):
        """Completeness: every signature coordinate of every reference tuple
        must carry that tuple's tid in its ETI tid-list."""
        hasher = MinHasher(
            paper_config.q, paper_config.signature_size, paper_config.seed
        )
        eti, _ = build_eti(org_db, org_reference, paper_config, hasher=hasher)
        for tid, values in org_reference.scan():
            tokens = TupleTokens.from_values(values)
            for column in range(tokens.num_columns):
                for token in tokens.column_tokens(column):
                    for entry in signature_entries(token, hasher, paper_config):
                        record = eti.lookup(entry.gram, entry.coordinate, column)
                        assert record is not None
                        assert tid in record.tid_list

    def test_frequencies_count_tid_list(self, org_db, org_reference, paper_config):
        eti, _ = build_eti(org_db, org_reference, paper_config)
        for row in eti.relation.scan():
            qgram, coordinate, column, frequency, tid_list = row
            assert frequency == len(tid_list)

    def test_shared_tokens_share_tid_lists(self, org_db, org_reference, paper_config):
        """'seattle' appears in all three tuples: its q-grams list all tids."""
        hasher = MinHasher(
            paper_config.q, paper_config.signature_size, paper_config.seed
        )
        eti, _ = build_eti(org_db, org_reference, paper_config, hasher=hasher)
        for entry in signature_entries("seattle", hasher, paper_config):
            record = eti.lookup(entry.gram, entry.coordinate, 1)
            assert sorted(record.tid_list) == [1, 2, 3]

    def test_stop_qgrams_get_null_tid_lists(self, org_db, org_reference):
        config = MatchConfig(
            q=3,
            signature_size=2,
            scheme=SignatureScheme.QGRAMS,
            stop_qgram_threshold=2,
        )
        eti, stats = build_eti(org_db, org_reference, config)
        assert stats.stop_qgrams > 0
        # 'sea'/'ttl' style grams appear in 3 tuples > threshold 2.
        null_rows = [
            row for row in eti.relation.scan() if row[4] is None
        ]
        assert len(null_rows) == stats.stop_qgrams
        for row in null_rows:
            assert row[3] > 2  # frequency preserved even when list is NULL

    def test_pre_eti_dropped_by_default(self, org_db, org_reference, paper_config):
        build_eti(org_db, org_reference, paper_config)
        assert "eti_pre" not in org_db

    def test_pre_eti_kept_on_request(self, org_db, org_reference, paper_config):
        builder = EtiBuilder(org_db, paper_config)
        builder.build(org_reference, eti_name="eti2", keep_pre_eti=True)
        assert "eti2_pre" in org_db

    def test_qt_scheme_indexes_whole_tokens(self, org_db, org_reference):
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS_PLUS_TOKEN
        )
        eti, _ = build_eti(org_db, org_reference, config)
        record = eti.lookup("boeing", TOKEN_COORDINATE, 0)
        assert record is not None
        assert record.tid_list == (1,)

    def test_tid_entries_accounting(self, org_db, org_reference, paper_config):
        eti, stats = build_eti(org_db, org_reference, paper_config)
        postings = sum(
            len(row[4]) for row in eti.relation.scan() if row[4] is not None
        )
        assert stats.tid_entries == postings

    def test_tid_lists_deduplicated(self, org_db):
        """A tuple whose same-column tokens share an indexed gram appears
        once in that gram's tid-list."""
        from repro.core.reference import ReferenceTable

        reference = ReferenceTable(org_db, "sharing", ["name"])
        # Tokens 'abcd' and 'abcde' both contribute 4-gram 'abcd' at
        # coordinate 1 under the FULL scheme.
        reference.load([(1, ("abcd abcde",))])
        config = MatchConfig(q=4, scheme=SignatureScheme.FULL_QGRAMS)
        eti, _ = build_eti(org_db, reference, config, eti_name="eti_sharing")
        record = eti.lookup("abcd", 1, 0)
        assert record is not None
        assert record.tid_list == (1,)
        assert record.frequency == 1

    def test_external_sort_path(self, org_db, org_reference, paper_config):
        """A tiny sort memory limit forces spill runs; result unchanged."""
        baseline, _ = build_eti(org_db, org_reference, paper_config, eti_name="eti_a")
        builder = EtiBuilder(org_db, paper_config, sort_memory_limit=2)
        spilled, stats = builder.build(org_reference, eti_name="eti_b")
        assert stats.sort.runs > 1
        assert list(baseline.relation.scan()) == list(spilled.relation.scan())


class TestEtiIndex:
    def test_lookup_miss_returns_none(self, org_eti):
        assert org_eti.lookup("zzz", 1, 0) is None

    def test_lookup_counter(self, org_eti):
        org_eti.reset_lookup_counter()
        org_eti.lookup("zzz", 1, 0)
        org_eti.lookup("zzz", 2, 0)
        assert org_eti.lookups == 2

    def test_entry_fields(self, org_db, org_reference):
        config = MatchConfig(
            q=3, signature_size=2, scheme=SignatureScheme.QGRAMS_PLUS_TOKEN
        )
        eti, _ = build_eti(org_db, org_reference, config)
        record = eti.lookup("seattle", TOKEN_COORDINATE, 1)
        assert record.qgram == "seattle"
        assert record.coordinate == TOKEN_COORDINATE
        assert record.column == 1
        assert record.frequency == 3
        assert not record.is_stop_qgram

    def test_stats(self, org_eti):
        stats = org_eti.stats()
        assert stats["rows"] == len(org_eti)
        assert stats["index_entries"] == stats["rows"]
        assert stats["index_height"] >= 1
        assert stats["pages"] >= 1

    def test_clustered_index_present(self, org_eti):
        assert ETI_INDEX in org_eti.relation.index_names()
