"""Chaos suite: the degraded-mode contract under seeded fault schedules.

The invariant (the tentpole of the resilience layer): for ANY injected
fault schedule, every query's outcome is exactly one of

1. bit-identical to the clean run (faults absorbed by retry/re-read),
2. flagged ``stats.degraded`` with a recorded reason, or
3. a typed :class:`~repro.db.errors.DatabaseError` (surfaced per-item
   when the batch runs with ``fail_fast=False``)

— never a silently wrong answer.  The sweep below replays the same
workload over many injector seeds; each seed produces a different fault
schedule from the same configuration, so the sweep covers transient read
errors, returned-buffer corruption, and their interleavings.

A separate deadline test drives the latency injector and checks the
paper-motivated online bound: a budgeted query returns within 2x its
requested deadline, flagged degraded, instead of stalling.
"""

import time

import pytest

from repro.core.cache import MatcherCaches
from repro.core.config import MatchConfig
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.resilience import (
    DEGRADED_DEADLINE,
    QueryBudget,
    ResiliencePolicy,
)
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.db.errors import DatabaseError
from repro.db.faults import FaultConfig, FaultInjector
from repro.db.pager import BufferPool, InMemoryStorage, RetryPolicy
from repro.eti.builder import build_eti

pytestmark = pytest.mark.chaos

# Backoff with zero sleep: retry *logic* is under test, not wall clock.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)

SWEEP_SEEDS = range(12)

SWEEP_FAULTS = FaultConfig(
    read_error_rate=0.02,
    read_corruption_rate=0.02,
)


def build_faulted_world(
    num_reference=120, num_inputs=25, pool_capacity=48, config=None
):
    """A reference + ETI over fault-injectable storage (built clean).

    The pool is deliberately small so queries keep going back to physical
    storage, where the injector lives; caches are disabled on matchers for
    the same reason.
    """
    injector = FaultInjector(InMemoryStorage(), seed=0)
    pool = BufferPool(injector, capacity=pool_capacity, retry_policy=FAST_RETRY)
    db = Database(pool)
    customers = generate_customers(num_reference, seed=21, unique=True)
    rows = [(c.tid, c.values) for c in customers]
    reference = ReferenceTable(db, "reference", list(CUSTOMER_COLUMNS))
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    if config is None:
        config = MatchConfig(q=4, signature_size=2)
    eti, _ = build_eti(db, reference, config)
    dataset = make_dataset(rows, DatasetSpec.preset("D2"), num_inputs, seed=22)
    batch = [dirty.values for dirty in dataset.inputs]
    return db, injector, pool, reference, weights, config, eti, batch


def uncached_matcher(reference, weights, config, eti, policy=None):
    return FuzzyMatcher(
        reference,
        weights,
        config,
        eti,
        caches=MatcherCaches.disabled(),
        resilience=policy,
    )


@pytest.fixture(scope="module")
def chaos_world():
    world = build_faulted_world()
    yield world
    world[0].close()


class TestChaosSweep:
    def test_every_outcome_is_accounted_for(self, chaos_world):
        (db, injector, pool, reference, weights, config, eti, batch) = chaos_world
        clean = uncached_matcher(reference, weights, config, eti)
        expected = [
            [(m.tid, m.similarity, m.values) for m in clean.match(v, k=2).matches]
            for v in batch
        ]

        outcomes = {"identical": 0, "degraded": 0, "error": 0}
        faults_fired = 0
        for seed in SWEEP_SEEDS:
            pool.drop_cache()
            injector.stats.reset()
            injector.arm(seed=seed, config=SWEEP_FAULTS)
            try:
                matcher = uncached_matcher(
                    reference, weights, config, eti, ResiliencePolicy()
                )
                results = matcher.match_many(batch, k=2, fail_fast=False)
            finally:
                injector.disarm()
            faults_fired += injector.stats.total

            for query_no, (result, clean_matches) in enumerate(
                zip(results, expected)
            ):
                if result.failed:
                    # Typed error, surfaced per-item: allowed outcome 3.
                    assert result.error_type, (seed, query_no)
                    outcomes["error"] += 1
                elif result.stats.degraded:
                    # Flagged best-effort answer: allowed outcome 2, and
                    # the reason must be recorded.
                    assert result.stats.degraded_reason, (seed, query_no)
                    outcomes["degraded"] += 1
                else:
                    # Claimed exact: must be bit-identical to the clean run.
                    got = [
                        (m.tid, m.similarity, m.values) for m in result.matches
                    ]
                    assert got == clean_matches, (seed, query_no)
                    outcomes["identical"] += 1

        # The sweep must actually have exercised the fault paths, and the
        # retry layer must have absorbed at least some faults invisibly.
        assert faults_fired > 0
        assert outcomes["identical"] > 0
        assert sum(outcomes.values()) == len(SWEEP_SEEDS) * len(batch)

    def test_sweep_is_reproducible_per_seed(self, chaos_world):
        (db, injector, pool, reference, weights, config, eti, batch) = chaos_world

        def run(seed):
            pool.drop_cache()
            injector.stats.reset()
            injector.arm(seed=seed, config=SWEEP_FAULTS)
            try:
                matcher = uncached_matcher(
                    reference, weights, config, eti, ResiliencePolicy()
                )
                results = matcher.match_many(batch[:10], k=2, fail_fast=False)
            finally:
                injector.disarm()
            return [
                (
                    r.error_type,
                    r.stats.degraded_reason,
                    [(m.tid, m.similarity) for m in r.matches],
                )
                for r in results
            ], injector.stats.total

        assert run(7) == run(7)

    def test_clean_run_after_sweep_is_exact(self, chaos_world):
        """Disarming restores bit-exact behaviour: no hidden state damage.

        (Read-only chaos: the injector never tears a page during the
        match-only phase, so the stored relations stay intact.)
        """
        (db, injector, pool, reference, weights, config, eti, batch) = chaos_world
        clean = uncached_matcher(reference, weights, config, eti)
        expected = [
            [(m.tid, m.similarity) for m in clean.match(v, k=2).matches]
            for v in batch[:10]
        ]
        injector.arm(seed=3, config=SWEEP_FAULTS)
        matcher = uncached_matcher(
            reference, weights, config, eti, ResiliencePolicy()
        )
        matcher.match_many(batch[:10], k=2, fail_fast=False)
        injector.disarm()
        pool.drop_cache()
        after = [
            [(m.tid, m.similarity) for m in clean.match(v, k=2).matches]
            for v in batch[:10]
        ]
        assert after == expected


class TestDeadline:
    def test_osc_returns_within_twice_the_deadline(self):
        """Latency-injected storage: the budget degrades instead of stalling.

        The capacity-1 pool forces every page access physical, and this
        particular query does ~13 physical reads — enough granularity that
        the per-read latency is small next to the deadline, which is what
        the 2x bound assumes (the overshoot is one index entry plus one
        candidate verification, a handful of reads).
        """
        (db, injector, pool, reference, weights, config, eti, batch) = (
            build_faulted_world(num_reference=800, num_inputs=6, pool_capacity=1)
        )
        query = batch[4]
        try:
            deadline = 0.15
            policy = ResiliencePolicy(budget=QueryBudget(deadline=deadline))
            matcher = uncached_matcher(reference, weights, config, eti, policy)
            injector.arm(
                seed=1,
                config=FaultConfig(latency_rate=1.0, latency_seconds=0.025),
            )
            try:
                pool.drop_cache()
                started = time.perf_counter()
                result = matcher.match(query, k=1, strategy="osc")
                elapsed = time.perf_counter() - started
            finally:
                injector.disarm()
            assert result.stats.degraded
            assert result.stats.degraded_reason == DEGRADED_DEADLINE
            assert elapsed <= 2 * deadline, f"took {elapsed:.3f}s"
            # Without the budget the same query stalls well past the
            # deadline on this storage (sanity check on the setup).
            unbudgeted = uncached_matcher(reference, weights, config, eti)
            injector.arm(seed=1)
            try:
                pool.drop_cache()
                started = time.perf_counter()
                unbudgeted.match(query, k=1, strategy="osc")
                slow_elapsed = time.perf_counter() - started
            finally:
                injector.disarm()
            assert slow_elapsed > deadline
        finally:
            db.close()

    def test_page_fetch_budget_bounds_physical_reads(self):
        (db, injector, pool, reference, weights, config, eti, batch) = (
            build_faulted_world(pool_capacity=4)
        )
        try:
            policy = ResiliencePolicy(budget=QueryBudget(max_page_fetches=1))
            matcher = uncached_matcher(reference, weights, config, eti, policy)
            pool.drop_cache()
            before = pool.stats.physical_reads
            result = matcher.match(batch[0], k=1, strategy="osc")
            fetched = pool.stats.physical_reads - before
            assert result.stats.degraded
            # The cap is checked between index entries, so the overshoot
            # is bounded by one entry's worth of reads, not unbounded.
            assert fetched <= 1 + 10
        finally:
            db.close()
