"""Serving-layer chaos: overload storms and SIGTERM lifecycle.

Two families, both marked ``chaos`` (they run in the tier-1 suite and
as the CI serve job's seed sweep):

- **Overload trichotomy** — an in-process server is hit with ~10x its
  service capacity (worker execution is artificially slowed, clients
  run closed-loop with no think time).  The invariant: every single
  response is completed, degraded-with-reason, or shed-with-typed-reason
  — never an error, never a hang, never a wrong answer — and queue
  memory stays bounded by the configured capacity.
- **SIGTERM lifecycle** — ``repro serve`` runs as a real subprocess.
  SIGTERM while serving must drain and exit 0 leaving an fsck-clean,
  checkpointed warehouse; SIGTERM during the load phase must exit
  non-zero without leaving a torn snapshot behind.
"""

from __future__ import annotations

import csv
import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.core.batch import BatchMatcher
from repro.core.matcher import FuzzyMatcher
from repro.db.fsck import check_database
from repro.serve.client import ServeClient
from repro.serve.protocol import PRIORITY_BULK, PRIORITY_INTERACTIVE, SHED_REASONS
from repro.serve.server import MatchServer, ServeConfig

from tests.test_cache import build_error_injected_world

REPO_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# Overload trichotomy (in-process)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def overload_world():
    db, reference, weights, config, eti, batch = build_error_injected_world(
        num_reference=150, num_inputs=30, repeats=1
    )
    matcher = FuzzyMatcher(reference, weights, config, eti)
    inputs = sorted(set(batch))
    expected = {}
    for values in inputs:
        result = matcher.match(values)
        expected[values] = [
            {"tid": m.tid, "similarity": m.similarity, "values": list(m.values)}
            for m in result.matches
        ]
    yield reference, weights, config, eti, inputs, expected
    db.close()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_overload_trichotomy_under_10x_load(overload_world, seed):
    reference, weights, config, eti, inputs, expected = overload_world
    serve_config = ServeConfig(
        workers=2,
        queue_capacity=8,
        default_deadline_ms=120.0,
        degrade_p95_s=0.03,
        recover_p95_s=0.005,
        shed_p95_s=0.06,
        stage_cooldown_s=0.05,
        watchdog_interval_s=0.01,
    )
    # ~25ms of artificial service time per request caps capacity at
    # ~80 req/s; 16 closed-loop clients with zero think time offer far
    # more than 10x that.
    engine = BatchMatcher(reference, weights, config, eti, jobs=2)
    server = MatchServer(
        engine=engine,
        config=serve_config,
        before_execute=lambda item: time.sleep(0.025),
    )
    responses = []
    responses_lock = threading.Lock()
    try:
        host, port = server.start()

        def client_loop(worker_seed):
            rng = random.Random(worker_seed)
            local = []
            with ServeClient(host, port) as client:
                for index in range(12):
                    values = inputs[rng.randrange(len(inputs))]
                    local.append(
                        (
                            values,
                            client.match(
                                values,
                                request_id=f"c{worker_seed}-{index}",
                                deadline_ms=rng.choice([40.0, 120.0, 400.0]),
                                priority=rng.choice(
                                    [PRIORITY_INTERACTIVE, PRIORITY_BULK]
                                ),
                            ),
                        )
                    )
            with responses_lock:
                responses.extend(local)

        threads = [
            threading.Thread(target=client_loop, args=(seed * 1000 + i,))
            for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            assert not thread.is_alive(), "client thread hung"
    finally:
        server.shutdown(drain_budget_s=5.0)
        engine.close()

    assert len(responses) == 16 * 12
    outcomes = {"completed": 0, "degraded": 0, "shed": 0}
    for values, response in responses:
        outcome = response["outcome"]
        # The trichotomy: nothing times out, crashes, or errors.
        assert outcome in outcomes, response
        outcomes[outcome] += 1
        if outcome == "completed":
            # A completed answer is bit-identical to the offline matcher.
            assert response["matches"] == expected[values]
        elif outcome == "degraded":
            assert response.get("degraded_reason"), response
        else:
            assert response["shed_reason"] in SHED_REASONS, response
    # 10x overload must actually refuse or degrade work, and the bounded
    # queue must never grow past its capacity (memory stays bounded).
    assert outcomes["shed"] + outcomes["degraded"] > 0
    assert server.queue.max_depth <= serve_config.queue_capacity
    assert server.lifecycle.state == "stopped"


# ----------------------------------------------------------------------
# SIGTERM lifecycle (subprocess)
# ----------------------------------------------------------------------


def generate_reference(path, count):
    from repro.cli import main as cli_main

    rc = cli_main(["generate", "--count", str(count), "--out", str(path)])
    assert rc == 0


def serve_command(db_path, reference, port_file, extra=()):
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--db",
        str(db_path),
        "--reference",
        str(reference),
        "--port-file",
        str(port_file),
        "--workers",
        "2",
        *extra,
    ]


def spawn_serve(tmp_path, db_path, reference, port_file, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        serve_command(db_path, reference, port_file, extra),
        cwd=tmp_path,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )


def read_port_file(port_file):
    host, port = port_file.read_text().split()
    return host, int(port)


@pytest.mark.chaos
def test_sigterm_mid_burst_drains_and_checkpoints(tmp_path):
    reference = tmp_path / "ref.csv"
    generate_reference(reference, 250)
    with open(reference, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)
        rows = [tuple(cell or None for cell in record[1:]) for record in reader]

    db_path = tmp_path / "wh.db"
    port_file = tmp_path / "port.txt"
    proc = spawn_serve(tmp_path, db_path, reference, port_file)
    try:
        assert wait_until(port_file.exists, timeout=30)
        host, port = read_port_file(port_file)

        def serving():
            try:
                with ServeClient(host, port, timeout_s=2.0) as client:
                    return client.ping()["state"] == "serving"
            except (ConnectionError, OSError):
                return False

        assert wait_until(serving, timeout=60)

        # A burst of in-flight work, then SIGTERM mid-burst.
        stop = threading.Event()

        def burst():
            rng = random.Random(99)
            try:
                with ServeClient(host, port, timeout_s=5.0) as client:
                    while not stop.is_set():
                        client.match(rows[rng.randrange(len(rows))])
            except (ConnectionError, OSError):
                pass  # the drain closing the socket ends the burst

        burster = threading.Thread(target=burst)
        burster.start()
        time.sleep(0.3)
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        stop.set()
        burster.join(10)
        assert rc == 0, proc.stderr.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10)

    # The drain checkpointed: warehouse fsck-clean, WAL tail empty.
    report = check_database(str(db_path))
    assert report.exit_code == 0, "\n".join(report.lines())


@pytest.mark.chaos
def test_sigterm_during_load_exits_nonzero_without_torn_snapshot(tmp_path):
    reference = tmp_path / "ref.csv"
    # Big enough that the ETI build dominates startup, so the signal
    # reliably lands in the load phase (the port file is written first).
    generate_reference(reference, 4000)
    db_path = tmp_path / "wh.db"
    port_file = tmp_path / "port.txt"
    proc = spawn_serve(tmp_path, db_path, reference, port_file)
    try:
        assert wait_until(port_file.exists, timeout=30)
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10)

    meta = str(db_path) + ".meta.json"
    if rc == 0:
        # Unlikely race: the build finished before the signal landed and
        # the server drained normally.  The durability claim still holds.
        assert os.path.exists(meta)
        assert check_database(str(db_path)).exit_code == 0
        return
    assert rc == 1
    # Killed mid-load: either nothing was published yet, or the atomic
    # snapshot completed — never a torn half-written warehouse.
    if os.path.exists(meta):
        assert check_database(str(db_path)).exit_code == 0
