"""Cross-module integration: full pipelines at moderate scale."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import build_eti
from repro.eval.metrics import accuracy


@pytest.fixture(scope="module")
def pipeline():
    """A 800-tuple warehouse with ETI, weights, and matcher."""
    db = Database.in_memory()
    customers = generate_customers(800, seed=99, unique=True)
    reference = ReferenceTable(db, "customer", list(CUSTOMER_COLUMNS))
    reference.load((c.tid, c.values) for c in customers)
    config = MatchConfig()
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    eti, build_stats = build_eti(db, reference, config)
    matcher = FuzzyMatcher(reference, weights, config, eti)
    return {
        "db": db,
        "customers": customers,
        "reference": reference,
        "weights": weights,
        "config": config,
        "eti": eti,
        "build_stats": build_stats,
        "matcher": matcher,
    }


class TestEndToEndPipeline:
    def test_every_clean_tuple_matches_itself(self, pipeline):
        for customer in pipeline["customers"][:100]:
            result = pipeline["matcher"].match(customer.values)
            assert result.best is not None
            assert result.best.similarity == pytest.approx(1.0)
            assert pipeline["reference"].fetch(result.best.tid) == customer.values

    def test_d2_accuracy_at_scale(self, pipeline):
        dataset = make_dataset(
            [(c.tid, c.values) for c in pipeline["customers"]],
            DatasetSpec.preset("D2"),
            120,
            seed=17,
        )
        predictions = []
        for dirty in dataset.inputs:
            result = pipeline["matcher"].match(dirty.values)
            predictions.append(
                (result.best.tid if result.best else None, dirty.target_tid)
            )
        assert accuracy(predictions) > 0.85

    def test_strategies_agree_on_dirty_batch(self, pipeline):
        dataset = make_dataset(
            [(c.tid, c.values) for c in pipeline["customers"]],
            DatasetSpec.preset("D3"),
            40,
            seed=23,
        )
        disagreements = 0
        for dirty in dataset.inputs:
            naive = pipeline["matcher"].match(dirty.values, strategy="naive")
            osc = pipeline["matcher"].match(dirty.values, strategy="osc")
            if naive.best is None:
                continue
            if osc.best is None or abs(
                osc.best.similarity - naive.best.similarity
            ) > 1e-9:
                disagreements += 1
        assert disagreements <= 3

    def test_eti_size_accounting(self, pipeline):
        stats = pipeline["build_stats"]
        assert stats.reference_tuples == 800
        eti_stats = pipeline["eti"].stats()
        assert eti_stats["rows"] == stats.eti_rows
        assert eti_stats["index_entries"] == stats.eti_rows
        # ETI rows are bounded by pre-ETI rows (grouping only merges).
        assert stats.eti_rows <= stats.pre_eti_rows

    def test_osc_is_cheaper_than_basic(self, pipeline):
        dataset = make_dataset(
            [(c.tid, c.values) for c in pipeline["customers"]],
            DatasetSpec.preset("D2"),
            40,
            seed=31,
        )
        basic_fetches = osc_fetches = 0
        for dirty in dataset.inputs:
            basic_fetches += pipeline["matcher"].match(
                dirty.values, strategy="basic"
            ).stats.candidates_fetched
            osc_fetches += pipeline["matcher"].match(
                dirty.values, strategy="osc"
            ).stats.candidates_fetched
        assert osc_fetches < basic_fetches

    def test_k3_returns_superset_of_k1(self, pipeline):
        dirty = ("jamse smith", "seattle", "wa", "10023")
        top1 = pipeline["matcher"].match(dirty, k=1)
        top3 = pipeline["matcher"].match(dirty, k=3)
        if top1.best is not None:
            assert top1.best.tid in [m.tid for m in top3.matches]
            assert len(top3.matches) >= len(top1.matches)

    def test_buffer_pool_served_the_workload(self, pipeline):
        stats = pipeline["db"].pool.stats
        assert stats.logical_accesses > 0
        # Everything fits in the default pool: high hit rate expected.
        assert stats.hit_rate > 0.9


name_strategy = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz ", min_size=1, max_size=25
).filter(lambda s: s.strip())


class TestPropertyBasedMatcher:
    @settings(max_examples=30, deadline=None)
    @given(name=name_strategy, city=name_strategy)
    def test_arbitrary_inputs_never_crash(self, pipeline, name, city):
        result = pipeline["matcher"].match((name, city, "wa", "99999"))
        for match in result.matches:
            assert 0.0 <= match.similarity <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(index=st.integers(0, 799))
    def test_self_match_property(self, pipeline, index):
        customer = pipeline["customers"][index]
        result = pipeline["matcher"].match(customer.values)
        assert result.best is not None
        assert result.best.similarity == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(index=st.integers(0, 799), k=st.integers(1, 5))
    def test_matches_sorted_and_bounded(self, pipeline, index, k):
        customer = pipeline["customers"][index]
        result = pipeline["matcher"].match(customer.values, k=k)
        similarities = [m.similarity for m in result.matches]
        assert len(result.matches) <= k
        assert similarities == sorted(similarities, reverse=True)
