"""ETI-resident token weights (§4.3.1's frequencies-in-the-ETI option)."""

import pytest

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.eti.builder import build_eti
from repro.eti.weights import EtiWeightProvider


@pytest.fixture()
def qt_config():
    return MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS_PLUS_TOKEN)


@pytest.fixture()
def qt_eti(org_db, org_reference, qt_config):
    eti, _ = build_eti(org_db, org_reference, qt_config)
    return eti


class TestEtiWeightProvider:
    def test_matches_frequency_cache(self, qt_eti, org_reference, org_weights):
        provider = EtiWeightProvider(
            qt_eti, len(org_reference), org_reference.num_columns
        )
        for token, column in [
            ("boeing", 0),
            ("corporation", 0),
            ("seattle", 1),
            ("wa", 2),
            ("98004", 3),
        ]:
            assert provider.frequency(token, column) == org_weights.frequency(
                token, column
            )
            assert provider.weight(token, column) == pytest.approx(
                org_weights.weight(token, column)
            )

    def test_unseen_token_gets_column_average(self, qt_eti, org_reference, org_weights):
        provider = EtiWeightProvider(
            qt_eti, len(org_reference), org_reference.num_columns
        )
        assert provider.weight("beoing", 0) == pytest.approx(
            org_weights.weight("beoing", 0)
        )

    def test_lookups_counted(self, qt_eti, org_reference):
        provider = EtiWeightProvider(
            qt_eti, len(org_reference), org_reference.num_columns
        )
        before = qt_eti.lookups
        provider.frequency("boeing", 0)
        assert qt_eti.lookups == before + 1

    def test_rejects_qgram_only_eti(self, org_db, org_reference):
        config = MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)
        eti, _ = build_eti(org_db, org_reference, config, eti_name="eti_q")
        with pytest.raises(ValueError, match="Q\\+T"):
            EtiWeightProvider(eti, len(org_reference), org_reference.num_columns)

    def test_rejects_empty_reference(self, qt_eti):
        with pytest.raises(ValueError, match="non-empty"):
            EtiWeightProvider(qt_eti, 0, 4)

    def test_matcher_runs_on_eti_weights(self, qt_eti, org_reference, qt_config):
        """End-to-end: a matcher with no in-memory frequency cache."""
        provider = EtiWeightProvider(
            qt_eti, len(org_reference), org_reference.num_columns
        )
        matcher = FuzzyMatcher(org_reference, provider, qt_config, qt_eti)
        result = matcher.match(("Beoing Company", "Seattle", "WA", "98004"))
        assert result.best is not None
        assert result.best.tid == 1

    def test_same_ranking_as_cache(self, qt_eti, org_reference, org_weights, qt_config):
        provider = EtiWeightProvider(
            qt_eti, len(org_reference), org_reference.num_columns
        )
        cache_matcher = FuzzyMatcher(org_reference, org_weights, qt_config, qt_eti)
        eti_matcher = FuzzyMatcher(org_reference, provider, qt_config, qt_eti)
        for values in [
            ("Beoing Company", "Seattle", "WA", "98004"),
            ("Boeing Corporation", "Seattle", "WA", "98004"),
            ("Companions", "Seattle", "WA", "98024"),
        ]:
            a = cache_matcher.match(values).best
            b = eti_matcher.match(values).best
            assert a.tid == b.tid
            assert a.similarity == pytest.approx(b.similarity)
