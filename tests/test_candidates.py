"""Score table: accumulation, admission optimization, top-k."""

from repro.core.candidates import ScoreTable


class TestScoreAccumulation:
    def test_single_list(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1, 2, 3], weight=0.5, remaining_weight=10.0)
        assert table.score(1) == 0.5
        assert table.score(99) == 0.0

    def test_scores_accumulate(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1, 2], weight=0.5, remaining_weight=10.0)
        table.add_tid_list([1], weight=0.25, remaining_weight=9.5)
        assert table.score(1) == 0.75
        assert table.score(2) == 0.5

    def test_len_counts_tids(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1, 2, 3], weight=1.0, remaining_weight=5.0)
        assert len(table) == 3

    def test_stats_processed(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1, 2], weight=1.0, remaining_weight=5.0)
        table.add_tid_list([1, 3], weight=1.0, remaining_weight=4.0)
        assert table.stats.tids_processed == 4
        assert table.stats.tids_admitted == 3


class TestAdmissionOptimization:
    def test_new_tids_rejected_below_threshold(self):
        """Figure 3 step 9b: new tids only while RemWt >= threshold."""
        table = ScoreTable(threshold=2.0)
        table.add_tid_list([1], weight=1.0, remaining_weight=3.0)  # admitted
        table.add_tid_list([2], weight=1.0, remaining_weight=1.0)  # rejected
        assert table.score(1) == 1.0
        assert table.score(2) == 0.0
        assert table.stats.tids_rejected == 1

    def test_existing_tids_always_updated(self):
        table = ScoreTable(threshold=2.0)
        table.add_tid_list([1], weight=1.0, remaining_weight=3.0)
        # Below the admission bar, but tid 1 is already tracked.
        table.add_tid_list([1], weight=1.0, remaining_weight=1.0)
        assert table.score(1) == 2.0

    def test_zero_threshold_admits_everything(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1], weight=0.1, remaining_weight=0.0)
        assert table.score(1) == 0.1


class TestTopAndCandidates:
    def make_table(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1], weight=3.0, remaining_weight=10.0)
        table.add_tid_list([2], weight=2.0, remaining_weight=7.0)
        table.add_tid_list([3], weight=1.0, remaining_weight=5.0)
        return table

    def test_top_orders_by_score(self):
        assert self.make_table().top(2) == [(1, 3.0), (2, 2.0)]

    def test_top_more_than_present(self):
        assert len(self.make_table().top(10)) == 3

    def test_top_tie_breaks_on_tid(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([7, 3], weight=1.0, remaining_weight=5.0)
        assert table.top(1) == [(3, 1.0)]

    def test_candidates_filtered_by_floor(self):
        table = self.make_table()
        assert [tid for tid, _ in table.candidates(2.0)] == [1, 2]

    def test_candidates_sorted_descending(self):
        assert [tid for tid, _ in self.make_table().candidates(0.0)] == [1, 2, 3]

    def test_negative_floor_returns_all(self):
        assert len(self.make_table().candidates(-5.0)) == 3


class TestTopCache:
    def make_table(self):
        table = ScoreTable(threshold=0.0)
        table.add_tid_list([1], weight=3.0, remaining_weight=10.0)
        table.add_tid_list([2], weight=2.0, remaining_weight=7.0)
        table.add_tid_list([3], weight=1.0, remaining_weight=5.0)
        return table

    def test_repeat_calls_hit_cache(self):
        table = self.make_table()
        first = table.top(2)
        assert table.stats.top_cache_hits == 0
        second = table.top(2)
        assert second == first
        assert table.stats.top_cache_hits == 1

    def test_mutation_invalidates(self):
        table = self.make_table()
        assert table.top(2) == [(1, 3.0), (2, 2.0)]
        table.add_tid_list([3], weight=4.0, remaining_weight=5.0)
        assert table.top(2) == [(3, 5.0), (1, 3.0)]
        assert table.stats.top_cache_hits == 0

    def test_rejected_only_list_keeps_cache_valid(self):
        # Every tid below the admission bound: nothing changed, so the
        # cached ranking stays live.
        table = ScoreTable(threshold=5.0)
        table.add_tid_list([1, 2], weight=6.0, remaining_weight=9.0)
        first = table.top(2)
        table.add_tid_list([8, 9], weight=0.5, remaining_weight=1.0)
        assert table.stats.tids_rejected == 2
        assert table.top(2) == first
        assert table.stats.top_cache_hits == 1

    def test_different_count_recomputes(self):
        table = self.make_table()
        table.top(2)
        assert table.top(3) == [(1, 3.0), (2, 2.0), (3, 1.0)]
        assert table.stats.top_cache_hits == 0
        table.top(3)
        assert table.stats.top_cache_hits == 1

    def test_returned_list_is_a_private_copy(self):
        table = self.make_table()
        first = table.top(2)
        first.append((99, 0.0))
        assert table.top(2) == [(1, 3.0), (2, 2.0)]
