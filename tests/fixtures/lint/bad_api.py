"""Fixture: ``__all__`` inconsistencies and a missing docstring."""

__all__ = ["missing_name", "_private"]


def helper() -> int:
    return 3
