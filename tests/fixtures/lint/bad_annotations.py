"""Fixture: signatures missing annotations under the strict-typing gate."""
# reprolint: path=repro/fixture_mod.py


def scale(value, factor=2):
    """BAD: no parameter or return annotations."""
    return value * factor
