"""Fixture: a lock-guarded attribute read outside its lock."""

import threading


class Counter:
    """Owns ``_total``, which is only ever mutated under ``_lock``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def bump(self):
        """Guarded mutation: establishes ``_total`` as lock-guarded."""
        with self._lock:
            self._total += 1

    def peek(self):
        """BAD: reads the guarded attribute without taking the lock."""
        return self._total
