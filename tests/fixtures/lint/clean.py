"""Fixture: a module every reprolint rule passes, even db-scoped."""
# reprolint: path=repro/db/clean_fixture.py

from repro.db.errors import RecordNotFoundError

__all__ = ["find"]


def find(table: dict[str, int], key: str) -> int:
    """Typed lookup raising the taxonomy's not-found error."""
    if key not in table:
        raise RecordNotFoundError(f"{key!r} is not stored")
    return table[key]
