"""Known-bad fixture for the resource-leak rule.

Three shapes: a socket that is never closed or handed off, a socket
with a risky call before the hand-off and no covering try, and a
semaphore token acquired with no release anywhere in the function.
"""

import socket
import threading


def configure() -> None:
    """A call that can raise while a resource is held."""


def leaky() -> None:
    """BAD: the socket is never closed and never escapes."""
    sock = socket.socket()
    sock.sendall(b"ping")


def risky() -> socket.socket:
    """BAD: ``configure()`` can raise before the socket is handed off."""
    sock = socket.socket()
    configure()
    return sock


def careful() -> socket.socket:
    """GOOD: the risky prologue is covered by a closing handler."""
    sock = socket.socket()
    try:
        configure()
    except OSError:
        sock.close()
        raise
    return sock


class Pool:
    """Counting-semaphore consumer that forgets to give tokens back."""

    def __init__(self) -> None:
        self._tokens = threading.Semaphore(4)

    def take(self) -> None:
        """BAD: acquires a token and never releases it."""
        self._tokens.acquire()

    def borrow(self) -> None:
        """GOOD: token released on the same receiver."""
        self._tokens.acquire()
        try:
            configure()
        finally:
            self._tokens.release()
