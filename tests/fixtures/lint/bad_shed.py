"""Known-bad fixture for the shed-exhaustiveness rule."""
# reprolint: path=repro/serve/bad_shed.py

SHED_OK = "queue_full"
SHED_GHOST = "ghost_reason"

#: The documented vocabulary: one reason used, one never used anywhere.
SHED_REASONS = (SHED_OK, SHED_GHOST)

__all__ = ["SheddedError", "refuse_documented", "refuse_undocumented"]


class SheddedError(Exception):
    """Stub of the protocol's typed refusal."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


def refuse_documented() -> None:
    """GOOD: sheds with a reason drawn from SHED_REASONS."""
    raise SheddedError(SHED_OK, "queue at capacity")


def refuse_undocumented() -> None:
    """BAD: sheds with a literal the protocol never documented."""
    raise SheddedError("mystery_reason", "clients cannot branch on this")
