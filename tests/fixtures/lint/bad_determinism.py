"""Fixture: nondeterminism on the match path (fms-scoped module)."""
# reprolint: path=repro/core/fms_fixture.py

import random
import time


def jitter() -> float:
    """BAD: unseeded RNG, wall clock, and raw set iteration."""
    noise = random.random()
    started = time.time()
    total = 0.0
    for gram in {"ab", "bc"}:
        total += noise + started + len(gram)
    return total
