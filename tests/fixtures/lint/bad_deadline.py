"""Known-bad fixture for the deadline-propagation rule.

``drain`` accepts a deadline but calls ``flush`` — which accepts a
timeout — with a bare constant, silently unbounding the request.  The
compliant ``drain_ok`` forwards a derived value and must not fire.
"""


def flush(timeout: float) -> None:
    """Pretend to flush within ``timeout`` seconds."""
    del timeout


def drain(deadline: float) -> None:
    """BAD: drops ``deadline`` on the floor at the call boundary."""
    del deadline
    flush(2.0)


def drain_ok(deadline: float) -> None:
    """GOOD: forwards a value derived from ``deadline``."""
    remaining = deadline - 1.0
    flush(remaining)
