"""Known-bad fixture for the blocking-under-lock rule.

Three shapes: a direct blocking method call under the lock, a direct
blocking module call under the lock, and a call whose *callee*
transitively reaches blocking I/O through the call graph.
"""

import os
import threading
import time


class Flusher:
    """Holds a lock while doing things it must not do."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sock = None
        self._fd = 0

    def direct_method(self) -> bytes:
        """Blocking socket method directly inside the lock region."""
        with self._lock:
            return self._sock.recv(4096)

    def direct_call(self) -> None:
        """Blocking module call directly inside the lock region."""
        with self._lock:
            time.sleep(0.1)

    def transitive(self) -> None:
        """The callee reaches os.fsync two frames away."""
        with self._lock:
            self._flush()

    def _flush(self) -> None:
        """Helper that fsyncs; fine on its own, not under the lock."""
        os.fsync(self._fd)
