"""Fixture: db-layer code raising builtins and swallowing exceptions."""
# reprolint: path=repro/db/fixture_mod.py


def lookup(table: dict[str, int], key: str) -> int:
    """BAD: raises a bare builtin from inside the db layer."""
    if key not in table:
        raise KeyError(key)
    return table[key]


def swallow(action: object) -> None:
    """BAD: a bare except hides typed DatabaseErrors."""
    try:
        action()  # type: ignore[operator]
    except:  # noqa: E722
        pass
