"""Known-bad fixture for the durability-ordering rule."""
# reprolint: path=repro/db/wal.py

REC_PAGE = 1
REC_COMMIT = 2

__all__ = ["BadWal"]


class BadWal:
    """A WAL that appends records in crash-unsafe orders."""

    def commit_without_sync(self, payload: bytes) -> None:
        """BAD: the COMMIT append is never followed by a log fsync."""
        self._append(REC_COMMIT, payload)

    def checkpoint_without_inner_sync(self, page: bytes) -> None:
        """BAD: page image copied to the inner backend, never fsynced."""
        self.inner.write(0, page)

    def page_then_commit(self, page: bytes) -> None:
        """BAD: no fsync between the PAGE append and the COMMIT append."""
        self._append(REC_PAGE, page)
        self._append(REC_COMMIT, b"")
        self.sync()

    def commit_ok(self, payload: bytes) -> None:
        """GOOD: append, then fsync — the durability point."""
        self._append(REC_COMMIT, payload)
        self.sync()

    def _append(self, kind: int, payload: bytes) -> None:
        """Stub append."""
        del kind, payload

    def sync(self) -> None:
        """Stub log fsync."""
