"""Fixture: nondeterminism in the observability plane (obs-scoped)."""
# reprolint: path=repro/obs/fixture.py

import random
import time


def sample_buckets() -> float:
    """BAD: unseeded RNG, wall clock, and raw set iteration."""
    jitter = random.random()
    stamped = time.time()
    total = 0.0
    for name in {"repro_a_total", "repro_b_total"}:
        total += jitter + stamped + len(name)
    return total
