"""Fixture: imports that nothing in the module ever uses."""

import json
from os import path


def value() -> int:
    """Return a constant (touching neither import)."""
    return 3
