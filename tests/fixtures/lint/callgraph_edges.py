"""Fixture exercising each call-graph edge resolution kind.

One call site per resolution: a ``self.`` method call, a module-level
function call, a call through an aliased import, and a dynamic call the
graph cannot resolve (a method on an untyped value).
"""

import json as j


def helper(value: int) -> int:
    """A module-level function: the target of a ``local`` edge."""
    return value + 1


class Widget:
    """Caller demonstrating each resolution kind."""

    def refresh(self) -> int:
        """A ``self`` edge target."""
        return 0

    def run(self, payload: str) -> int:
        """One call per resolution kind, in order."""
        total = self.refresh()
        total += helper(total)
        blob = j.loads(payload)
        total += blob.popular_method()
        return total
