"""Min-hash signatures: determinism, short-token rule, estimator quality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fms_apx import minhash_similarity
from repro.core.minhash import MinHasher, required_signature_size
from repro.core.strings import jaccard, qgram_set

words = st.text(alphabet="abcdefghij", min_size=1, max_size=14)


class TestSignatures:
    def test_length_equals_h_for_long_tokens(self):
        hasher = MinHasher(q=3, num_hashes=4)
        assert len(hasher.signature("corporation")) == 4

    def test_short_token_is_own_signature(self):
        hasher = MinHasher(q=3, num_hashes=4)
        assert hasher.signature("wa") == ("wa",)

    def test_exact_q_length_token(self):
        hasher = MinHasher(q=3, num_hashes=4)
        assert hasher.signature("abc") == ("abc",)

    def test_empty_token(self):
        hasher = MinHasher(q=3, num_hashes=2)
        assert hasher.signature("") == ()

    def test_coordinates_are_qgrams_of_token(self):
        hasher = MinHasher(q=3, num_hashes=5)
        grams = qgram_set("corporation", 3)
        for coordinate in hasher.signature("corporation"):
            assert coordinate in grams

    def test_deterministic_across_instances(self):
        a = MinHasher(q=4, num_hashes=3, seed=11)
        b = MinHasher(q=4, num_hashes=3, seed=11)
        for token in ("boeing", "corporation", "seattle", "98004"):
            assert a.signature(token) == b.signature(token)

    def test_different_seeds_differ(self):
        a = MinHasher(q=3, num_hashes=8, seed=1)
        b = MinHasher(q=3, num_hashes=8, seed=2)
        tokens = ["corporation", "companions", "massachusetts", "philadelphia"]
        assert any(a.signature(t) != b.signature(t) for t in tokens)

    def test_identical_tokens_identical_signatures(self):
        hasher = MinHasher(q=3, num_hashes=3)
        assert hasher.signature("boeing") == hasher.signature("boeing")

    def test_signature_length_helper(self):
        hasher = MinHasher(q=3, num_hashes=3)
        assert hasher.signature_length("boeing") == 3
        assert hasher.signature_length("wa") == 1

    def test_zero_hashes_degrades_to_token(self):
        hasher = MinHasher(q=3, num_hashes=0)
        assert hasher.signature("corporation") == ("corporation",)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MinHasher(q=0, num_hashes=1)
        with pytest.raises(ValueError):
            MinHasher(q=3, num_hashes=-1)

    def test_qgrams_positional(self):
        hasher = MinHasher(q=3, num_hashes=1)
        assert hasher.qgrams("boeing") == ("boe", "oei", "ein", "ing")

    @given(words)
    @settings(max_examples=100, deadline=None)
    def test_signature_coordinates_from_qgram_set(self, token):
        hasher = MinHasher(q=3, num_hashes=4)
        grams = qgram_set(token, 3)
        for coordinate in hasher.signature(token):
            assert coordinate in grams


class TestRequiredSignatureSize:
    def test_formula(self):
        # H >= 2 * (1/0.5)^2 * ln(1/0.1) = 8 * 2.302... -> 19
        assert required_signature_size(0.5, 0.1) == 19

    def test_tightening_delta_grows_h(self):
        assert required_signature_size(0.1, 0.1) > required_signature_size(0.5, 0.1)

    def test_tightening_epsilon_grows_h(self):
        assert required_signature_size(0.5, 0.01) > required_signature_size(0.5, 0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            required_signature_size(0.0, 0.1)
        with pytest.raises(ValueError):
            required_signature_size(0.5, 1.0)

    def test_worst_case_guarantee_holds_empirically(self):
        """With the theorem's H, underestimates beyond (1−δ) are rare."""
        import random

        from repro.core.strings import jaccard, qgram_set

        delta, epsilon = 0.5, 0.05
        h = required_signature_size(delta, epsilon)
        hasher = MinHasher(q=3, num_hashes=h, seed=9)
        rng = random.Random(10)
        words = ["corporation", "corporal", "cooperation", "comparison"]
        violations = trials = 0
        for _ in range(100):
            t1, t2 = rng.sample(words, 2)
            exact = jaccard(qgram_set(t1, 3), qgram_set(t2, 3))
            if exact == 0:
                continue
            trials += 1
            if minhash_similarity(t1, t2, hasher) < (1 - delta) * exact:
                violations += 1
        assert trials > 0
        assert violations / trials <= epsilon + 0.05


class TestMinHashEstimator:
    def test_identical_tokens_similarity_one(self):
        hasher = MinHasher(q=3, num_hashes=4)
        assert minhash_similarity("corporation", "corporation", hasher) == 1.0

    def test_disjoint_tokens_similarity_zero(self):
        hasher = MinHasher(q=3, num_hashes=4)
        assert minhash_similarity("aaaa", "bbbb", hasher) == 0.0

    def test_short_tokens_exact_match_semantics(self):
        hasher = MinHasher(q=3, num_hashes=4)
        assert minhash_similarity("wa", "wa", hasher) == 1.0
        assert minhash_similarity("wa", "or", hasher) == 0.0

    def test_estimates_jaccard_on_average(self):
        """E[simmh] = Jaccard (§4.1) — check with a large H."""
        hasher = MinHasher(q=3, num_hashes=200, seed=5)
        pairs = [
            ("corporation", "corporal"),
            ("boeing", "beoing"),
            ("companions", "company"),
        ]
        for t1, t2 in pairs:
            exact = jaccard(qgram_set(t1, 3), qgram_set(t2, 3))
            estimate = minhash_similarity(t1, t2, hasher)
            assert estimate == pytest.approx(exact, abs=0.12)

    @given(words, words)
    @settings(max_examples=100, deadline=None)
    def test_similarity_in_unit_range(self, t1, t2):
        hasher = MinHasher(q=3, num_hashes=3)
        assert 0.0 <= minhash_similarity(t1, t2, hasher) <= 1.0

    @given(words)
    def test_self_similarity_is_one(self, token):
        hasher = MinHasher(q=3, num_hashes=3)
        assert minhash_similarity(token, token, hasher) == 1.0
