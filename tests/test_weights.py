"""IDF weights and the three token-frequency cache variants (§3, §4.4.1)."""

import math

import pytest

from repro.core.tokens import TupleTokens
from repro.core.weights import (
    BoundedTokenFrequencyCache,
    HashedTokenFrequencyCache,
    TokenFrequencyCache,
    build_frequency_cache,
)

ORG_VALUES = [
    ("Boeing Company", "Seattle", "WA", "98004"),
    ("Bon Corporation", "Seattle", "WA", "98014"),
    ("Companions", "Seattle", "WA", "98024"),
]


@pytest.fixture()
def cache():
    return build_frequency_cache(ORG_VALUES, 4)


class TestIdfWeights:
    def test_frequency_counts_tuples(self, cache):
        assert cache.frequency("seattle", 1) == 3
        assert cache.frequency("boeing", 0) == 1

    def test_idf_formula(self, cache):
        assert cache.weight("boeing", 0) == pytest.approx(math.log(3 / 1))
        assert cache.weight("seattle", 1) == pytest.approx(math.log(3 / 3))

    def test_ubiquitous_token_weighs_zero(self, cache):
        assert cache.weight("wa", 2) == 0.0

    def test_rare_token_outweighs_frequent(self):
        values = [("corporation boeing",)] + [("corporation filler%d" % i,) for i in range(9)]
        cache = build_frequency_cache(values, 1)
        assert cache.weight("boeing", 0) > cache.weight("corporation", 0)

    def test_unseen_token_gets_column_average(self, cache):
        # 'beoing' never occurs in column 0: weight = average IDF there.
        name_tokens = ["boeing", "company", "bon", "corporation", "companions"]
        average = sum(cache.weight(t, 0) for t in name_tokens) / len(name_tokens)
        assert cache.weight("beoing", 0) == pytest.approx(average)

    def test_column_identity(self, cache):
        # 'seattle' is frequent in the city column; unseen in name column.
        assert cache.weight("seattle", 1) != cache.weight("seattle", 0)

    def test_token_in_one_tuple_counted_once(self):
        # Duplicate token inside one attribute value counts once.
        cache = build_frequency_cache([("new new york",), ("boston",)], 1)
        assert cache.frequency("new", 0) == 1

    def test_tuple_weight_sums_tokens(self, cache):
        tokens = TupleTokens.from_values(ORG_VALUES[0])
        expected = (
            cache.weight("boeing", 0)
            + cache.weight("company", 0)
            + cache.weight("seattle", 1)
            + cache.weight("wa", 2)
            + cache.weight("98004", 3)
        )
        assert cache.tuple_weight(tokens) == pytest.approx(expected)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            TokenFrequencyCache(0, 1)

    def test_set_frequency_twice_rejected(self):
        cache = TokenFrequencyCache(10, 1)
        cache.set_frequency("a", 0, 1)
        with pytest.raises(ValueError):
            cache.set_frequency("a", 0, 2)

    def test_zero_frequency_rejected(self):
        cache = TokenFrequencyCache(10, 1)
        with pytest.raises(ValueError):
            cache.set_frequency("a", 0, 0)

    def test_num_entries_and_distinct(self, cache):
        # name column: boeing, company, bon, corporation, companions.
        assert cache.distinct_tokens(0) == 5
        assert cache.num_entries == 5 + 1 + 1 + 3  # name + city + state + zips


class TestHashedCache:
    def test_weights_match_plain_cache(self, cache):
        hashed = HashedTokenFrequencyCache(3, 4)
        build_frequency_cache(ORG_VALUES, 4, cache=hashed)
        for token, column in [
            ("boeing", 0),
            ("seattle", 1),
            ("wa", 2),
            ("98004", 3),
            ("unseen-token", 0),
        ]:
            assert hashed.weight(token, column) == pytest.approx(
                cache.weight(token, column)
            )

    def test_duplicate_rejected(self):
        hashed = HashedTokenFrequencyCache(3, 1)
        hashed.set_frequency("a", 0, 1)
        with pytest.raises(ValueError):
            hashed.set_frequency("a", 0, 1)

    def test_num_entries(self):
        hashed = HashedTokenFrequencyCache(3, 1)
        hashed.set_frequency("a", 0, 1)
        hashed.set_frequency("b", 0, 2)
        assert hashed.num_entries == 2


class TestBoundedCache:
    def test_collisions_merge_counts(self):
        bounded = BoundedTokenFrequencyCache(100, 1, max_entries=1)
        bounded.add_frequency("a", 0, 3)
        bounded.add_frequency("b", 0, 4)
        # Single bucket: both tokens see the merged frequency.
        assert bounded.frequency("a", 0) == 7
        assert bounded.frequency("b", 0) == 7

    def test_large_table_behaves_like_exact(self):
        bounded = BoundedTokenFrequencyCache(3, 4, max_entries=100_000)
        build_frequency_cache(ORG_VALUES, 4, cache=bounded)
        assert bounded.frequency("seattle", 1) == 3
        assert bounded.frequency("boeing", 0) == 1

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            BoundedTokenFrequencyCache(10, 1, max_entries=0)

    def test_collision_shrinks_weight_of_rare_token(self):
        """The §4.4.1 hazard: collisions make rare tokens look frequent."""
        exact = TokenFrequencyCache(1000, 1)
        exact.set_frequency("rare", 0, 1)
        bounded = BoundedTokenFrequencyCache(1000, 1, max_entries=1)
        bounded.add_frequency("rare", 0, 1)
        bounded.add_frequency("frequent", 0, 500)
        assert bounded.weight("rare", 0) < exact.weight("rare", 0)


class TestBuildFrequencyCache:
    def test_counts_scanned_tuples(self):
        cache = build_frequency_cache(ORG_VALUES, 4)
        assert cache.num_tuples == 3

    def test_none_values_skipped(self):
        cache = build_frequency_cache([("a", None), ("a", "b")], 2)
        assert cache.frequency("a", 0) == 2
        assert cache.frequency("b", 1) == 1

    def test_mismatched_num_tuples_rejected(self):
        pre_sized = TokenFrequencyCache(5, 1)
        with pytest.raises(ValueError):
            build_frequency_cache([("a",)], 1, cache=pre_sized, num_tuples=5)
