"""Schema validation and the binary row codec."""

import pytest
from hypothesis import given, strategies as st

from repro.db.errors import SchemaError
from repro.db.types import Column, ColumnType, Schema


def make_schema():
    return Schema(
        [
            Column("tid", ColumnType.INT),
            Column("name", ColumnType.STR, nullable=True),
            Column("score", ColumnType.FLOAT),
            Column("tids", ColumnType.INT_LIST, nullable=True),
        ]
    )


class TestSchema:
    def test_names(self):
        assert make_schema().names == ("tid", "name", "score", "tids")

    def test_len(self):
        assert len(make_schema()) == 4

    def test_position(self):
        schema = make_schema()
        assert schema.position("tid") == 0
        assert schema.position("tids") == 3

    def test_position_unknown_column(self):
        with pytest.raises(SchemaError, match="no column"):
            make_schema().position("nope")

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.STR)])

    def test_validate_returns_tuple(self):
        row = make_schema().validate([1, "x", 2.0, [1, 2]])
        assert isinstance(row, tuple)

    def test_validate_wrong_arity(self):
        with pytest.raises(SchemaError, match="values"):
            make_schema().validate((1, "x", 2.0))

    def test_validate_null_in_non_nullable(self):
        with pytest.raises(SchemaError, match="not nullable"):
            make_schema().validate((None, "x", 2.0, []))

    def test_validate_null_in_nullable(self):
        assert make_schema().validate((1, None, 2.0, None)) == (1, None, 2.0, None)

    def test_validate_type_mismatch_str(self):
        with pytest.raises(SchemaError, match="expects str"):
            make_schema().validate((1, 5, 2.0, []))

    def test_validate_type_mismatch_int(self):
        with pytest.raises(SchemaError, match="expects int"):
            make_schema().validate(("1", "x", 2.0, []))

    def test_validate_int_accepted_for_float(self):
        assert make_schema().validate((1, "x", 2, []))[2] == 2

    def test_validate_bad_int_list(self):
        with pytest.raises(SchemaError, match="list of non-negative"):
            make_schema().validate((1, "x", 2.0, [-1]))

    def test_validate_int_list_not_a_list(self):
        with pytest.raises(SchemaError, match="list of non-negative"):
            make_schema().validate((1, "x", 2.0, "nope"))


class TestCodec:
    def test_round_trip_basic(self):
        schema = make_schema()
        row = (42, "boeing company", 0.806, [1, 2, 3])
        assert schema.decode(schema.encode(row)) == row

    def test_round_trip_nulls(self):
        schema = make_schema()
        row = (42, None, -1.5, None)
        assert schema.decode(schema.encode(row)) == row

    def test_round_trip_empty_containers(self):
        schema = make_schema()
        row = (0, "", 0.0, [])
        assert schema.decode(schema.encode(row)) == row

    def test_round_trip_negative_int(self):
        schema = Schema([Column("v", ColumnType.INT)])
        for value in (-1, -(2**40), 2**40, 0):
            assert schema.decode(schema.encode((value,))) == (value,)

    def test_round_trip_unicode(self):
        schema = Schema([Column("s", ColumnType.STR)])
        row = ("zürich — 北京",)
        assert schema.decode(schema.encode(row)) == row

    def test_null_distinct_from_empty_list(self):
        schema = Schema([Column("l", ColumnType.INT_LIST, nullable=True)])
        assert schema.decode(schema.encode((None,))) == (None,)
        assert schema.decode(schema.encode(([],))) == ([],)

    def test_null_distinct_from_empty_string(self):
        schema = Schema([Column("s", ColumnType.STR, nullable=True)])
        assert schema.decode(schema.encode((None,))) == (None,)
        assert schema.decode(schema.encode(("",))) == ("",)

    def test_trailing_bytes_rejected(self):
        schema = Schema([Column("v", ColumnType.INT)])
        data = schema.encode((1,)) + b"\x00"
        with pytest.raises(SchemaError, match="trailing"):
            schema.decode(data)

    def test_truncated_data_rejected(self):
        schema = Schema([Column("s", ColumnType.STR)])
        data = schema.encode(("hello world",))
        with pytest.raises(SchemaError):
            schema.decode(data[:3])

    @given(
        st.tuples(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.one_of(st.none(), st.text(max_size=50)),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            st.one_of(
                st.none(),
                st.lists(st.integers(min_value=0, max_value=2**40), max_size=20),
            ),
        )
    )
    def test_round_trip_property(self, row):
        schema = make_schema()
        assert schema.decode(schema.encode(row)) == row
