"""Observability plane: registry, tracing, exposition, and the stats op.

The contracts under test: bucket edges are a pure function of their
inputs (two processes configured alike merge without translation),
snapshot merging is associative, label cardinality is bounded, strict
instruments stay exact under thread chaos, and the serve layer's
``stats`` wire op ships non-zero metrics plus span trees that reach
from serve through the matcher into the storage layer.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager

import pytest

from repro.core.batch import BatchMatcher
from repro.obs.exposition import render_prometheus, snapshot_as_dict
from repro.obs.registry import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    HistogramSnapshot,
    MetricsRegistry,
    OVERFLOW_LABELS,
    RelaxedCounter,
    default_registry,
    log_bucket_edges,
    merge_snapshots,
)
from repro.obs.tracing import Span, Tracer, trace_span
from repro.serve.client import ServeClient
from repro.serve.protocol import ProtocolError, decode_request
from repro.serve.server import MatchServer, ServeConfig, ServeStats


class ManualClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Bucket edges
# ----------------------------------------------------------------------


class TestBucketEdges:
    def test_edges_are_deterministic_and_exact(self):
        edges = log_bucket_edges(1e-4, 2.0, 18)
        assert edges == log_bucket_edges(1e-4, 2.0, 18)
        assert edges == DEFAULT_LATENCY_EDGES
        assert len(edges) == 18
        assert edges[0] == 1e-4
        for previous, current in zip(edges, edges[1:]):
            assert current == previous * 2.0

    @pytest.mark.parametrize(
        "start, factor, count",
        [(0.0, 2.0, 4), (-1.0, 2.0, 4), (0.1, 1.0, 4), (0.1, 2.0, 0)],
    )
    def test_invalid_parameters_raise(self, start, factor, count):
        with pytest.raises(ValueError):
            log_bucket_edges(start, factor, count)

    def test_observation_on_edge_is_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", edges=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # le semantics: lands in the 2.0 bucket
        hist.observe(2.0001)  # just past it: next bucket
        hist.observe(100.0)  # +Inf tail
        snap = hist.snapshot()
        assert snap.counts == (0, 1, 1, 1)
        assert snap.count == 3

    def test_quantile_returns_bucket_edge(self):
        snap = HistogramSnapshot(
            edges=(1.0, 2.0, 4.0), counts=(5, 4, 1, 0), sum=15.0, count=10
        )
        assert snap.quantile(0.5) == 1.0
        assert snap.quantile(0.9) == 2.0
        assert snap.quantile(1.0) == 4.0
        empty = HistogramSnapshot(
            edges=(1.0,), counts=(0, 0), sum=0.0, count=0
        )
        assert empty.quantile(0.99) == 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"k": "v"})
        b = registry.counter("c", {"k": "v"})
        assert a is b
        assert registry.counter("c") is not a  # different label set

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("metric")
        with pytest.raises(ValueError, match="requested relaxed_counter"):
            registry.counter("metric", relaxed=True)

    def test_histogram_edge_mismatch_raises_even_for_new_labels(self):
        registry = MetricsRegistry()
        registry.histogram("h", {"a": "1"}, edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("h", {"a": "2"}, edges=(1.0, 3.0))

    def test_label_cardinality_cap_routes_to_overflow(self):
        registry = MetricsRegistry(label_cardinality=2)
        registry.counter("c", {"k": "a"}).inc()
        registry.counter("c", {"k": "b"}).inc()
        # Past the cap: both land on the shared sentinel series.
        registry.counter("c", {"k": "leak-1"}).inc(5)
        registry.counter("c", {"k": "leak-2"}).inc(7)
        snap = registry.snapshot()
        assert snap.counters[("c", OVERFLOW_LABELS)] == 12
        assert snap.counters[("repro_labels_overflow_total", ())] == 2
        # Existing series are unaffected and still addressable.
        assert registry.counter_values("c")[(("k", "a"),)] == 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        relaxed = registry.counter("r", relaxed=True)
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        counter.inc()
        relaxed.inc()
        gauge.set(3.0)
        hist.observe(0.5)
        assert counter.value() == 0
        assert relaxed.value() == 0
        assert gauge.value() == 0.0
        assert hist.snapshot().count == 0
        registry.set_enabled(True)
        counter.inc()
        assert counter.value() == 1
        assert registry.enabled

    def test_strictness_is_two_distinct_classes(self):
        registry = MetricsRegistry()
        assert type(registry.counter("strict")) is Counter
        assert type(registry.counter("fast", relaxed=True)) is RelaxedCounter

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()

    def test_collectors_refresh_gauges_on_snapshot(self):
        registry = MetricsRegistry()
        calls = []

        def collect(reg):
            calls.append(1)
            reg.gauge("depth").set(float(len(calls)))

        registry.register_collector(collect)
        assert registry.snapshot().gauges[("depth", ())] == 1.0
        assert registry.snapshot().gauges[("depth", ())] == 2.0
        registry.unregister_collector(collect)
        registry.snapshot()
        assert len(calls) == 2


# ----------------------------------------------------------------------
# Snapshot merging
# ----------------------------------------------------------------------


def build_snapshot(counter, gauge, observations):
    registry = MetricsRegistry()
    registry.counter("jobs_total").inc(counter)
    registry.gauge("depth").set(gauge)
    hist = registry.histogram("latency", edges=(1.0, 2.0, 4.0))
    for value in observations:
        hist.observe(value)
    return registry.snapshot()


class TestSnapshotMerge:
    def test_merge_is_associative_on_integer_observations(self):
        a = build_snapshot(1, 3.0, [1, 1, 4])
        b = build_snapshot(10, 7.0, [2])
        c = build_snapshot(100, 5.0, [8, 8])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.counters == right.counters
        assert left.gauges == right.gauges
        for key in left.histograms:
            assert left.histograms[key].counts == right.histograms[key].counts
            assert left.histograms[key].sum == right.histograms[key].sum
        assert left.counters[("jobs_total", ())] == 111
        assert left.histograms[("latency", ())].count == 6

    def test_gauges_merge_by_max_not_sum(self):
        # The same point-in-time value sampled into several per-worker
        # registries must not be multiplied by the fan-out.
        merged = merge_snapshots(
            [build_snapshot(0, 7.0, []), build_snapshot(0, 7.0, [])]
        )
        assert merged.gauges[("depth", ())] == 7.0

    def test_mismatched_edges_refuse_to_merge(self):
        registry = MetricsRegistry()
        registry.histogram("latency", edges=(9.0,)).observe(1.0)
        with pytest.raises(ValueError, match="bucket edges"):
            build_snapshot(0, 0.0, [1]).merge(registry.snapshot())

    def test_merge_empty_is_identity(self):
        snap = build_snapshot(5, 2.0, [1])
        merged = merge_snapshots([snap])
        assert merged.counters == snap.counters
        assert merged.gauges == snap.gauges


# ----------------------------------------------------------------------
# Thread safety (chaos)
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestRegistryChaos:
    """Strict instruments stay exact under concurrent hammering.

    CI reruns this marker with ``REPRO_DEBUG_LOCKS=1`` so lock-order
    violations between the registry lock and instrument locks surface
    as hard failures, not latent deadlocks.
    """

    THREADS = 8
    ROUNDS = 400

    def test_concurrent_increments_and_snapshots(self):
        registry = MetricsRegistry(label_cardinality=4)
        errors = []
        start = threading.Barrier(self.THREADS)

        def hammer(worker):
            try:
                start.wait()
                for i in range(self.ROUNDS):
                    registry.counter("strict_total").inc()
                    registry.counter(
                        "labeled_total", {"w": str(worker % 2)}
                    ).inc()
                    registry.counter(
                        "leaky_total", {"id": f"{worker}-{i}"}
                    ).inc()
                    registry.histogram("lat", edges=(1.0, 4.0)).observe(
                        float(i % 8)
                    )
                    registry.gauge("depth").set(float(i))
                    if i % 50 == 0:
                        registry.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        expected = self.THREADS * self.ROUNDS
        snap = registry.snapshot()
        assert snap.counters[("strict_total", ())] == expected
        labeled = registry.counter_values("labeled_total")
        assert sum(labeled.values()) == expected
        # The leaky label set exceeded the cap but stayed bounded, and
        # not one increment was dropped: capped series + sentinel
        # account for every call.
        leaky = registry.counter_values("leaky_total")
        assert len(leaky) <= 5  # cap + overflow sentinel
        assert sum(leaky.values()) == expected
        assert snap.histograms[("lat", ())].count == expected

    def test_tracer_record_is_thread_safe(self):
        tracer = Tracer(ring_capacity=16, slow_capacity=4)
        start = threading.Barrier(4)

        def run():
            start.wait()
            for _ in range(200):
                with tracer.trace("request"):
                    with trace_span("inner"):
                        pass

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.recent()) == 16
        assert tracer.slowest() is not None


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracing:
    def test_span_tree_nesting_and_annotations(self):
        clock = ManualClock()
        tracer = Tracer(slow_threshold_s=5.0, clock=clock)
        with tracer.trace("request", op="match") as root:
            clock.advance(0.01)
            with trace_span("matcher", requested="osc") as matcher:
                clock.advance(0.02)
                with trace_span("db"):
                    clock.advance(0.03)
                matcher.annotate(strategy="osc")
            root.child("queue_wait", duration_s=0.005)
        (recorded,) = tracer.recent()
        assert recorded.name == "request"
        assert recorded.annotations["op"] == "match"
        assert recorded.duration_s == pytest.approx(0.06)
        matcher_span, wait_span = recorded.children
        assert matcher_span.annotations["strategy"] == "osc"
        assert matcher_span.children[0].name == "db"
        assert wait_span.duration_s == pytest.approx(0.005)
        node = recorded.as_dict()
        assert node["duration_ms"] == pytest.approx(60.0)
        assert [c["name"] for c in node["children"]] == [
            "matcher",
            "queue_wait",
        ]

    def test_trace_span_without_active_trace_is_noop(self):
        context = trace_span("orphan", ignored=1)
        with context as span:
            assert span is None
        context.annotate(dropped=True)  # must not raise
        assert trace_span("again") is context  # the shared null context

    def test_retention_ring_slow_and_slowest(self):
        clock = ManualClock()
        tracer = Tracer(
            ring_capacity=2, slow_capacity=2, slow_threshold_s=0.1, clock=clock
        )
        durations = [0.05, 0.5, 0.01, 0.2, 0.03]
        for index, duration in enumerate(durations):
            with tracer.trace(f"t{index}"):
                clock.advance(duration)
        assert [s.name for s in tracer.recent()] == ["t3", "t4"]
        assert [s.name for s in tracer.slow()] == ["t1", "t3"]
        # The slowest-ever trace outlives both bounded buffers.
        assert tracer.slowest().name == "t1"
        assert [s.name for s in tracer.recent(1)] == ["t4"]

    def test_exception_annotates_error_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("request"):
                with trace_span("inner"):
                    raise RuntimeError("boom")
        (recorded,) = tracer.recent()
        assert recorded.annotations["error"] == "RuntimeError"
        assert recorded.children[0].annotations["error"] == "RuntimeError"
        # The stack fully unwound: new spans are orphans again.
        assert trace_span("after") .__enter__() is None

    def test_nested_trace_joins_as_child(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        (recorded,) = tracer.recent()
        assert recorded.name == "outer"
        assert [c.name for c in recorded.children] == ["inner"]


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------


class TestExposition:
    def build_metrics(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", {"kind": "bulk"}).inc(3)
        registry.gauge("repro_depth").set(2.5)
        hist = registry.histogram("repro_lat_seconds", edges=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)
        return snapshot_as_dict(registry.snapshot())

    def test_snapshot_as_dict_shape_is_json_ready(self):
        metrics = self.build_metrics()
        assert json.loads(json.dumps(metrics)) == metrics
        (counter,) = metrics["counters"]
        assert counter == {
            "name": "repro_jobs_total",
            "labels": {"kind": "bulk"},
            "value": 3,
        }
        (hist,) = metrics["histograms"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3

    def test_prometheus_rendering(self):
        text = render_prometheus(self.build_metrics())
        lines = text.splitlines()
        assert '# TYPE repro_jobs_total counter' in lines
        assert 'repro_jobs_total{kind="bulk"} 3' in lines
        assert "repro_depth 2.5" in lines
        # Cumulative buckets with a +Inf tail, then sum and count.
        assert 'repro_lat_seconds_bucket{le="1.0"} 1' in lines
        assert 'repro_lat_seconds_bucket{le="2.0"} 2' in lines
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_lat_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", {"q": 'a"b\\c\nd'}).inc()
        text = render_prometheus(snapshot_as_dict(registry.snapshot()))
        assert 'q="a\\"b\\\\c\\nd"' in text

    def test_empty_input_renders_empty(self):
        assert render_prometheus({}) == ""


# ----------------------------------------------------------------------
# Serve integration: ServeStats view + the stats wire op
# ----------------------------------------------------------------------


class TestServeStatsView:
    def test_report_shape_matches_legacy_contract(self):
        stats = ServeStats()
        stats.record_submitted("interactive")
        stats.record_submitted("interactive")
        stats.record_submitted("bulk")
        stats.record_completed()
        stats.record_degraded("deadline")
        stats.record_shed("queue_full")
        stats.record_shed("queue_full")
        stats.record_error("ValueError")
        stats.record_stage_trip()
        stats.record_bulk_shed_sweep()
        stats.record_replay()
        assert stats.as_dict() == {
            "submitted": {"bulk": 1, "interactive": 2},
            "completed": 1,
            "degraded": 1,
            "degraded_reasons": {"deadline": 1},
            "shed": 2,
            "shed_reasons": {"queue_full": 2},
            "errors": {"ValueError": 1},
            "stage_trips": 1,
            "bulk_shed_sweeps": 1,
            "idempotent_replays": 1,
        }

    def test_counters_land_in_the_registry(self):
        registry = MetricsRegistry()
        stats = ServeStats(registry)
        stats.record_shed("overload")
        snap = registry.snapshot()
        key = ("repro_serve_shed_total", (("reason", "overload"),))
        assert snap.counters[key] == 1


class TestStatsSectionsDecoding:
    def test_sections_decode_and_dedupe(self):
        request = decode_request(
            b'{"op":"stats","sections":["serve","traces","serve"]}'
        )
        assert request.sections == ("serve", "traces")
        assert decode_request(b'{"op":"stats"}').sections is None

    @pytest.mark.parametrize(
        "payload",
        [
            b'{"op":"stats","sections":[]}',
            b'{"op":"stats","sections":"serve"}',
            b'{"op":"stats","sections":["bogus"]}',
            b'{"op":"stats","sections":[1]}',
        ],
    )
    def test_invalid_sections_are_typed_errors(self, payload):
        with pytest.raises(ProtocolError):
            decode_request(payload)


@contextmanager
def observed_server(engine, **config_kwargs):
    config = ServeConfig(workers=2, **config_kwargs)
    server = MatchServer(engine=engine, config=config)
    try:
        server.start()
        yield server
    finally:
        server.shutdown(drain_budget_s=1.0)


@pytest.fixture()
def org_engine(org_reference, org_weights, paper_config, org_eti):
    engine = BatchMatcher(
        org_reference, org_weights, paper_config, org_eti, jobs=2
    )
    yield engine
    engine.close()


def span_names(node):
    return [node["name"]] + [
        name for child in node.get("children", []) for name in span_names(child)
    ]


class TestStatsWireOp:
    def test_live_stats_show_metrics_and_a_full_depth_trace(self, org_engine):
        # slow_trace_ms far below any real latency: every request is
        # "slow", so the slow-query log is deterministically populated.
        with observed_server(org_engine, slow_trace_ms=0.001) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                for _ in range(3):
                    response = client.match(
                        ["Beoing Company", "Seattle", "WA", "98004"]
                    )
                    assert response["outcome"] == "completed"
                payload = client.stats(["serve", "metrics", "traces"])

        assert payload["ok"] is True
        assert payload["completed"] == 3
        metrics = payload["metrics"]
        counters = {
            (series["name"], tuple(sorted(series["labels"].items()))): series[
                "value"
            ]
            for series in metrics["counters"]
        }
        assert counters[("repro_match_queries_total", ())] == 3
        assert counters[("repro_match_eti_lookups_total", ())] > 0
        request_hist = next(
            series
            for series in metrics["histograms"]
            if series["name"] == "repro_serve_request_seconds"
            and series["labels"] == {"stage": "osc"}
        )
        assert request_hist["count"] == 3
        assert request_hist["sum"] > 0.0
        match_hist = next(
            series
            for series in metrics["histograms"]
            if series["name"] == "repro_match_seconds"
            and series["labels"] == {"strategy": "osc"}
        )
        assert match_hist["count"] == 3
        gauges = {
            series["name"]: series["value"] for series in metrics["gauges"]
        }
        assert gauges["repro_pool_hit_rate"] > 0.0

        traces = payload["traces"]
        assert traces["slow_threshold_ms"] == 0.001
        assert len(traces["slow"]) == 3
        slowest = traces["slowest"]
        names = span_names(slowest)
        # The slow-query trace spans serve -> matcher -> db.
        assert names[0] == "request"
        assert "serve.queue_wait" in names
        assert "matcher" in names
        assert "matcher.eti_lookups" in names
        assert "db" in names
        assert slowest["annotations"]["outcome"] == "completed"

    def test_default_sections_omit_traces(self, org_engine):
        with observed_server(org_engine) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                payload = client.stats()
                assert "metrics" in payload
                assert "traces" not in payload
                assert "completed" in payload
                serve_only = client.stats(["serve"])
                assert "metrics" not in serve_only
                assert serve_only["ok"] is True

    def test_malformed_sections_get_a_typed_error(self, org_engine):
        with observed_server(org_engine) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                bad = client.request({"op": "stats", "sections": ["nope"]})
                assert bad["outcome"] == "error"
                assert bad["error_type"] == "ProtocolError"
                # The connection and the server both survived.
                assert client.ping()["ok"] is True

    def test_metrics_toggle_stops_and_resumes_recording(self, org_engine):
        with observed_server(org_engine) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                server.set_metrics_enabled(False)
                client.match(["Beoing Company", "Seattle", "WA", "98004"])
                snap = server.metrics_snapshot()
                assert snap.counters.get(
                    ("repro_match_queries_total", ()), 0
                ) == 0
                server.set_metrics_enabled(True)
                client.match(["Beoing Company", "Seattle", "WA", "98004"])
                snap = server.metrics_snapshot()
                assert snap.counters[("repro_match_queries_total", ())] == 1
