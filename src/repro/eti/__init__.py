"""The Error Tolerant Index (ETI) — §4.2 of the paper.

The ETI is a *standard relation* with schema ``[QGram, Coordinate, Column,
Frequency, Tid-list]`` plus a clustered B+-tree index on ``[QGram,
Coordinate, Column]``.  It is built exactly the way the paper describes:
scan the reference relation emitting pre-ETI rows ``[QGram, Coordinate,
Column, Tid]``, run the ETI-query (an ORDER BY over all four columns via
external sort), then group runs of equal ``(QGram, Coordinate, Column)``
into ETI tuples, replacing tid-lists longer than the stop-q-gram threshold
with NULL.
"""

from repro.eti.builder import BuildStats, EtiBuilder, build_eti
from repro.eti.index import EtiEntry, EtiIndex
from repro.eti.maintenance import EtiMaintainer
from repro.eti.schema import eti_columns, pre_eti_columns
from repro.eti.signature import SignatureEntry, signature_entries
from repro.eti.weights import EtiWeightProvider

__all__ = [
    "build_eti",
    "BuildStats",
    "eti_columns",
    "EtiBuilder",
    "EtiEntry",
    "EtiIndex",
    "EtiMaintainer",
    "EtiWeightProvider",
    "pre_eti_columns",
    "SignatureEntry",
    "signature_entries",
]
