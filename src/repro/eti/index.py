"""Query-side access to a built ETI relation.

All lookups go through the clustered index on ``[QGram, Coordinate,
Column]`` and are counted — the number of ETI lookups per input tuple is
one of the paper's efficiency metrics (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.errors import RecordNotFoundError
from repro.db.relation import Relation
from repro.eti.schema import ETI_INDEX


@dataclass(frozen=True)
class EtiEntry:
    """One ETI tuple: frequency plus tid-list (None for stop q-grams)."""

    qgram: str
    coordinate: int
    column: int
    frequency: int
    tid_list: tuple[int, ...] | None

    @property
    def is_stop_qgram(self) -> bool:
        return self.tid_list is None


class EtiIndex:
    """Exact-match lookups against the ETI's clustered index."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.lookups = 0

    def __len__(self) -> int:
        return len(self.relation)

    def lookup(self, qgram: str, coordinate: int, column: int) -> EtiEntry | None:
        """Fetch the ETI tuple for ``(qgram, coordinate, column)`` or None."""
        self.lookups += 1
        try:
            row = self.relation.index_get(ETI_INDEX, (qgram, coordinate, column))
        except RecordNotFoundError:
            return None
        tid_list = row[4]
        return EtiEntry(
            qgram=row[0],
            coordinate=row[1],
            column=row[2],
            frequency=row[3],
            tid_list=None if tid_list is None else tuple(tid_list),
        )

    def reset_lookup_counter(self) -> None:
        """Zero the lookup counter (per-experiment accounting)."""
        self.lookups = 0

    def stats(self) -> dict[str, int]:
        """Index-level statistics for reporting."""
        index_stats = self.relation.index_stats(ETI_INDEX)
        return {
            "rows": len(self.relation),
            "pages": self.relation.num_pages,
            "index_entries": index_stats["entries"],
            "index_height": index_stats["height"],
        }
