"""Incremental ETI maintenance when the reference relation changes.

The paper defers this ("Due to space constraints, we do not discuss ETI
maintenance when the reference table changes"); this module supplies the
natural design.  Because the ETI is a standard relation keyed on ``[QGram,
Coordinate, Column]``, inserting or deleting one reference tuple touches
exactly the rows named by that tuple's signature entries:

- *insert*: for every signature coordinate of every token, append the tid
  to the row's tid-list and bump the frequency, creating the row if absent;
  a tid-list crossing the stop-q-gram threshold collapses to NULL.
- *delete*: remove the tid and decrement the frequency; a row whose list
  empties is removed.  Stop q-grams stay stopped even if their frequency
  sinks back below the threshold — their tid-list was discarded and cannot
  be reconstructed without a rebuild.  This is conservative: a stopped
  q-gram only costs recall that the remaining coordinates supply.

Token *weights* can be maintained in lock-step: pass the plain
:class:`~repro.core.weights.TokenFrequencyCache` as ``weights`` and the
maintainer calls its ``add_tuple`` / ``remove_tuple`` on every mutation,
keeping IDF weights exact.  Without it, the cache drifts benignly (unseen
tokens already fall back to column-average weights); heavy churn then
warrants a periodic rebuild, and the maintainer counts both mutations and
un-mirrored weight drift (:attr:`EtiMaintainer.weight_drift`) to make
that decision easy — :attr:`EtiMaintainer.rebuild_hint` turns true once
the mutation count crosses ``rebuild_threshold``.

Crash atomicity: pass the owning :class:`~repro.db.database.Database` as
``database`` and every mutation runs inside one WAL transaction — the
multi-row ETI update, the reference-heap change, and the catalog manifest
commit together, so a crash mid-mutation recovers to the state before or
after the whole tuple, never a half-indexed one.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager, Iterator, Sequence

from repro.core.config import MatchConfig
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.tokens import TupleTokens
from repro.db.errors import RecordNotFoundError
from repro.eti.index import EtiIndex
from repro.eti.schema import ETI_INDEX
from repro.eti.signature import signature_entries

if TYPE_CHECKING:
    from repro.core.weights import TokenFrequencyCache
    from repro.db.database import Database


class EtiMaintainer:
    """Keeps an ETI consistent with single-tuple reference mutations."""

    def __init__(
        self,
        reference: ReferenceTable,
        eti: EtiIndex,
        config: MatchConfig,
        hasher: MinHasher | None = None,
        weights: "TokenFrequencyCache | None" = None,
        database: "Database | None" = None,
        rebuild_threshold: int | None = None,
    ) -> None:
        self.reference = reference
        self.eti = eti
        self.config = config
        self.hasher = (
            hasher
            if hasher is not None
            else MinHasher(config.q, config.signature_size, config.seed)
        )
        self.weights = weights
        if weights is not None and not (
            hasattr(weights, "add_tuple") and hasattr(weights, "remove_tuple")
        ):
            raise TypeError(
                "weights must support add_tuple/remove_tuple (use the plain "
                "TokenFrequencyCache) or be None"
            )
        if rebuild_threshold is not None and rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be >= 1 (or None)")
        self.database = database
        self.rebuild_threshold = rebuild_threshold
        self.mutations = 0
        self.weight_drift = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def insert_tuple(self, tid: int, values: Sequence[str | None]) -> None:
        """Add a reference tuple and index all its signature entries.

        With a ``database`` attached, the heap insert and every ETI row it
        touches commit as one WAL transaction.
        """
        with self._transaction():
            self.reference.insert(tid, values)
            for gram, coordinate, column in self._entries(values):
                self._index_add(gram, coordinate, column, tid)
            self._account(values, add=True)

    def delete_tuple(self, tid: int) -> tuple[str | None, ...]:
        """Remove a reference tuple and unindex its signature entries.

        With a ``database`` attached, the heap delete and every ETI row it
        touches commit as one WAL transaction.
        """
        with self._transaction():
            values = self.reference.delete(tid)
            for gram, coordinate, column in self._entries(values):
                self._index_remove(gram, coordinate, column, tid)
            self._account(values, add=False)
        return values

    def update_tuple(self, tid: int, values: Sequence[str | None]) -> None:
        """Replace a reference tuple's attribute values.

        With a ``database`` attached this is *one* transaction — the
        delete and re-insert commit together (transactions nest; only the
        outermost commits).
        """
        with self._transaction():
            self.delete_tuple(tid)
            self.insert_tuple(tid, values)

    @property
    def rebuild_hint(self) -> bool:
        """True once accumulated mutations warrant a from-scratch rebuild.

        Always False without a ``rebuild_threshold``; the hint never
        resets on its own — rebuild, then construct a fresh maintainer.
        """
        return (
            self.rebuild_threshold is not None
            and self.mutations >= self.rebuild_threshold
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _transaction(self) -> ContextManager[None]:
        """One crash-atomic scope per mutation (a no-op without a database)."""
        if self.database is not None:
            return self.database.transaction()
        return nullcontext()

    def _account(self, values: Sequence[str | None], add: bool) -> None:
        """Bookkeeping shared by insert and delete paths."""
        if self.weights is not None:
            if add:
                self.weights.add_tuple(values)
            else:
                self.weights.remove_tuple(values)
        else:
            # No live cache to mirror into: IDF weights drift one tuple
            # further from the stored frequencies.
            self.weight_drift += 1
        self.mutations += 1

    def _entries(
        self, values: Sequence[str | None]
    ) -> Iterator[tuple[str, int, int]]:
        tokens = TupleTokens.from_values(values)
        for column in range(tokens.num_columns):
            for token in tokens.column_tokens(column):
                for entry in signature_entries(token, self.hasher, self.config):
                    yield entry.gram, entry.coordinate, column

    def _index_add(self, gram: str, coordinate: int, column: int, tid: int) -> None:
        relation = self.eti.relation
        key = (gram, coordinate, column)
        try:
            rid = relation.find_rid(ETI_INDEX, key)
        except RecordNotFoundError:
            relation.insert((gram, coordinate, column, 1, [tid]))
            return
        row = relation.fetch(rid)
        frequency = row[3] + 1
        tid_list = row[4]
        if tid_list is None or frequency > self.config.stop_qgram_threshold:
            tid_list = None  # already (or newly) a stop q-gram
        else:
            tid_list = list(tid_list)
            if tid not in tid_list:
                tid_list.append(tid)
                tid_list.sort()
        relation.update(rid, (gram, coordinate, column, frequency, tid_list))

    def _index_remove(self, gram: str, coordinate: int, column: int, tid: int) -> None:
        relation = self.eti.relation
        key = (gram, coordinate, column)
        try:
            rid = relation.find_rid(ETI_INDEX, key)
        except RecordNotFoundError:
            return  # never indexed (e.g. inserted while already a stop gram)
        row = relation.fetch(rid)
        frequency = max(row[3] - 1, 0)
        tid_list = row[4]
        if tid_list is None:
            # Stop q-grams keep a NULL list; only the frequency decays.
            if frequency == 0:
                relation.delete(rid)
            else:
                relation.update(rid, (gram, coordinate, column, frequency, None))
            return
        tid_list = [t for t in tid_list if t != tid]
        if not tid_list:
            relation.delete(rid)
        else:
            relation.update(rid, (gram, coordinate, column, frequency, tid_list))
