"""Token signature schemes: Q_H and Q+T_H (§4.1, §5.1, §6.2 notation).

A token's signature is the list of ETI coordinates it is indexed (and
looked up) under.  The *same* function drives both the ETI builder and
query processing, which is what makes lookups find what the builder wrote.

- ``Q_H``: the H min-hash q-grams at coordinates 1..H, each carrying
  ``1/|mh(t)|`` of the token's weight.  A short token (|t| ≤ q) has the
  token itself as its single coordinate-1 entry.
- ``Q+T_H``: additionally the token itself at coordinate 0.  Following
  §5.1, the token's importance is split equally between the token
  coordinate (fraction ½) and its q-gram signature (fraction ½ spread over
  the q-grams).  ``Q+T_0`` is the tokens-only scheme: coordinate 0 carries
  the full weight and there are no q-gram entries.
- ``Full``: every distinct q-gram of the token, all at coordinate 1, each
  carrying an equal weight share — the full-q-gram-table baseline from the
  related work the ETI is designed to undercut in size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.minhash import MinHasher

if TYPE_CHECKING:
    from repro.core.cache import LRUCache

TOKEN_COORDINATE = 0


@dataclass(frozen=True)
class SignatureEntry:
    """One indexable coordinate of a token's signature.

    ``weight_fraction`` is the share of the token's IDF weight this entry
    carries during score accumulation (w(q_k) = w(t) · weight_fraction).
    """

    coordinate: int
    gram: str
    weight_fraction: float


def signature_entries(
    token: str, hasher: MinHasher, config: MatchConfig
) -> tuple[SignatureEntry, ...]:
    """The signature entries of ``token`` under the configured scheme."""
    if not token:
        return ()
    if config.scheme is SignatureScheme.FULL_QGRAMS:
        grams = sorted(set(hasher.qgrams(token)))
        fraction = 1.0 / len(grams)
        return tuple(SignatureEntry(1, gram, fraction) for gram in grams)
    entries: list[SignatureEntry] = []
    use_token = config.scheme is SignatureScheme.QGRAMS_PLUS_TOKEN
    if use_token and config.signature_size == 0:
        return (SignatureEntry(TOKEN_COORDINATE, token, 1.0),)
    qgram_share = 0.5 if use_token else 1.0
    if use_token:
        entries.append(SignatureEntry(TOKEN_COORDINATE, token, 0.5))
    signature = hasher.signature(token)
    if signature:
        fraction = qgram_share / len(signature)
        entries.extend(
            SignatureEntry(i + 1, gram, fraction)
            for i, gram in enumerate(signature)
        )
    return tuple(entries)


def signature_entries_cached(
    token: str, hasher: MinHasher, config: MatchConfig, cache: "LRUCache | None"
) -> tuple[SignatureEntry, ...]:
    """:func:`signature_entries` memoized through a shared per-token cache.

    ``cache`` is an :class:`repro.core.cache.LRUCache` (or None to bypass).
    Input tokens repeat massively across a dirty batch, so the expansion —
    min-hashing plus entry construction — is paid once per distinct token
    per matcher.  The cache key is the token alone: one cache must only
    ever serve matchers sharing a (hasher, config) pair, which
    :class:`repro.core.cache.MatcherCaches` guarantees by being per-matcher.
    """
    if cache is None:
        return signature_entries(token, hasher, config)
    return cache.get_or_compute(
        token, lambda: signature_entries(token, hasher, config)
    )
