"""Relation schemas for the ETI and the pre-ETI (§4.2)."""

from __future__ import annotations

from repro.db.types import Column, ColumnType

# The clustered-index key of the ETI, in index order.
ETI_KEY = ("qgram", "coordinate", "column")

# Name of the ETI's clustered index on [QGram, Coordinate, Column].
ETI_INDEX = "eti_key_idx"


def pre_eti_columns() -> list[Column]:
    """Schema of the temporary pre-ETI relation: [QGram, Coordinate, Column, Tid]."""
    return [
        Column("qgram", ColumnType.STR),
        Column("coordinate", ColumnType.INT),
        Column("column", ColumnType.INT),
        Column("tid", ColumnType.INT),
    ]


def eti_columns() -> list[Column]:
    """Schema of the ETI relation: [QGram, Coordinate, Column, Frequency, Tid-list].

    ``tid_list`` is nullable: stop q-grams (frequency above the threshold)
    store NULL instead of their — useless and enormous — tid-lists.
    """
    return [
        Column("qgram", ColumnType.STR),
        Column("coordinate", ColumnType.INT),
        Column("column", ColumnType.INT),
        Column("frequency", ColumnType.INT),
        Column("tid_list", ColumnType.INT_LIST, nullable=True),
    ]
