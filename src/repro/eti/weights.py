"""Token weights served from the ETI itself (§4.3.1's alternative).

"We can store these frequencies in the ETI and fetch them by issuing a SQL
query per token."  With the Q+T signature scheme the ETI already contains
one row per (token, column) at coordinate 0 whose ``frequency`` field is
exactly ``freq(t, i)``, so IDF weights can be computed with one clustered-
index lookup per token — no separate main-memory token-frequency cache.

This trades the cache's memory for a lookup per weight request (which the
paper flags as the slower option); it exists so deployments with tight
memory, or those wanting a single persisted artifact, can run without the
cache.  Column-average weights for unseen tokens are computed lazily from
one scan over the ETI's coordinate-0 rows and then memoized.
"""

from __future__ import annotations

import math

from repro.eti.index import EtiIndex
from repro.eti.signature import TOKEN_COORDINATE


class EtiWeightProvider:
    """IDF weights backed by ETI coordinate-0 (whole-token) rows.

    Requires an ETI built with the ``Q+T`` signature scheme; an ETI without
    token rows makes every token look unseen, which this class detects and
    rejects at construction time.
    """

    def __init__(self, eti: EtiIndex, num_tuples: int, num_columns: int) -> None:
        if num_tuples < 1:
            raise ValueError("reference relation must be non-empty")
        self.eti = eti
        self.num_tuples = num_tuples
        self.num_columns = num_columns
        self._averages: list[float] | None = None
        if not self._has_token_rows():
            raise ValueError(
                "the ETI has no coordinate-0 token rows; build it with the "
                "Q+T signature scheme to serve weights from it"
            )

    def _has_token_rows(self) -> bool:
        return any(
            row[1] == TOKEN_COORDINATE for row in self.eti.relation.scan()
        )

    def frequency(self, token: str, column: int) -> int:
        """``freq(t, i)`` via one clustered-index lookup."""
        entry = self.eti.lookup(token, TOKEN_COORDINATE, column)
        return entry.frequency if entry is not None else 0

    def weight(self, token: str, column: int) -> float:
        """``w(t, i)``: IDF if present, column-average otherwise."""
        freq = self.frequency(token, column)
        if freq > 0:
            return math.log(self.num_tuples / freq)
        return self._column_average(column)

    def _column_average(self, column: int) -> float:
        if self._averages is None:
            totals = [0.0] * self.num_columns
            counts = [0] * self.num_columns
            for row in self.eti.relation.scan():
                _, coordinate, col, frequency, _ = row
                if coordinate != TOKEN_COORDINATE or not 0 <= col < self.num_columns:
                    continue
                totals[col] += math.log(self.num_tuples / frequency)
                counts[col] += 1
            fallback = math.log(self.num_tuples) if self.num_tuples > 1 else 1.0
            self._averages = [
                totals[c] / counts[c] if counts[c] else fallback
                for c in range(self.num_columns)
            ]
        return self._averages[column]
