"""Building the ETI from a reference relation (§4.2).

The build is the paper's two-phase, out-of-core pipeline:

1. *pre-ETI phase*: scan the reference relation; for every column-i token
   ``t`` of tuple ``r`` and every signature coordinate ``(j, s)`` of ``t``,
   append the row ``[s, j, i, r]`` to the temporary pre-ETI relation.
2. *ETI-query phase*: sort the pre-ETI on ``(QGram, Coordinate, Column,
   Tid)`` with an external merge sort, then scan the sorted stream grouping
   equal ``(QGram, Coordinate, Column)`` prefixes into ETI tuples
   ``[s, j, i, frequency, tid-list]``.  Tid-lists above the stop-q-gram
   threshold are stored as NULL.
3. Build the clustered B+-tree index on ``[QGram, Coordinate, Column]``.

The obvious all-in-main-memory alternative is exactly what the paper rules
out ("the combined size of all tid-lists is usually larger than the amount
of available main memory"); the `sort_memory_limit` knob bounds the rows
held in memory during the sort.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.config import MatchConfig
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.tokens import TupleTokens
from repro.db.database import Database
from repro.db.exsort import SortStats
from repro.db.query import GroupAggregate, SeqScan, Sort
from repro.eti.index import EtiIndex
from repro.eti.schema import ETI_INDEX, ETI_KEY, eti_columns, pre_eti_columns
from repro.eti.signature import signature_entries


@dataclass
class BuildStats:
    """Accounting for one ETI build."""

    reference_tuples: int = 0
    pre_eti_rows: int = 0
    eti_rows: int = 0
    tid_entries: int = 0
    """Total postings stored (sum of tid-list lengths, stop rows excluded)."""
    stop_qgrams: int = 0
    max_tid_list: int = 0
    sort: SortStats = field(default_factory=SortStats)
    elapsed_seconds: float = 0.0


class EtiBuilder:
    """Builds an ETI relation plus clustered index inside a database."""

    def __init__(
        self,
        db: Database,
        config: MatchConfig,
        hasher: MinHasher | None = None,
        sort_memory_limit: int = 200_000,
    ) -> None:
        self.db = db
        self.config = config
        self.hasher = hasher if hasher is not None else MinHasher(
            config.q, config.signature_size, config.seed
        )
        self.sort_memory_limit = sort_memory_limit

    def build(
        self,
        reference: ReferenceTable,
        eti_name: str = "eti",
        keep_pre_eti: bool = False,
    ) -> tuple[EtiIndex, BuildStats]:
        """Run the full pipeline; returns the queryable index and stats."""
        stats = BuildStats()
        started = time.perf_counter()

        pre_eti_name = f"{eti_name}_pre"
        pre_eti = self.db.create_relation(pre_eti_name, pre_eti_columns())
        for tid, values in reference.scan():
            stats.reference_tuples += 1
            tokens = TupleTokens.from_values(values)
            for column in range(tokens.num_columns):
                for token in tokens.column_tokens(column):
                    for entry in signature_entries(token, self.hasher, self.config):
                        pre_eti.insert((entry.gram, entry.coordinate, column, tid))
                        stats.pre_eti_rows += 1

        eti = self.db.create_relation(eti_name, eti_columns())
        plan = GroupAggregate(
            Sort(
                SeqScan(pre_eti),
                key_columns=("qgram", "coordinate", "column", "tid"),
                memory_limit=self.sort_memory_limit,
                stats=stats.sort,
            ),
            group_columns=ETI_KEY,
            aggregates=(
                # Input arrives tid-sorted; dict.fromkeys dedupes while
                # preserving order (a tuple with two same-column tokens
                # sharing a coordinate gram must appear once per the
                # paper's "list of tids of all reference tuples").
                ("tid_list", lambda group: list(dict.fromkeys(r[3] for r in group))),
            ),
        )
        threshold = self.config.stop_qgram_threshold
        for qgram, coordinate, column, tid_list in plan:
            frequency = len(tid_list)
            if frequency > threshold:
                tid_list = None
                stats.stop_qgrams += 1
            else:
                stats.max_tid_list = max(stats.max_tid_list, frequency)
                stats.tid_entries += frequency
            eti.insert((qgram, coordinate, column, frequency, tid_list))
            stats.eti_rows += 1

        # Rows were inserted in (qgram, coordinate, column) order, so index
        # construction sees sorted keys — the clustered-index build of §4.2.
        eti.create_index(ETI_INDEX, list(ETI_KEY), unique=True)

        if not keep_pre_eti:
            self.db.drop_relation(pre_eti_name)
        stats.elapsed_seconds = time.perf_counter() - started
        return EtiIndex(eti), stats


def build_eti(
    db: Database,
    reference: ReferenceTable,
    config: MatchConfig,
    hasher: MinHasher | None = None,
    eti_name: str = "eti",
    sort_memory_limit: int = 200_000,
) -> tuple[EtiIndex, BuildStats]:
    """Convenience wrapper around :class:`EtiBuilder`."""
    builder = EtiBuilder(db, config, hasher, sort_memory_limit)
    return builder.build(reference, eti_name=eti_name)
