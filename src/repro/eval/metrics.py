"""Evaluation metrics (§6.1 "Metrics").

- *Accuracy*: fraction of input tuples whose seed tuple is returned as the
  closest reference tuple.
- *Normalized elapsed time*: elapsed time divided by the time the naive
  algorithm needs for ONE input tuple.  An indexed strategy processing a
  whole 1655-tuple batch in under 2.5 units is the paper's headline
  efficiency result.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def accuracy(predictions: Iterable[tuple[int | None, int]]) -> float:
    """Fraction of ``(predicted_tid, target_tid)`` pairs that agree.

    ``None`` predictions (no match returned) count as misses.  An empty
    input yields 0.0 rather than dividing by zero.
    """
    hits = 0
    total = 0
    for predicted, target in predictions:
        total += 1
        if predicted is not None and predicted == target:
            hits += 1
    return hits / total if total else 0.0


def normalized_time(elapsed_seconds: float, naive_unit_seconds: float) -> float:
    """Elapsed time in units of one naive-algorithm input tuple."""
    if naive_unit_seconds <= 0:
        raise ValueError("naive unit time must be positive")
    return elapsed_seconds / naive_unit_seconds


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0
