"""ASCII bar charts for figure output.

The paper's Figures 5–10 are bar charts; these helpers render the same
series as terminal bar charts so a bench run visually resembles the
figures it reproduces (and EXPERIMENTS.md can embed them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.eval.figures import FigureResult

DEFAULT_WIDTH = 50


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = DEFAULT_WIDTH,
    max_value: float | None = None,
    value_format: str = "{:.2f}",
) -> str:
    """Render one horizontal bar chart.

    Bars scale to ``max_value`` (default: the series maximum), so charts
    of the same metric are comparable when given a shared ceiling.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if width < 1:
        raise ValueError("width must be positive")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    ceiling = max_value if max_value is not None else max(values)
    if ceiling <= 0:
        ceiling = 1.0
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        filled = int(round(min(max(value, 0.0), ceiling) / ceiling * width))
        bar = "█" * filled + "·" * (width - filled)
        rendered = value_format.format(value)
        lines.append(f"{label.ljust(label_width)} |{bar}| {rendered}")
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = DEFAULT_WIDTH,
    value_format: str = "{:.2f}",
) -> str:
    """Render several series per label (e.g. one bar per dataset).

    All series share one scale so the groups are visually comparable —
    the layout of the paper's multi-dataset figures.
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(f"series {name!r} length does not match labels")
    lines: list[str] = []
    if title:
        lines.append(title)
    all_values = [v for values in series.values() for v in values]
    ceiling = max(all_values) if all_values else 1.0
    if ceiling <= 0:
        ceiling = 1.0
    label_width = max((len(label) for label in labels), default=0)
    series_width = max((len(name) for name in series), default=0)
    for index, label in enumerate(labels):
        for name, values in series.items():
            value = values[index]
            filled = int(round(min(max(value, 0.0), ceiling) / ceiling * width))
            bar = "█" * filled + "·" * (width - filled)
            rendered = value_format.format(value)
            lines.append(
                f"{label.ljust(label_width)} {name.ljust(series_width)} |{bar}| {rendered}"
            )
        lines.append("")
    if lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def figure_chart(
    figure_result: "FigureResult", value_column: int = 1, width: int = DEFAULT_WIDTH
) -> str:
    """Bar-chart one column of a :class:`~repro.eval.figures.FigureResult`."""
    labels = [str(row[0]) for row in figure_result.rows]
    values = [float(row[value_column]) for row in figure_result.rows]
    title = f"{figure_result.experiment} — {figure_result.headers[value_column]}"
    return bar_chart(labels, values, title=title, width=width)
