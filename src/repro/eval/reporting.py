"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned text table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(label: str, pairs: Sequence[tuple[str, float]]) -> str:
    """Render a one-line named series: ``label: k1=v1 k2=v2 ...``."""
    body = " ".join(f"{key}={value:.3f}" for key, value in pairs)
    return f"{label}: {body}"
