"""Naive full-scan matching with a pluggable similarity function.

Used by the ed-vs-fms quality comparison (§6.2.1.1): "Because we want to
compare the quality of similarity functions and not the efficiency of
algorithms ... we use the naive algorithm to identify the best fuzzy match
for each input tuple."
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.reference import ReferenceTable

SimilarityFn = Callable[
    [Sequence[str | None], Sequence[str | None]], float
]


def naive_best_match(
    reference: ReferenceTable,
    input_values: Sequence[str | None],
    similarity: SimilarityFn,
) -> tuple[int | None, float]:
    """Scan the reference relation; return ``(best_tid, best_similarity)``.

    Ties break toward the smaller tid for determinism.
    """
    best_tid: int | None = None
    best_similarity = -1.0
    for tid, values in reference.scan():
        score = similarity(input_values, values)
        if score > best_similarity or (
            score == best_similarity and best_tid is not None and tid < best_tid
        ):
            best_similarity = score
            best_tid = tid
    return best_tid, best_similarity
