"""Evaluation harness: metrics, experiment runners, figure drivers.

Reproduces every table and figure of the paper's Section 6 (see DESIGN.md
for the per-experiment index).  The heavy lifting lives in
:class:`repro.eval.harness.Workbench` (build reference + caches + ETIs,
run query batches, aggregate statistics); :mod:`repro.eval.figures` slices
those aggregates into the exact series each paper figure reports.
"""

from repro.eval.harness import RunStats, Workbench
from repro.eval.metrics import accuracy, normalized_time
from repro.eval.naive import naive_best_match
from repro.eval.reporting import format_table

__all__ = [
    "accuracy",
    "format_table",
    "naive_best_match",
    "normalized_time",
    "RunStats",
    "Workbench",
]
