"""The experiment workbench.

One :class:`Workbench` owns a synthetic Customer reference relation, its
token-frequency cache, the D1/D2/D3 dirty datasets, and lazily-built ETIs
(one per signature strategy).  Experiment drivers ask it to run query
batches and get back :class:`RunStats` aggregates, from which every paper
figure is sliced.

Scale note: the paper runs 1.7M reference tuples and 1655 inputs per
dataset on SQL Server; the workbench defaults to laptop-scale (see
DESIGN.md §7) and everything is a constructor knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.weights import TokenFrequencyCache, build_frequency_cache
from repro.data.datasets import Dataset, DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.eti.builder import BuildStats, build_eti
from repro.eval.metrics import accuracy, mean

# The seven strategies of §6.2, in the figures' display order.
PAPER_STRATEGIES: tuple[tuple[SignatureScheme, int], ...] = (
    (SignatureScheme.QGRAMS_PLUS_TOKEN, 0),
    (SignatureScheme.QGRAMS, 1),
    (SignatureScheme.QGRAMS_PLUS_TOKEN, 1),
    (SignatureScheme.QGRAMS, 2),
    (SignatureScheme.QGRAMS_PLUS_TOKEN, 2),
    (SignatureScheme.QGRAMS, 3),
    (SignatureScheme.QGRAMS_PLUS_TOKEN, 3),
)


@dataclass
class RunStats:
    """Aggregate statistics of one (strategy, dataset) query batch."""

    strategy: str = ""
    dataset: str = ""
    queries: int = 0
    accuracy: float = 0.0
    elapsed_seconds: float = 0.0
    avg_eti_lookups: float = 0.0
    avg_tids_processed: float = 0.0
    avg_candidates_fetched: float = 0.0
    osc_success_fraction: float = 0.0
    avg_fetched_osc_success: float = 0.0
    avg_fetched_osc_failure: float = 0.0


@dataclass
class EtiHandle:
    """A built ETI plus its build statistics."""

    index: object
    build_stats: BuildStats
    config: MatchConfig


class Workbench:
    """Reference relation + caches + datasets + per-strategy ETIs."""

    def __init__(
        self,
        num_reference: int = 5000,
        num_inputs: int = 200,
        seed: int = 42,
        base_config: MatchConfig | None = None,
        dataset_names: tuple[str, ...] = ("D1", "D2", "D3"),
        business_fraction: float = 0.4,
    ) -> None:
        self.seed = seed
        self.num_inputs = num_inputs
        self.base_config = base_config if base_config is not None else MatchConfig()
        self.db = Database.in_memory()
        self.reference = ReferenceTable(self.db, "customer", list(CUSTOMER_COLUMNS))

        customers = generate_customers(
            num_reference, seed=seed, business_fraction=business_fraction, unique=True
        )
        self.reference.load((c.tid, c.values) for c in customers)
        self._reference_tuples = [(c.tid, c.values) for c in customers]

        self.weights: TokenFrequencyCache = build_frequency_cache(
            self.reference.scan_values(), self.reference.num_columns
        )

        self.datasets: dict[str, Dataset] = {}
        for name in dataset_names:
            spec = DatasetSpec.preset(name)
            # Stable per-dataset seed offset (builtin str hash is salted
            # per process, which would break reproducibility).
            offset = sum(ord(ch) for ch in name)
            self.datasets[name] = make_dataset(
                self._reference_tuples, spec, num_inputs, seed=seed + offset
            )

        self._etis: dict[str, EtiHandle] = {}
        self._naive_unit: float | None = None

    # ------------------------------------------------------------------
    # Configuration / construction
    # ------------------------------------------------------------------

    def config_for(self, scheme: SignatureScheme, signature_size: int) -> MatchConfig:
        """The base config with the given signature strategy."""
        return self.base_config.with_(scheme=scheme, signature_size=signature_size)

    def eti_for(self, config: MatchConfig) -> EtiHandle:
        """Build (or reuse) the ETI for ``config``'s signature strategy."""
        label = config.strategy_label
        handle = self._etis.get(label)
        if handle is None:
            index, stats = build_eti(
                self.db, self.reference, config, eti_name=f"eti_{label.replace('+', 'p')}"
            )
            handle = EtiHandle(index=index, build_stats=stats, config=config)
            self._etis[label] = handle
        return handle

    def matcher_for(self, config: MatchConfig) -> FuzzyMatcher:
        """A matcher wired to the (possibly cached) ETI for ``config``."""
        handle = self.eti_for(config)
        hasher = MinHasher(config.q, config.signature_size, config.seed)
        return FuzzyMatcher(
            self.reference, self.weights, config, handle.index, hasher
        )

    def custom_dataset(self, spec: DatasetSpec, count: int | None = None, seed_offset: int = 0) -> Dataset:
        """Build an extra dataset (e.g. Type II) against this reference."""
        frequency_lookup = (
            self.weights.frequency if spec.method == "type2" else None
        )
        return make_dataset(
            self._reference_tuples,
            spec,
            count if count is not None else self.num_inputs,
            seed=self.seed + 17 + seed_offset,
            frequency_lookup=frequency_lookup,
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def naive_unit_time(self, sample_size: int = 3) -> float:
        """Seconds the naive algorithm needs for one input tuple (averaged).

        This is the normalization unit of the paper's elapsed-time metric.
        Measured once and cached.
        """
        if self._naive_unit is None:
            dataset = next(iter(self.datasets.values()))
            matcher = FuzzyMatcher(self.reference, self.weights, self.base_config)
            sample = dataset.inputs[:sample_size]
            started = time.perf_counter()
            for dirty in sample:
                matcher.match(dirty.values, strategy="naive")
            self._naive_unit = (time.perf_counter() - started) / max(len(sample), 1)
        return self._naive_unit

    def run_batch(
        self,
        config: MatchConfig,
        dataset_name: str,
        strategy: str | None = None,
        dataset: Dataset | None = None,
    ) -> RunStats:
        """Run one dataset through one strategy; aggregate the statistics."""
        if dataset is None:
            dataset = self.datasets[dataset_name]
        matcher = self.matcher_for(config)
        stats = RunStats(strategy=config.strategy_label, dataset=dataset_name)
        predictions: list[tuple[int | None, int]] = []
        lookups: list[float] = []
        tids: list[float] = []
        fetched_success: list[float] = []
        fetched_failure: list[float] = []
        osc_successes = 0
        started = time.perf_counter()
        for dirty in dataset.inputs:
            result = matcher.match(dirty.values, strategy=strategy)
            best = result.best
            predictions.append((best.tid if best else None, dirty.target_tid))
            lookups.append(result.stats.eti_lookups)
            tids.append(result.stats.tids_processed)
            if result.stats.osc_succeeded:
                osc_successes += 1
                fetched_success.append(result.stats.candidates_fetched)
            else:
                fetched_failure.append(result.stats.candidates_fetched)
        stats.elapsed_seconds = time.perf_counter() - started
        stats.queries = len(dataset.inputs)
        stats.accuracy = accuracy(predictions)
        stats.avg_eti_lookups = mean(lookups)
        stats.avg_tids_processed = mean(tids)
        stats.avg_candidates_fetched = mean(fetched_success + fetched_failure)
        stats.osc_success_fraction = (
            osc_successes / stats.queries if stats.queries else 0.0
        )
        stats.avg_fetched_osc_success = mean(fetched_success)
        stats.avg_fetched_osc_failure = mean(fetched_failure)
        return stats

    def close(self) -> None:
        """Release the underlying database."""
        self.db.close()
