"""Experiment drivers: one function per paper table/figure (§6.2).

Each driver returns a :class:`FigureResult` — the same rows/series the
paper reports, ready to print.  Heavy state (reference relation, ETIs,
query batches) lives in a :class:`~repro.eval.harness.Workbench`; the
strategy grid (every signature strategy run over every dataset) is computed
once with :func:`run_strategy_grid` and sliced by the per-figure functions,
exactly how figures 5, 6, 8, 9, 10 share one set of runs in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.fms import fms
from repro.core.strings import tuple_edit_similarity
from repro.data.datasets import DatasetSpec, ED_VS_FMS_PROBABILITIES
from repro.eval.harness import PAPER_STRATEGIES, RunStats, Workbench
from repro.eval.metrics import accuracy, normalized_time
from repro.eval.naive import naive_best_match
from repro.eval.reporting import format_table


@dataclass
class FigureResult:
    """Rows of one reproduced table/figure."""

    experiment: str
    headers: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    def render(self) -> str:
        """The figure as an aligned text table."""
        return format_table(self.headers, self.rows, title=self.experiment)


def strategy_labels(
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> list[str]:
    """Display labels (Q_H / Q+T_H) for a list of strategy tuples."""
    return [f"{scheme.value}_{size}" for scheme, size in strategies]


# ---------------------------------------------------------------------------
# §6.2.1.1 — ed vs fms accuracy (the un-numbered quality table)
# ---------------------------------------------------------------------------


def run_ed_vs_fms(workbench: Workbench, num_inputs: int = 100) -> FigureResult:
    """Accuracy of fms vs ed under Type I and Type II errors.

    Both similarity functions are evaluated with the naive full-scan
    matcher so only quality (not retrieval) is compared, per the paper.
    """
    config = workbench.base_config
    weights = workbench.weights

    def fms_similarity(u: Sequence[str | None], v: Sequence[str | None]) -> float:
        return fms(u, v, weights, config)

    result = FigureResult(
        experiment="§6.2.1.1 accuracy: fms vs ed (naive matcher)",
        headers=("error_model", "fms", "ed"),
    )
    for method in ("type1", "type2"):
        spec = DatasetSpec(
            f"edfms-{method}", ED_VS_FMS_PROBABILITIES, method=method
        )
        dataset = workbench.custom_dataset(spec, count=num_inputs)
        fms_predictions = []
        ed_predictions = []
        for dirty in dataset.inputs:
            tid_fms, _ = naive_best_match(
                workbench.reference, dirty.values, fms_similarity
            )
            tid_ed, _ = naive_best_match(
                workbench.reference, dirty.values, tuple_edit_similarity
            )
            fms_predictions.append((tid_fms, dirty.target_tid))
            ed_predictions.append((tid_ed, dirty.target_tid))
        result.rows.append(
            (
                "Type I" if method == "type1" else "Type II",
                accuracy(fms_predictions),
                accuracy(ed_predictions),
            )
        )
    return result


# ---------------------------------------------------------------------------
# The strategy grid shared by figures 5, 6, 8, 9, 10
# ---------------------------------------------------------------------------


def run_strategy_grid(
    workbench: Workbench,
    datasets: Sequence[str] = ("D1", "D2", "D3"),
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> dict[tuple[str, str], RunStats]:
    """Run every (dataset, strategy) pair once; keyed by (dataset, label)."""
    grid: dict[tuple[str, str], RunStats] = {}
    for scheme, size in strategies:
        config = workbench.config_for(scheme, size)
        for dataset_name in datasets:
            stats = workbench.run_batch(config, dataset_name)
            grid[(dataset_name, config.strategy_label)] = stats
    return grid


def fig5_accuracy(
    grid: dict[tuple[str, str], RunStats],
    datasets: Sequence[str] = ("D1", "D2", "D3"),
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> FigureResult:
    """Figure 5: accuracy per strategy per dataset."""
    labels = strategy_labels(strategies)
    result = FigureResult(
        experiment="Figure 5: accuracy on D1, D2, D3 (%)",
        headers=("strategy",) + tuple(datasets),
    )
    for label in labels:
        row: list[Any] = [label]
        for dataset in datasets:
            row.append(100.0 * grid[(dataset, label)].accuracy)
        result.rows.append(tuple(row))
    return result


def fig6_times(
    grid: dict[tuple[str, str], RunStats],
    naive_unit_seconds: float,
    datasets: Sequence[str] = ("D1", "D2", "D3"),
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> FigureResult:
    """Figure 6: normalized elapsed time per strategy per dataset.

    Values below the number of input tuples mean the strategy beats the
    naive algorithm; the paper reports < 2.5 for 1655 tuples.
    """
    labels = strategy_labels(strategies)
    result = FigureResult(
        experiment="Figure 6: normalized elapsed time (naive-tuple units)",
        headers=("strategy",) + tuple(datasets),
    )
    for label in labels:
        row: list[Any] = [label]
        for dataset in datasets:
            stats = grid[(dataset, label)]
            row.append(normalized_time(stats.elapsed_seconds, naive_unit_seconds))
        result.rows.append(tuple(row))
    return result


def fig7_build_times(
    workbench: Workbench,
    naive_unit_seconds: float,
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> FigureResult:
    """Figure 7: normalized ETI building time per strategy.

    The paper's reading: every build lands under ~7 naive-tuple units, so
    the ETI pays for itself after ~10 fuzzy match queries.
    """
    result = FigureResult(
        experiment="Figure 7: ETI build time (naive-tuple units)",
        headers=("strategy", "normalized_time", "eti_rows", "pre_eti_rows"),
    )
    for scheme, size in strategies:
        config = workbench.config_for(scheme, size)
        handle = workbench.eti_for(config)
        result.rows.append(
            (
                config.strategy_label,
                normalized_time(handle.build_stats.elapsed_seconds, naive_unit_seconds),
                handle.build_stats.eti_rows,
                handle.build_stats.pre_eti_rows,
            )
        )
    return result


def fig8_candidates(
    grid: dict[tuple[str, str], RunStats],
    dataset: str = "D2",
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> FigureResult:
    """Figure 8: reference tuples fetched per input tuple (OSC split)."""
    result = FigureResult(
        experiment=f"Figure 8: reference tuples fetched per input tuple ({dataset})",
        headers=("strategy", "overall", "osc_success", "osc_failure"),
    )
    for label in strategy_labels(strategies):
        stats = grid[(dataset, label)]
        result.rows.append(
            (
                label,
                stats.avg_candidates_fetched,
                stats.avg_fetched_osc_success,
                stats.avg_fetched_osc_failure,
            )
        )
    return result


def fig9_tids(
    grid: dict[tuple[str, str], RunStats],
    dataset: str = "D2",
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> FigureResult:
    """Figure 9: tids processed per input tuple."""
    result = FigureResult(
        experiment=f"Figure 9: tids processed per input tuple ({dataset})",
        headers=("strategy", "avg_tids_processed", "avg_eti_lookups"),
    )
    for label in strategy_labels(strategies):
        stats = grid[(dataset, label)]
        result.rows.append((label, stats.avg_tids_processed, stats.avg_eti_lookups))
    return result


def fig10_osc(
    grid: dict[tuple[str, str], RunStats],
    dataset: str = "D2",
    strategies: Sequence[tuple] = PAPER_STRATEGIES,
) -> FigureResult:
    """Figure 10: OSC success/failure fractions per strategy."""
    result = FigureResult(
        experiment=f"Figure 10: OSC success and failure fractions ({dataset})",
        headers=("strategy", "success_fraction", "failure_fraction"),
    )
    for label in strategy_labels(strategies):
        stats = grid[(dataset, label)]
        result.rows.append(
            (label, stats.osc_success_fraction, 1.0 - stats.osc_success_fraction)
        )
    return result
