"""Dataset presets (Table 5) and dirty-dataset construction.

The paper's evaluation datasets are created by sampling clean reference
tuples and pushing them through an error model; every dirty input remembers
its *seed tuple* (the reference tuple it was generated from), which is what
accuracy is measured against: "the percentage of input tuples for which a
fuzzy match algorithm identifies the seed tuple ... as the closest
reference tuple".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import random

from repro.data.errors import ErrorModel, FrequencyLookup, InjectionReport

# Table 5: per-column error probabilities [name, city, state, zipcode].
DATASET_PRESETS: dict[str, tuple[float, float, float, float]] = {
    "D1": (0.90, 0.90, 0.90, 0.90),
    "D2": (0.80, 0.50, 0.50, 0.60),
    "D3": (0.70, 0.50, 0.50, 0.25),
}

# §6.2.1.1: probabilities used for the ed-vs-fms quality comparison.
ED_VS_FMS_PROBABILITIES: tuple[float, float, float, float] = (0.90, 0.50, 0.50, 0.60)


@dataclass(frozen=True)
class DatasetSpec:
    """A named error-injection configuration."""

    name: str
    column_error_probabilities: tuple[float, ...]
    method: str = "type1"

    @classmethod
    def preset(cls, name: str, method: str = "type1") -> "DatasetSpec":
        """One of the paper's D1/D2/D3 presets."""
        try:
            probabilities = DATASET_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; choose from {sorted(DATASET_PRESETS)}"
            ) from None
        return cls(name, probabilities, method)


@dataclass(frozen=True)
class DirtyTuple:
    """One erroneous input plus the tid of the clean tuple it came from."""

    values: tuple[str | None, ...]
    target_tid: int
    report: InjectionReport


@dataclass
class Dataset:
    """A dirty input dataset generated from a reference relation."""

    spec: DatasetSpec
    inputs: list[DirtyTuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.inputs)

    def error_counts(self) -> dict[str, int]:
        """How many injected errors of each type the dataset contains."""
        counts: dict[str, int] = {}
        for dirty in self.inputs:
            for _, error in dirty.report.errors:
                counts[error.value] = counts.get(error.value, 0) + 1
        return counts


def make_dataset(
    reference_tuples: Sequence[tuple[int, Sequence[str | None]]],
    spec: DatasetSpec,
    count: int,
    seed: int = 7,
    frequency_lookup: FrequencyLookup | None = None,
) -> Dataset:
    """Sample ``count`` seed tuples (without replacement) and corrupt them.

    ``reference_tuples`` is a materialized sequence of ``(tid, values)``.
    Sampling and corruption are deterministic in ``seed``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count > len(reference_tuples):
        raise ValueError(
            f"cannot sample {count} tuples from {len(reference_tuples)} reference tuples"
        )
    rng = random.Random(seed)
    seeds = rng.sample(range(len(reference_tuples)), count)
    model = ErrorModel(
        spec.column_error_probabilities,
        method=spec.method,
        frequency_lookup=frequency_lookup,
        seed=rng.randrange(2**31),
    )
    dataset = Dataset(spec=spec)
    for index in seeds:
        tid, values = reference_tuples[index]
        corrupted, report = model.corrupt(values)
        dataset.inputs.append(DirtyTuple(corrupted, tid, report))
    return dataset
