"""Synthetic Product reference relation — the paper's other domain.

The introduction's motivating scenario: "An enterprise maintaining a
relation consisting of all its products may ascertain whether or not a
sales record from a distributor describes a valid product by matching the
product attributes (e.g., Part Number and Description) of the sales record
with the Product relation."

Schema: ``Product[part_number, product_name, category]``.  Part numbers
are short, structured, near-unique tokens (very high IDF — exactly the
kind of token the paper argues must not be ignored when erroneous);
product names are multi-token with shared vocabulary; categories are few
and low-weight.  The fuzzy match machinery is domain independent, so the
same ``ErrorModel`` applies (``name_column=1`` — part numbers *can* go
missing on a sales record, unlike customer names).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

PRODUCT_COLUMNS = ("part_number", "product_name", "category")

_ADJECTIVES = (
    "heavy", "compact", "industrial", "precision", "standard", "premium",
    "reinforced", "galvanized", "insulated", "adjustable", "portable",
    "stainless", "flexible", "digital", "hydraulic", "pneumatic", "magnetic",
    "thermal", "modular", "sealed",
)
_NOUNS = (
    "bearing", "valve", "gasket", "coupling", "flange", "bracket", "spindle",
    "manifold", "actuator", "compressor", "regulator", "housing", "rotor",
    "impeller", "bushing", "fastener", "washer", "spring", "sensor", "relay",
    "solenoid", "piston", "cylinder", "sprocket", "pulley", "damper",
    "filter", "nozzle", "clamp", "hinge",
)
_VARIANTS = (
    "assembly", "kit", "unit", "set", "pack", "module", "cartridge",
    "element", "insert", "adapter",
)
_CATEGORIES = (
    "hydraulics", "pneumatics", "fasteners", "electrical", "bearings",
    "seals", "power transmission", "filtration", "instrumentation",
    "hardware",
)
_SERIES = ("A", "B", "C", "D", "E", "H", "K", "M", "R", "T", "X", "Z")


def _zipf_weights(n: int, exponent: float = 1.05) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


@dataclass(frozen=True)
class ProductTuple:
    """One clean product reference tuple."""

    tid: int
    part_number: str
    product_name: str
    category: str

    @property
    def values(self) -> tuple[str, str, str]:
        return (self.part_number, self.product_name, self.category)


class ProductGenerator:
    """Seeded generator of product tuples with near-unique part numbers."""

    def __init__(self, seed: int = 77) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._adjective_weights = _zipf_weights(len(_ADJECTIVES))
        self._noun_weights = _zipf_weights(len(_NOUNS))
        self._category_weights = _zipf_weights(len(_CATEGORIES))

    def _part_number(self) -> str:
        rng = self._rng
        series = rng.choice(_SERIES) + rng.choice(_SERIES)
        return f"{series}-{rng.randrange(1000, 9999)}-{rng.choice(_SERIES)}"

    def _name(self) -> str:
        rng = self._rng
        parts = [
            rng.choices(_ADJECTIVES, weights=self._adjective_weights)[0],
            rng.choices(_NOUNS, weights=self._noun_weights)[0],
        ]
        if rng.random() < 0.5:
            parts.append(rng.choice(_VARIANTS))
        return " ".join(parts)

    def generate(self, count: int, start_tid: int = 0) -> Iterator[ProductTuple]:
        """Yield ``count`` product tuples with sequential tids."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for offset in range(count):
            category = self._rng.choices(
                _CATEGORIES, weights=self._category_weights
            )[0]
            yield ProductTuple(
                start_tid + offset, self._part_number(), self._name(), category
            )


def generate_products(
    count: int, seed: int = 77, unique: bool = True
) -> list[ProductTuple]:
    """Generate ``count`` products; with ``unique`` (default) no two share
    all three attribute values."""
    generator = ProductGenerator(seed=seed)
    if not unique:
        return list(generator.generate(count))
    seen: set[tuple[str, str, str]] = set()
    result: list[ProductTuple] = []
    rounds = 0
    while len(result) < count:
        rounds += 1
        if rounds > 200:
            raise ValueError(f"could not generate {count} unique products")
        for candidate in generator.generate(count - len(result)):
            if candidate.values in seen:
                continue
            seen.add(candidate.values)
            result.append(ProductTuple(len(result), *candidate.values))
    return result
