"""Error injection — the paper's Table 4 taxonomy, Type I and Type II.

Per column ``i`` an error is introduced with probability ``p_i`` (errors
across columns are independent).  An erroneous column receives one error
drawn from the conditional distribution of Table 4, which differs between
the name column and the rest (no missing values in the name column: "input
tuples with a missing name cannot possibly be matched with their target").

Token selection within a column distinguishes the two injection methods:

- *Type I*: every token of the column is equally likely to be corrupted.
- *Type II*: a token is corrupted with probability proportional to its
  frequency in the reference relation — frequent tokens like 'corporation'
  accumulate more erroneous variants ('corp', 'co.', 'corpn', 'inc.') in
  real data.  Type II needs a frequency oracle (the token-frequency cache).
"""

from __future__ import annotations

import enum
import random
import string
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.data.pools import ABBREVIATIONS


class ErrorType(enum.Enum):
    """Table 4's six error classes."""

    SPELLING = "spelling"
    ABBREVIATION = "abbreviation"
    MISSING = "missing"
    TRUNCATION = "truncation"
    TOKEN_MERGE = "token_merge"
    TOKEN_TRANSPOSITION = "token_transposition"


_ERROR_ORDER = (
    ErrorType.SPELLING,
    ErrorType.ABBREVIATION,
    ErrorType.MISSING,
    ErrorType.TRUNCATION,
    ErrorType.TOKEN_MERGE,
    ErrorType.TOKEN_TRANSPOSITION,
)

# Table 4 conditional probabilities P(e_j | column i has an error).  The
# name-column row of the printed table sums to 1.05; we keep the printed
# values and normalize, which preserves all ratios.
_NAME_COLUMN_PROBABILITIES = (0.5, 0.25, 0.0, 0.1, 0.1, 0.1)
_OTHER_COLUMN_PROBABILITIES = (0.4, 0.25, 0.1, 0.1, 0.1, 0.05)


def _normalize(probabilities: Sequence[float]) -> tuple[float, ...]:
    total = sum(probabilities)
    return tuple(p / total for p in probabilities)


@dataclass
class InjectionReport:
    """What was done to one input tuple: ``(column, error)`` pairs."""

    errors: list[tuple[int, ErrorType]] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.errors


FrequencyLookup = Callable[[str, int], int]


class ErrorModel:
    """Seeded error injector over clean attribute-value tuples.

    Parameters
    ----------
    column_error_probabilities:
        ``p_i`` per column.
    method:
        ``"type1"`` (uniform token selection) or ``"type2"``
        (frequency-proportional; requires ``frequency_lookup``).
    frequency_lookup:
        ``freq(token, column)`` oracle for Type II — typically
        ``TokenFrequencyCache.frequency``.
    name_column:
        Index of the name column (different conditional error mix, never
        made missing).
    seed:
        Randomness seed; the model is deterministic given the seed and the
        sequence of ``corrupt`` calls.
    """

    def __init__(
        self,
        column_error_probabilities: Sequence[float],
        method: str = "type1",
        frequency_lookup: FrequencyLookup | None = None,
        name_column: int = 0,
        seed: int = 7,
    ) -> None:
        if method not in ("type1", "type2"):
            raise ValueError(f"unknown injection method {method!r}")
        if method == "type2" and frequency_lookup is None:
            raise ValueError("type2 injection requires a frequency_lookup")
        for p in column_error_probabilities:
            if not 0.0 <= p <= 1.0:
                raise ValueError("column error probabilities must be in [0, 1]")
        self.column_error_probabilities = tuple(column_error_probabilities)
        self.method = method
        self.frequency_lookup = frequency_lookup
        self.name_column = name_column
        self._rng = random.Random(seed)
        self._name_probs = _normalize(_NAME_COLUMN_PROBABILITIES)
        self._other_probs = _normalize(_OTHER_COLUMN_PROBABILITIES)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def corrupt(
        self, values: Sequence[str | None]
    ) -> tuple[tuple[str | None, ...], InjectionReport]:
        """Return a corrupted copy of ``values`` plus the injection report."""
        if len(values) != len(self.column_error_probabilities):
            raise ValueError(
                f"{len(values)} values for "
                f"{len(self.column_error_probabilities)} column probabilities"
            )
        report = InjectionReport()
        corrupted: list[str | None] = list(values)
        for column, probability in enumerate(self.column_error_probabilities):
            if corrupted[column] is None:
                continue
            if self._rng.random() >= probability:
                continue
            error = self._choose_error(column)
            corrupted[column] = self._apply(error, corrupted[column], column)
            report.errors.append((column, error))
        return tuple(corrupted), report

    # ------------------------------------------------------------------
    # Error selection and application
    # ------------------------------------------------------------------

    def _choose_error(self, column: int) -> ErrorType:
        probs = self._name_probs if column == self.name_column else self._other_probs
        return self._rng.choices(_ERROR_ORDER, weights=probs)[0]

    def _apply(self, error: ErrorType, value: str, column: int) -> str | None:
        tokens = value.split()
        if error is ErrorType.MISSING:
            return None
        if error is ErrorType.TRUNCATION:
            return self._truncate(value)
        if error is ErrorType.TOKEN_MERGE:
            if len(tokens) < 2:
                return self._spell(value, column)
            return self._merge(tokens)
        if error is ErrorType.TOKEN_TRANSPOSITION:
            if len(tokens) < 2:
                return self._spell(value, column)
            return self._transpose(tokens)
        if error is ErrorType.ABBREVIATION:
            return self._abbreviate(value, tokens, column)
        return self._spell(value, column)

    def _pick_token_index(self, tokens: list[str], column: int) -> int:
        """Uniform (Type I) or frequency-proportional (Type II) selection."""
        if len(tokens) == 1:
            return 0
        if self.method == "type1":
            return self._rng.randrange(len(tokens))
        frequencies = [
            max(self.frequency_lookup(token.lower(), column), 1) for token in tokens
        ]
        return self._rng.choices(range(len(tokens)), weights=frequencies)[0]

    def _spell(self, value: str, column: int) -> str:
        """Spelling error: 1–2 character edits inside one token.

        Guaranteed to change the token — a substitution may draw the same
        character or a swap may exchange equal characters, so edits retry
        until the token actually differs.
        """
        tokens = value.split()
        if not tokens:
            return value
        index = self._pick_token_index(tokens, column)
        original = tokens[index]
        token = original
        for _ in range(self._rng.choice((1, 1, 2))):
            token = self._char_edit(token)
        attempts = 0
        while token == original and attempts < 10:
            token = self._char_edit(token)
            attempts += 1
        tokens[index] = token
        return " ".join(tokens)

    def _char_edit(self, token: str) -> str:
        rng = self._rng
        alphabet = string.digits if token.isdigit() else string.ascii_lowercase
        operations = ["substitute", "insert"]
        if len(token) >= 2:
            operations.extend(("delete", "swap"))
        operation = rng.choice(operations)
        position = rng.randrange(len(token)) if token else 0
        if operation == "substitute" and token:
            replacement = rng.choice(alphabet)
            return token[:position] + replacement + token[position + 1 :]
        if operation == "insert":
            insert_at = rng.randrange(len(token) + 1)
            return token[:insert_at] + rng.choice(alphabet) + token[insert_at:]
        if operation == "delete":
            return token[:position] + token[position + 1 :]
        # swap adjacent characters
        if position == len(token) - 1:
            position -= 1
        return (
            token[:position]
            + token[position + 1]
            + token[position]
            + token[position + 2 :]
        )

    def _abbreviate(self, value: str, tokens: list[str], column: int) -> str:
        """Replace a commonly-abbreviated token with one of its short forms.

        Under Type II the choice among abbreviatable tokens is frequency
        weighted, mirroring reality: the more often 'corporation' occurs,
        the more of its shortened variants circulate.
        """
        candidates = [
            i for i, token in enumerate(tokens) if token.lower() in ABBREVIATIONS
        ]
        if not candidates:
            # Nothing abbreviatable: degrade to a spelling error (keeps the
            # per-column error probability honest).
            return self._spell(value, column)
        if self.method == "type2" and len(candidates) > 1:
            frequencies = [
                max(self.frequency_lookup(tokens[i].lower(), column), 1)
                for i in candidates
            ]
            index = self._rng.choices(candidates, weights=frequencies)[0]
        else:
            index = self._rng.choice(candidates)
        short_forms = ABBREVIATIONS[tokens[index].lower()]
        tokens[index] = self._rng.choice(short_forms)
        return " ".join(tokens)

    def _truncate(self, value: str) -> str:
        """Truncate the value by up to 5 characters (keep at least one)."""
        removable = min(5, len(value) - 1)
        if removable < 1:
            return value
        drop = self._rng.randint(1, removable)
        return value[:-drop].rstrip()

    def _merge(self, tokens: list[str]) -> str:
        """Remove the delimiter between two adjacent tokens."""
        position = self._rng.randrange(len(tokens) - 1)
        merged = tokens[position] + tokens[position + 1]
        return " ".join(tokens[:position] + [merged] + tokens[position + 2 :])

    def _transpose(self, tokens: list[str]) -> str:
        """Reorder two adjacent tokens."""
        position = self._rng.randrange(len(tokens) - 1)
        tokens[position], tokens[position + 1] = (
            tokens[position + 1],
            tokens[position],
        )
        return " ".join(tokens)
