"""Token pools for the synthetic Customer relation.

The evaluation only depends on distributional properties of the reference
data — token frequency variance (which drives IDF weights and OSC), token
lengths, and multi-token attribute values — so the pools below aim for
realistic shape, not demographic fidelity.  Sampling order is fixed:
generators index into these tuples, so the pools must stay append-only for
seeds to remain reproducible.
"""

from __future__ import annotations

GIVEN_NAMES: tuple[str, ...] = (
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "lisa", "daniel", "nancy", "matthew", "betty", "anthony", "sandra",
    "mark", "margaret", "donald", "ashley", "steven", "kimberly", "andrew",
    "emily", "paul", "donna", "joshua", "michelle", "kenneth", "carol",
    "kevin", "amanda", "brian", "melissa", "george", "deborah", "timothy",
    "stephanie", "ronald", "rebecca", "jason", "sharon", "edward", "laura",
    "jeffrey", "cynthia", "ryan", "dorothy", "jacob", "amy", "gary",
    "kathleen", "nicholas", "angela", "eric", "shirley", "jonathan", "emma",
    "stephen", "brenda", "larry", "pamela", "justin", "nicole", "scott",
    "anna", "brandon", "samantha", "benjamin", "katherine", "samuel",
    "christine", "gregory", "debra", "alexander", "rachel", "patrick",
    "carolyn", "frank", "janet", "raymond", "maria", "jack", "olivia",
    "dennis", "heather", "jerry", "helen", "tyler", "catherine", "aaron",
    "diane", "jose", "julie", "adam", "victoria", "nathan", "joyce",
    "henry", "lauren", "zachary", "kelly", "douglas", "christina", "peter",
    "ruth", "kyle", "joan", "noah", "virginia", "ethan", "judith",
)

SURNAMES: tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson", "watson", "brooks", "chavez",
    "wood", "james", "bennett", "gray", "mendoza", "ruiz", "hughes",
    "price", "alvarez", "castillo", "sanders", "patel", "myers", "long",
    "ross", "foster", "jimenez", "powell", "jenkins", "perry", "russell",
    "sullivan", "bell", "coleman", "butler", "henderson", "barnes",
    "gonzales", "fisher", "vasquez", "simmons", "romero", "jordan",
    "patterson", "alexander", "hamilton", "graham", "reynolds", "griffin",
    "wallace", "moreno", "west", "cole", "hayes", "bryant", "herrera",
    "gibson", "ellis", "tran", "medina", "aguilar", "stevens", "murray",
    "ford", "castro", "marshall", "owens", "harrison", "fernandez",
    "mcdonald", "woods", "washington", "kennedy", "wells", "vargas",
)

MIDDLE_INITIALS: tuple[str, ...] = tuple("abcdefghijklmnoprstw")

BUSINESS_WORDS: tuple[str, ...] = (
    "united", "pacific", "national", "global", "summit", "cascade",
    "evergreen", "northwest", "premier", "pioneer", "liberty", "sterling",
    "apex", "atlas", "horizon", "beacon", "crown", "diamond", "eagle",
    "falcon", "granite", "harbor", "imperial", "keystone", "lakeside",
    "meridian", "olympic", "paramount", "quantum", "rainier", "sierra",
    "titan", "vanguard", "westwood", "zenith", "allied", "central",
    "consolidated", "continental", "coastal", "frontier", "general",
    "integrated", "metro", "midland", "precision", "regional", "standard",
    "superior", "universal",
)

BUSINESS_SUFFIXES: tuple[str, ...] = (
    "corporation", "company", "incorporated", "limited", "enterprises",
    "industries", "associates", "partners", "holdings", "group",
    "services", "systems", "solutions", "technologies", "consulting",
    "manufacturing", "distributors", "logistics", "properties", "ventures",
)

# City/state pairs: realistic multi-token cities included so the city
# column exercises token merges and transpositions.
CITIES: tuple[tuple[str, str], ...] = (
    ("seattle", "wa"), ("portland", "or"), ("san francisco", "ca"),
    ("los angeles", "ca"), ("san diego", "ca"), ("san jose", "ca"),
    ("new york", "ny"), ("brooklyn", "ny"), ("buffalo", "ny"),
    ("chicago", "il"), ("houston", "tx"), ("dallas", "tx"),
    ("san antonio", "tx"), ("austin", "tx"), ("el paso", "tx"),
    ("phoenix", "az"), ("tucson", "az"), ("philadelphia", "pa"),
    ("pittsburgh", "pa"), ("columbus", "oh"), ("cleveland", "oh"),
    ("cincinnati", "oh"), ("indianapolis", "in"), ("jacksonville", "fl"),
    ("miami", "fl"), ("tampa", "fl"), ("orlando", "fl"),
    ("charlotte", "nc"), ("raleigh", "nc"), ("detroit", "mi"),
    ("grand rapids", "mi"), ("memphis", "tn"), ("nashville", "tn"),
    ("boston", "ma"), ("worcester", "ma"), ("baltimore", "md"),
    ("milwaukee", "wi"), ("madison", "wi"), ("albuquerque", "nm"),
    ("kansas city", "mo"), ("saint louis", "mo"), ("omaha", "ne"),
    ("denver", "co"), ("colorado springs", "co"), ("minneapolis", "mn"),
    ("saint paul", "mn"), ("las vegas", "nv"), ("reno", "nv"),
    ("oklahoma city", "ok"), ("tulsa", "ok"), ("new orleans", "la"),
    ("baton rouge", "la"), ("louisville", "ky"), ("lexington", "ky"),
    ("richmond", "va"), ("virginia beach", "va"), ("salt lake city", "ut"),
    ("provo", "ut"), ("birmingham", "al"), ("montgomery", "al"),
    ("des moines", "ia"), ("cedar rapids", "ia"), ("little rock", "ar"),
    ("jackson", "ms"), ("boise", "id"), ("spokane", "wa"),
    ("tacoma", "wa"), ("bellevue", "wa"), ("everett", "wa"),
    ("anchorage", "ak"), ("honolulu", "hi"), ("hartford", "ct"),
    ("providence", "ri"), ("newark", "nj"), ("jersey city", "nj"),
    ("atlanta", "ga"), ("savannah", "ga"), ("charleston", "sc"),
    ("columbia", "sc"), ("wichita", "ks"), ("topeka", "ks"),
    ("fargo", "nd"), ("sioux falls", "sd"), ("billings", "mt"),
    ("cheyenne", "wy"), ("burlington", "vt"), ("manchester", "nh"),
    ("portland", "me"), ("wilmington", "de"), ("fresno", "ca"),
    ("sacramento", "ca"), ("oakland", "ca"), ("long beach", "ca"),
    ("bakersfield", "ca"), ("fort worth", "tx"), ("arlington", "tx"),
    ("corpus christi", "tx"), ("mesa", "az"), ("scottsdale", "az"),
    ("chandler", "az"),
)

_ONSETS: tuple[str, ...] = (
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "kr", "l", "m", "mc", "n", "p", "pr", "r", "s", "sch", "sh", "sl",
    "st", "t", "th", "tr", "v", "w", "wh", "z",
)
_NUCLEI: tuple[str, ...] = ("a", "e", "i", "o", "u", "ai", "ea", "ee", "ie", "oo", "ou")
_CODAS: tuple[str, ...] = (
    "", "ck", "ll", "m", "n", "nd", "ng", "ns", "r", "rd", "rn", "rson",
    "rt", "s", "sen", "son", "ss", "t", "th", "tt", "tz", "witz",
)


def synthesize_tokens(count: int, seed: int, min_syllables: int = 1, max_syllables: int = 2) -> tuple[str, ...]:
    """Generate ``count`` distinct pronounceable tokens, deterministically.

    The curated pools above top out at a few hundred tokens; a realistic
    reference relation needs a long tail of rare tokens (the paper's 1.7M
    Customer relation has ~367 500 distinct tokens) because IDF variance is
    what both fms and OSC exploit.  Syllable composition gives an unbounded
    supply of surname-shaped strings without shipping a dictionary.
    """
    import random as _random

    rng = _random.Random(seed)
    seen: set[str] = set()
    result: list[str] = []
    while len(result) < count:
        syllables = rng.randint(min_syllables, max_syllables)
        parts = []
        for _ in range(syllables):
            parts.append(rng.choice(_ONSETS) + rng.choice(_NUCLEI))
        token = "".join(parts) + rng.choice(_CODAS)
        if len(token) < 3 or token in seen:
            continue
        seen.add(token)
        result.append(token)
    return tuple(result)


# Extended pools: curated heads (frequent, familiar) + synthesized tails
# (rare, high-IDF).  Zipf sampling over the concatenation mimics real name
# distributions: a heavy head and a very long tail.
EXTENDED_SURNAMES: tuple[str, ...] = SURNAMES + synthesize_tokens(2000, seed=1847)
EXTENDED_GIVEN_NAMES: tuple[str, ...] = GIVEN_NAMES + synthesize_tokens(
    400, seed=1848
)
EXTENDED_BUSINESS_WORDS: tuple[str, ...] = BUSINESS_WORDS + synthesize_tokens(
    600, seed=1849, min_syllables=2, max_syllables=3
)

# Common abbreviations used by error type 2 ("replace commonly abbreviated
# tokens with abbreviations") and — in reverse — by real-world data entry.
ABBREVIATIONS: dict[str, tuple[str, ...]] = {
    "corporation": ("corp", "co", "corpn", "inc"),
    "company": ("co", "comp", "cmpy"),
    "incorporated": ("inc", "incorp"),
    "limited": ("ltd", "lmtd"),
    "enterprises": ("ent", "entps"),
    "industries": ("ind", "inds"),
    "associates": ("assoc", "assocs"),
    "manufacturing": ("mfg", "manuf"),
    "distributors": ("dist", "distr"),
    "technologies": ("tech", "techs"),
    "services": ("svcs", "svc"),
    "systems": ("sys",),
    "solutions": ("soln", "solns"),
    "consulting": ("cnslt", "consltg"),
    "holdings": ("hldgs",),
    "partners": ("ptnrs", "prtnrs"),
    "international": ("intl", "int"),
    "national": ("natl", "nat"),
    "saint": ("st",),
    "fort": ("ft",),
    "north": ("n",),
    "south": ("s",),
    "east": ("e",),
    "west": ("w",),
    "street": ("st",),
    "avenue": ("ave",),
    "william": ("wm", "bill"),
    "robert": ("rob", "bob"),
    "richard": ("rich", "dick"),
    "james": ("jim",),
    "michael": ("mike",),
    "christopher": ("chris",),
    "jennifer": ("jen",),
    "elizabeth": ("liz", "beth"),
    "katherine": ("kate", "kathy"),
    "margaret": ("meg", "peggy"),
}
