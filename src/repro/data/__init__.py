"""Workload generation: reference data and error injection.

The paper evaluates on a proprietary 1.7M-tuple ``Customer[name, city,
state, zipcode]`` relation, creating dirty inputs by injecting errors into
randomly selected clean tuples (§6.1).  We cannot ship that relation, so
:mod:`repro.data.generator` synthesizes a Customer relation with the
distributional properties the experiments depend on (Zipfian token
frequencies, multi-token names, city/state/zip correlation), and
:mod:`repro.data.errors` re-implements the paper's Type I / Type II error
injection with the Table 4 error taxonomy and Table 5 dataset presets.
"""

from repro.data.datasets import (
    DATASET_PRESETS,
    Dataset,
    DatasetSpec,
    ED_VS_FMS_PROBABILITIES,
    make_dataset,
)
from repro.data.errors import ErrorModel, ErrorType, InjectionReport
from repro.data.generator import CustomerGenerator, generate_customers
from repro.data.products import ProductGenerator, generate_products

__all__ = [
    "CustomerGenerator",
    "Dataset",
    "DATASET_PRESETS",
    "DatasetSpec",
    "ED_VS_FMS_PROBABILITIES",
    "ErrorModel",
    "ErrorType",
    "generate_customers",
    "generate_products",
    "InjectionReport",
    "make_dataset",
    "ProductGenerator",
]
