"""Synthetic Customer[name, city, state, zipcode] reference relation.

Stands in for the paper's proprietary 1.7M-tuple warehouse relation.  The
generator preserves what the experiments measure:

- *Token frequency variance*: name tokens are sampled from Zipf-like
  distributions, so IDF weights vary widely — the property both fms and
  optimistic short circuiting exploit.  City/state/zip tokens repeat across
  many tuples (low weight); surnames and business words are rarer (high
  weight).
- *Multi-token values*: person names have 2–3 tokens, business names 2–3,
  several cities are multi-token — exercising token transposition, merge
  and truncation errors.
- *Column correlation*: zip codes are derived from the city, so the
  zipcode column carries information like real postal data.

Everything is deterministic in ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.data import pools

CUSTOMER_COLUMNS = ("name", "city", "state", "zipcode")


def _zipf_weights(n: int, exponent: float) -> list[float]:
    """Unnormalized Zipf weights 1/rank^exponent for n ranks."""
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


@dataclass(frozen=True)
class CustomerTuple:
    """One clean reference tuple."""

    tid: int
    name: str
    city: str
    state: str
    zipcode: str

    @property
    def values(self) -> tuple[str, str, str, str]:
        return (self.name, self.city, self.state, self.zipcode)


class CustomerGenerator:
    """Seeded generator of clean customer tuples.

    ``business_fraction`` of tuples carry organization names (built from
    business words plus a suffix such as 'corporation'), the rest person
    names; this matters because organization suffixes are the frequent,
    low-IDF tokens the paper's examples revolve around.
    """

    def __init__(
        self,
        seed: int = 42,
        business_fraction: float = 0.25,
        zipf_exponent: float = 1.1,
        extended_pools: bool = True,
    ) -> None:
        if not 0.0 <= business_fraction <= 1.0:
            raise ValueError("business_fraction must be in [0, 1]")
        self.seed = seed
        self.business_fraction = business_fraction
        # Extended pools append a synthesized long tail of rare tokens so
        # IDF variance resembles real name data even at 10k+ tuples.
        if extended_pools:
            self._given_pool = pools.EXTENDED_GIVEN_NAMES
            self._surname_pool = pools.EXTENDED_SURNAMES
            self._word_pool = pools.EXTENDED_BUSINESS_WORDS
        else:
            self._given_pool = pools.GIVEN_NAMES
            self._surname_pool = pools.SURNAMES
            self._word_pool = pools.BUSINESS_WORDS
        self._rng = random.Random(seed)
        self._given_weights = _zipf_weights(len(self._given_pool), zipf_exponent)
        self._surname_weights = _zipf_weights(len(self._surname_pool), zipf_exponent)
        self._word_weights = _zipf_weights(len(self._word_pool), zipf_exponent)
        self._suffix_weights = _zipf_weights(
            len(pools.BUSINESS_SUFFIXES), zipf_exponent + 0.4
        )
        self._city_weights = _zipf_weights(len(pools.CITIES), zipf_exponent)

    def _person_name(self) -> str:
        rng = self._rng
        given = rng.choices(self._given_pool, weights=self._given_weights)[0]
        surname = rng.choices(self._surname_pool, weights=self._surname_weights)[0]
        if rng.random() < 0.3:
            middle = rng.choice(pools.MIDDLE_INITIALS)
            return f"{given} {middle} {surname}"
        return f"{given} {surname}"

    def _business_name(self) -> str:
        rng = self._rng
        words = rng.choices(
            self._word_pool, weights=self._word_weights, k=rng.choice((1, 1, 2))
        )
        suffix = rng.choices(pools.BUSINESS_SUFFIXES, weights=self._suffix_weights)[0]
        return " ".join(dict.fromkeys(words)) + " " + suffix

    def _location(self) -> tuple[str, str, str]:
        rng = self._rng
        index = rng.choices(range(len(pools.CITIES)), weights=self._city_weights)[0]
        city, state = pools.CITIES[index]
        # Zips cluster per city: a city has a 3-digit prefix shared by all
        # its customers and a 2-digit local part, like real ZIP allocation.
        prefix = 100 + (index * 7) % 900
        suffix = rng.randrange(100)
        zipcode = f"{prefix:03d}{suffix:02d}"
        return city, state, zipcode

    def generate(self, count: int, start_tid: int = 0) -> Iterator[CustomerTuple]:
        """Yield ``count`` customer tuples with tids from ``start_tid``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for offset in range(count):
            if self._rng.random() < self.business_fraction:
                name = self._business_name()
            else:
                name = self._person_name()
            city, state, zipcode = self._location()
            yield CustomerTuple(start_tid + offset, name, city, state, zipcode)


def generate_customers(
    count: int,
    seed: int = 42,
    business_fraction: float = 0.25,
    unique: bool = False,
) -> list[CustomerTuple]:
    """Generate a list of ``count`` clean customer tuples.

    With ``unique=True`` exact value duplicates are discarded and
    generation continues until ``count`` distinct tuples exist (tids are
    reassigned to stay sequential).  The paper's reference relation is
    clean — fuzzy duplicates eliminated before fuzzy match is deployed —
    and duplicate reference tuples would make seed-tuple accuracy
    ill-defined (two tuples tie at similarity 1.0).
    """
    generator = CustomerGenerator(seed=seed, business_fraction=business_fraction)
    if not unique:
        return list(generator.generate(count))
    seen: set[tuple[str, str, str, str]] = set()
    result: list[CustomerTuple] = []
    rounds = 0
    while len(result) < count:
        rounds += 1
        if rounds > 200:
            raise ValueError(
                f"could not generate {count} unique tuples (pool too small)"
            )
        for candidate in generator.generate(count - len(result), start_tid=0):
            if candidate.values in seen:
                continue
            seen.add(candidate.values)
            result.append(CustomerTuple(len(result), *candidate.values))
    return result
