"""Core fuzzy-match machinery: the paper's primary contribution.

- :mod:`repro.core.strings`: character-level edit distance and q-gram sets.
- :mod:`repro.core.tokens`: tokenization with per-column token identity.
- :mod:`repro.core.weights`: IDF token weights and the token-frequency cache.
- :mod:`repro.core.fms`: the fuzzy match similarity function *fms* (§3).
- :mod:`repro.core.minhash`: min-hash signatures over q-gram sets (§4.1).
- :mod:`repro.core.fms_apx`: the indexable upper bounds *fmsapx* / *fmst_apx*.
- :mod:`repro.core.matcher`: the naive, basic (§4.3.1) and OSC (§4.3.2)
  K-fuzzy-match algorithms over the ETI.
- :mod:`repro.core.resilience`: per-query budgets, circuit breaking, and
  the degraded-mode contract for faulty storage.
"""

from repro.core.batch import BatchMatcher, BatchReport
from repro.core.cache import CacheStats, CachingWeightFunction, LRUCache, MatcherCaches
from repro.core.config import MatchConfig, SignatureScheme
from repro.core.fms import fms, transformation_cost
from repro.core.fms_apx import fms_apx, fms_t_apx
from repro.core.matcher import FuzzyMatcher, Match, MatchStats, failed_result
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.resilience import (
    BudgetMeter,
    CircuitBreaker,
    Deadline,
    QueryBudget,
    ResiliencePolicy,
    RetryPolicy,
    fallback_chain,
)
from repro.core.strings import edit_distance, edit_distance_raw, qgram_set
from repro.core.tokens import TupleTokens, tokenize
from repro.core.weights import (
    BoundedTokenFrequencyCache,
    HashedTokenFrequencyCache,
    TokenFrequencyCache,
    build_frequency_cache,
)

__all__ = [
    "BatchMatcher",
    "BatchReport",
    "BoundedTokenFrequencyCache",
    "BudgetMeter",
    "build_frequency_cache",
    "CacheStats",
    "CachingWeightFunction",
    "CircuitBreaker",
    "Deadline",
    "LRUCache",
    "MatcherCaches",
    "edit_distance",
    "failed_result",
    "fallback_chain",
    "edit_distance_raw",
    "fms",
    "fms_apx",
    "fms_t_apx",
    "FuzzyMatcher",
    "HashedTokenFrequencyCache",
    "Match",
    "MatchConfig",
    "MatchStats",
    "MinHasher",
    "qgram_set",
    "QueryBudget",
    "ReferenceTable",
    "ResiliencePolicy",
    "RetryPolicy",
    "SignatureScheme",
    "tokenize",
    "TokenFrequencyCache",
    "transformation_cost",
    "TupleTokens",
]
