"""Score accumulation for candidate set determination (§4.3.1).

While q-gram tid-lists stream in from the ETI, every tid accumulates a
score equal to the sum of the weights of the q-grams whose lists it
appeared in.  Two details from the paper are implemented exactly:

- *New-tid admission*: a tid not yet in the table is only added while the
  total weight of the q-grams still to be looked up could lift a fresh tid
  past the similarity threshold ("We add a new tid to the hash table only
  if the total weight ... yet to be looked up ... is greater than or equal
  to w(u)·c").  This bounds the hash table size.
- *Adjustment term*: per token whose signature contributes at least one
  lookup, ``w(t)·(1 − 1/q)`` is added to an adjustment that corrects for
  approximating edit distance by q-gram overlap (Figure 3, step 7).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable


@dataclass
class ScoreTableStats:
    """Counters the paper reports in Figures 8–9.

    ``top_cache_hits`` counts :meth:`ScoreTable.top` calls answered from
    the memoized selection instead of re-running the heap select — the
    OSC fetching test calls ``top(K+1)`` after *every* ETI lookup, but
    many lookups are misses or stop q-grams that leave the table
    untouched, so the previous selection is still the answer.
    """

    tids_processed: int = 0
    tids_admitted: int = 0
    tids_rejected: int = 0
    top_cache_hits: int = 0


class ScoreTable:
    """Accumulates per-tid similarity scores from ETI tid-lists."""

    def __init__(self, threshold: float) -> None:
        """``threshold`` is ``w(u) · c``, the admission bar for new tids."""
        self.threshold = threshold
        self.scores: dict[int, float] = {}
        self.stats = ScoreTableStats()
        # Memoized result of the last top() call, keyed by its count.
        # Valid until the next mutation; add_tid_list invalidates it only
        # when it actually changes a score.
        self._top_cache: tuple[int, list[tuple[int, float]]] | None = None

    def __len__(self) -> int:
        return len(self.scores)

    def add_tid_list(
        self,
        tids: Iterable[int],
        weight: float,
        remaining_weight: float,
    ) -> None:
        """Credit ``weight`` to every tid in one fetched tid-list.

        ``remaining_weight`` is the total weight of all signature q-grams
        not yet looked up (including this one): the best score a brand-new
        tid could still reach.  New tids are admitted only while that bound
        meets the threshold.
        """
        scores = self.scores
        admit_new = remaining_weight >= self.threshold
        mutated = False
        for tid in tids:
            self.stats.tids_processed += 1
            current = scores.get(tid)
            if current is not None:
                scores[tid] = current + weight
                mutated = True
            elif admit_new:
                scores[tid] = weight
                self.stats.tids_admitted += 1
                mutated = True
            else:
                self.stats.tids_rejected += 1
        if mutated:
            self._top_cache = None

    def score(self, tid: int) -> float:
        """Current accumulated score of ``tid`` (0.0 if untracked)."""
        return self.scores.get(tid, 0.0)

    def top(self, count: int) -> list[tuple[int, float]]:
        """The ``count`` highest-scoring tids, best first.

        Ties break on tid for determinism (the paper breaks ties
        arbitrarily; fixing an order makes runs reproducible).  The
        selection is memoized until the next score mutation: every
        tid-list that scores only already-seen-nothing (a lookup miss or
        stop q-gram) leaves the previous answer valid, and the OSC loop
        asks with the same ``count`` each time.  Callers get a fresh list
        (the memo is copied), so mutating the result is safe.
        """
        cached = self._top_cache
        if cached is not None and cached[0] == count:
            self.stats.top_cache_hits += 1
            return list(cached[1])
        selected = heapq.nsmallest(
            count, self.scores.items(), key=lambda kv: (-kv[1], kv[0])
        )
        self._top_cache = (count, selected)
        return list(selected)

    def candidates(self, score_floor: float) -> list[tuple[int, float]]:
        """All tids with score ≥ ``score_floor``, best first (step 11)."""
        items = [
            (tid, score) for tid, score in self.scores.items() if score >= score_floor
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items
