"""The K-fuzzy-match algorithms (§4.3).

:class:`FuzzyMatcher` answers fuzzy match queries against a reference
relation three ways:

- ``naive``: scan the whole reference relation computing exact fms — the
  baseline both accuracy and "normalized elapsed time" are defined against.
- ``basic``: Figure 3.  Tokenize, weight, compute min-hash signatures, look
  up every signature q-gram in the ETI, accumulate tid scores, then fetch
  and verify candidates with exact fms.
- ``osc``: the basic algorithm plus optimistic short circuiting (Figure 4):
  q-grams are processed in decreasing weight order and the algorithm stops
  early as soon as the current top-K provably cannot be displaced.

Candidate verification (both indexed strategies) fetches candidates in
decreasing score order and stops as soon as the score-space upper bound of
the next candidate cannot displace the current K-th verified match — with
the paper's default threshold c = 0 every scored tid is formally a
"candidate", so ordered early-terminated verification is what keeps fetch
counts at the few-per-query level Figure 8 reports.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Iterable, Sequence
from dataclasses import dataclass, field, replace

from repro.core.cache import CachingWeightFunction, MatcherCaches
from repro.core.candidates import ScoreTable
from repro.core.config import MatchConfig
from repro.core.fms import fms, fms_budgeted, input_tuple_weight
from repro.core.minhash import MinHasher
from repro.core.osc import fetching_test, similarity_upper_bound, stopping_test
from repro.core.reference import ReferenceTable
from repro.core.resilience import (
    BudgetMeter,
    QueryBudget,
    ResiliencePolicy,
    fallback_chain,
)
from repro.core.tokens import TupleTokens
from repro.core.weights import WeightFunction
from repro.db.errors import DatabaseError, RecordNotFoundError
from repro.eti.index import EtiIndex
from repro.eti.signature import signature_entries_cached
from repro.obs.tracing import trace_span

if TYPE_CHECKING:
    from repro.db.pager import BufferPool


@dataclass(frozen=True)
class Match:
    """One fuzzy match: the reference tuple and its fms similarity."""

    tid: int
    similarity: float
    values: tuple[str | None, ...]


@dataclass
class MatchStats:
    """Per-query counters behind the paper's efficiency figures.

    ``candidates_fetched`` counts *logical* candidate fetches (one per
    distinct tid verified by the query), matching the paper's Figure 8
    metric regardless of caching; the per-cache hit/miss counters below
    say how many of this query's cache lookups were served from the
    cross-query caches instead of recomputed.
    """

    strategy: str = ""
    eti_lookups: int = 0
    tids_processed: int = 0
    tids_admitted: int = 0
    candidates_fetched: int = 0
    fms_evaluations: int = 0
    verify_budget_prunes: int = 0
    """Candidates whose budgeted verification proved they cannot displace
    the current K-th best and stopped the transformation DP early
    (:func:`repro.core.fms.fms_budgeted`); pruned candidates never enter
    the result, so answers are unchanged."""
    osc_fetch_attempts: int = 0
    osc_succeeded: bool = False
    elapsed_seconds: float = 0.0
    reference_cache_hits: int = 0
    reference_cache_misses: int = 0
    weight_cache_hits: int = 0
    weight_cache_misses: int = 0
    signature_cache_hits: int = 0
    signature_cache_misses: int = 0
    deduplicated: bool = False
    """True when this result was copied from an identical tuple earlier
    in the same :meth:`FuzzyMatcher.match_many` batch."""
    degraded: bool = False
    """True when the result is best-effort rather than exact: a query
    budget was exhausted mid-query or the strategy fell back down the
    ``osc → basic → naive`` chain.  Degraded results are flagged, never
    silently wrong."""
    degraded_reason: str | None = None
    """Why the result is degraded: ``"deadline"``, ``"page_fetches"``,
    ``"circuit_open"``, or ``"fallback:<ErrorType>"``."""
    fallback_from: str | None = None
    """The strategy originally requested, when a fallback answered."""
    wal_tail_pages: int = 0
    """Committed pages still waiting in the write-ahead log tail at the
    end of this query (0 when the reference database has no WAL).  A
    growing gauge across a batch signals an overdue checkpoint."""


@dataclass
class MatchResult:
    """Matches (best first) plus the query's statistics."""

    matches: list[Match] = field(default_factory=list)
    stats: MatchStats = field(default_factory=MatchStats)
    trace: list[str] | None = None
    """Human-readable event log of the query, when requested."""
    error: str | None = None
    """The failure message when this query errored under per-item fault
    isolation (``fail_fast=False``); ``None`` on success."""
    error_type: str | None = None
    """Class name of the :class:`~repro.db.errors.DatabaseError` behind
    :attr:`error`."""

    @property
    def best(self) -> Match | None:
        return self.matches[0] if self.matches else None

    @property
    def failed(self) -> bool:
        """True when the query errored and carries no matches."""
        return self.error is not None


@dataclass(frozen=True)
class _TokenInfo:
    token: str
    column: int
    weight: float


def reference_version(reference: object) -> int | None:
    """The reference relation's mutation version (None if untracked)."""
    return getattr(reference, "version", None)


def replicate_result(result: MatchResult) -> MatchResult:
    """An independent copy of ``result`` flagged as batch-deduplicated.

    Duplicate tuples inside one batch share the underlying query; each
    occurrence still gets its own result object (callers mutate match
    lists and stats freely), with ``stats.deduplicated`` set so the free
    queries are visible in accounting.
    """
    return MatchResult(
        matches=list(result.matches),
        stats=replace(result.stats, deduplicated=True),
        trace=list(result.trace) if result.trace is not None else None,
        error=result.error,
        error_type=result.error_type,
    )


def failed_result(exc: DatabaseError, strategy: str = "") -> MatchResult:
    """A per-item error marker for fault-isolated batch execution."""
    return MatchResult(
        stats=MatchStats(strategy=strategy),
        error=str(exc) or type(exc).__name__,
        error_type=type(exc).__name__,
    )


class FuzzyMatcher:
    """Fuzzy match queries against one reference relation.

    Parameters
    ----------
    reference:
        The clean reference relation.
    weights:
        Token weight provider (normally an IDF frequency cache built from
        the reference relation).
    config:
        Algorithm parameters.
    eti:
        A built :class:`EtiIndex`; required for the indexed strategies,
        optional if only ``naive`` matching is used.
    hasher:
        The min-hash family.  Must be the one the ETI was built with; when
        omitted, a hasher with the config's (q, H, seed) is created, which
        matches an ETI built from the same config.
    caches:
        Cross-query caches (:class:`~repro.core.cache.MatcherCaches`).
        Defaults to a fresh enabled bundle; pass
        ``MatcherCaches.disabled()`` for the uncached (seed) behaviour.
        Caching never changes results — only how often tokenization,
        weight lookups, and signature expansion are recomputed.
    resilience:
        Optional :class:`~repro.core.resilience.ResiliencePolicy`.  When
        set, queries run under its budget (degrading instead of stalling),
        storage failures on the ETI path fall back down the
        ``osc → basic → naive`` chain, and the policy's circuit breaker
        gates the indexed strategies.  ``None`` (the default) keeps the
        exact pre-resilience behaviour: no budget, no fallback, errors
        propagate.
    """

    def __init__(
        self,
        reference: ReferenceTable,
        weights: WeightFunction,
        config: MatchConfig | None = None,
        eti: EtiIndex | None = None,
        hasher: MinHasher | None = None,
        caches: MatcherCaches | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        self.reference = reference
        self.weights = weights
        self.config = config if config is not None else MatchConfig()
        self.eti = eti
        self.hasher = (
            hasher
            if hasher is not None
            else MinHasher(self.config.q, self.config.signature_size, self.config.seed)
        )
        self.caches = caches if caches is not None else MatcherCaches()
        self.resilience = resilience
        # The memoized weight view used on every hot path (fms, token
        # weighing); ``self.weights`` stays the raw provider.
        self._weights: WeightFunction = (
            CachingWeightFunction(weights, self.caches.token_weights)
            if self.caches.token_weights.enabled
            else weights
        )
        self._reference_version = reference_version(reference)
        # Per-query metrics live in the cache bundle's registry, so one
        # snapshot carries a matcher's full telemetry (cache counters
        # included) and fleet totals come from snapshot merging.
        registry = self.caches.registry
        self._obs_registry = registry
        self._obs_match_seconds = {
            strategy: registry.histogram(
                "repro_match_seconds", {"strategy": strategy}
            )
            for strategy in ("naive", "basic", "osc")
        }
        self._obs_queries = registry.counter("repro_match_queries_total")
        self._obs_eti_lookups = registry.counter(
            "repro_match_eti_lookups_total", relaxed=True
        )
        self._obs_candidates = registry.counter(
            "repro_match_candidates_fetched_total", relaxed=True
        )
        self._obs_fms = registry.counter(
            "repro_match_fms_evaluations_total", relaxed=True
        )
        self._obs_prunes = registry.counter(
            "repro_match_verify_budget_prunes_total", relaxed=True
        )
        self._obs_wal_tail = registry.gauge("repro_wal_tail_pages")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def match(
        self,
        values: Sequence[str | None],
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        trace: bool = False,
        budget: QueryBudget | None = None,
    ) -> MatchResult:
        """Find the K fuzzy matches of one input tuple.

        ``strategy`` is ``"naive"``, ``"basic"``, or ``"osc"``; the default
        follows ``config.use_osc``.  ``k`` and ``min_similarity`` default to
        the config's values.  With ``trace=True`` the result carries a
        human-readable event log of every lookup and decision (indexed
        strategies only) — useful for debugging and teaching.

        ``budget`` (defaulting to the resilience policy's budget, when one
        is configured) bounds this query's wall clock and physical page
        fetches; on exhaustion the best-so-far top-K comes back with
        ``stats.degraded`` set instead of the query stalling or raising.
        With a resilience policy, a :class:`DatabaseError` on an indexed
        strategy falls back down ``osc → basic → naive`` (and trips the
        circuit breaker on repeated failures) instead of propagating.
        """
        if len(values) != self.reference.num_columns:
            raise ValueError(
                f"input tuple has {len(values)} columns, reference has "
                f"{self.reference.num_columns}"
            )
        k = k if k is not None else self.config.k
        c = min_similarity if min_similarity is not None else self.config.min_similarity
        if strategy is None:
            strategy = "osc" if self.config.use_osc else "basic"
        if strategy not in ("naive", "basic", "osc"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy != "naive" and self.eti is None:
            raise ValueError(f"strategy {strategy!r} requires a built ETI")

        policy = self.resilience
        if budget is None and policy is not None:
            budget = policy.budget
        meter = None
        if budget is not None and not budget.unlimited:
            meter = budget.start(self._pool())

        started = time.perf_counter()
        counters_before = self.caches.snapshot()
        db_before = self._db_counters()

        requested = strategy
        circuit_skipped = False
        attempts = [strategy]
        if policy is not None and policy.fallback:
            attempts = list(fallback_chain(strategy))
        if (
            policy is not None
            and requested != "naive"
            and not policy.breaker.allow()
        ):
            attempts = ["naive"]
            circuit_skipped = True

        last_error: DatabaseError | None = None
        result = None
        used = requested
        matcher_ctx = trace_span("matcher", requested=requested)
        with matcher_ctx:
            for index, attempt in enumerate(attempts):
                indexed = attempt != "naive"
                try:
                    if indexed:
                        result = self._match_indexed(
                            values, k, c, use_osc=(attempt == "osc"),
                            trace=trace, meter=meter,
                        )
                    else:
                        result = self._match_naive(values, k, c, meter=meter)
                except DatabaseError as exc:
                    if indexed and policy is not None:
                        policy.breaker.record_failure()
                    last_error = exc
                    if (
                        policy is None
                        or not policy.fallback
                        or index == len(attempts) - 1
                    ):
                        raise
                    continue
                if indexed and policy is not None:
                    policy.breaker.record_success()
                used = attempt
                break
            self._emit_db_span(db_before)
        matcher_ctx.annotate(strategy=used)

        result.stats.strategy = used
        if used != requested:
            result.stats.degraded = True
            result.stats.fallback_from = requested
            if result.stats.degraded_reason is None:
                result.stats.degraded_reason = (
                    "circuit_open"
                    if circuit_skipped
                    else f"fallback:{type(last_error).__name__}"
                )
        self._record_cache_deltas(result.stats, counters_before)
        wal = self._pool().wal
        if wal is not None:
            result.stats.wal_tail_pages = wal.tail_pages
        result.stats.elapsed_seconds = time.perf_counter() - started
        self._publish_query(result.stats)
        return result

    def _pool(self) -> BufferPool:
        """The buffer pool under the reference relation (fetch metering)."""
        return self.reference.relation.heap.pool

    def _db_counters(self) -> tuple[int, int, int, int, int]:
        """``(pool hits, misses, physical reads, wal appends, syncs)``."""
        pool = self._pool()
        wal = pool.wal
        stats = pool.stats
        if wal is None:
            return (stats.hits, stats.misses, stats.physical_reads, 0, 0)
        return (
            stats.hits,
            stats.misses,
            stats.physical_reads,
            wal.stats.appends,
            wal.stats.syncs,
        )

    def _emit_db_span(self, before: tuple[int, int, int, int, int]) -> None:
        """Attach the query's storage-layer work as a ``db`` child span.

        Annotates buffer-pool hit/miss/physical-read and WAL
        append/fsync deltas onto the active trace; a no-op (one list
        check) when no trace is recording.
        """
        ctx = trace_span("db")
        with ctx:
            after = self._db_counters()
            wal = self._pool().wal
            ctx.annotate(
                pool_hits=after[0] - before[0],
                pool_misses=after[1] - before[1],
                physical_reads=after[2] - before[2],
                wal_appends=after[3] - before[3],
                wal_syncs=after[4] - before[4],
                wal_tail_pages=wal.tail_pages if wal is not None else 0,
            )

    def _publish_query(self, stats: MatchStats) -> None:
        """Fold one finished query's stats into the bundle registry.

        The per-strategy latency histogram plus work counters mirror the
        :class:`MatchStats` fields an operator tunes by, so live
        aggregates and per-query numbers always come from one source.
        """
        hist = self._obs_match_seconds.get(stats.strategy)
        if hist is not None:
            hist.observe(stats.elapsed_seconds)
        self._obs_queries.inc()
        self._obs_eti_lookups.inc(stats.eti_lookups)
        self._obs_candidates.inc(stats.candidates_fetched)
        self._obs_fms.inc(stats.fms_evaluations)
        self._obs_prunes.inc(stats.verify_budget_prunes)
        self._obs_wal_tail.set(float(stats.wal_tail_pages))
        if stats.degraded and stats.degraded_reason is not None:
            self._obs_registry.counter(
                "repro_match_degraded_total", {"reason": stats.degraded_reason}
            ).inc()

    def match_many(
        self,
        batch: Iterable[Sequence[str | None]],
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        trace: bool = False,
        fail_fast: bool = True,
    ) -> list[MatchResult]:
        """Match a batch of input tuples; results in input order.

        The batch engine behind the ETL-style usage of Figure 1: identical
        input tuples are matched once and their results replicated
        (``stats.deduplicated`` marks the copies), and the cross-query
        caches are warmed batch-wide before querying, so repeated tokens —
        the common case in a dirty feed — are tokenized, weighed, and
        min-hashed once for the whole batch.  Results are returned in
        input order and are identical to calling :meth:`match` per tuple.

        With ``fail_fast=False`` a :class:`DatabaseError` on one tuple is
        isolated into that tuple's result (``result.error`` set, no
        matches) instead of killing the whole batch; programming errors
        (bad arity, unknown strategy) always raise.
        """
        batch = list(batch)
        groups: dict[tuple, list[int]] = {}
        keys: list[tuple | None] = []
        for index, values in enumerate(batch):
            try:
                key = tuple(values)
                groups.setdefault(key, []).append(index)
            except TypeError:
                key = None  # unhashable values: match it standalone
            keys.append(key)

        self._warm_batch(groups, strategy)

        results: list[MatchResult | None] = [None] * len(batch)
        computed: dict[tuple, MatchResult] = {}
        for index, values in enumerate(batch):
            key = keys[index]
            if key is not None and key in computed:
                results[index] = replicate_result(computed[key])
                continue
            try:
                result = self.match(
                    values,
                    k=k,
                    min_similarity=min_similarity,
                    strategy=strategy,
                    trace=trace,
                )
            except DatabaseError as exc:
                if fail_fast:
                    raise
                result = failed_result(exc, strategy or "")
            if key is not None:
                computed[key] = result
            results[index] = result
        return results

    def _warm_batch(self, groups: dict[tuple, list[int]], strategy: str | None) -> None:
        """Pre-populate the weight and signature caches for a whole batch.

        Touches every distinct (token, column) of the batch once, so the
        per-query loops below run almost entirely on cache hits.  A no-op
        when caching is disabled.
        """
        if not self.caches.enabled or len(self.reference.column_names) == 0:
            return
        if strategy is None:
            strategy = "osc" if self.config.use_osc else "basic"
        warm_signatures = (
            strategy != "naive"
            and self.eti is not None
            and self.caches.signatures.enabled
        )
        seen: set[tuple[int, str]] = set()
        for key in groups:
            if len(key) != self.reference.num_columns:
                continue  # match() raises per-tuple; don't raise while warming
            for token, column in TupleTokens.from_values(key).all_tokens():
                if (column, token) in seen:
                    continue
                seen.add((column, token))
                self._weights.weight(token, column)
                if warm_signatures:
                    signature_entries_cached(
                        token, self.hasher, self.config, self.caches.signatures
                    )

    def _record_cache_deltas(
        self, stats: MatchStats, before: tuple[tuple[int, int], ...]
    ) -> None:
        reference, weights, signatures = self.caches.snapshot()
        stats.reference_cache_hits = reference[0] - before[0][0]
        stats.reference_cache_misses = reference[1] - before[0][1]
        stats.weight_cache_hits = weights[0] - before[1][0]
        stats.weight_cache_misses = weights[1] - before[1][1]
        stats.signature_cache_hits = signatures[0] - before[2][0]
        stats.signature_cache_misses = signatures[1] - before[2][1]

    def _reference_tokens(
        self, tid: int, values: tuple | None = None
    ) -> tuple[TupleTokens, tuple]:
        """``(TupleTokens, values)`` of reference tuple ``tid``, cached.

        ``values`` short-circuits the fetch when the caller already holds
        the tuple (the naive scan).  Without it a cache miss fetches via
        the tid index (counted in ``reference.fetches``).  Raises
        :class:`RecordNotFoundError` for dangling tids; misses are never
        cached.  The cache is cleared whenever the reference relation's
        mutation version moves.
        """
        cache = self.caches.reference_tokens
        version = reference_version(self.reference)
        if version != self._reference_version:
            cache.clear()
            self._reference_version = version

        def compute() -> tuple[TupleTokens, tuple]:
            row = values if values is not None else self.reference.fetch(tid)
            return (TupleTokens.from_values(row), tuple(row))

        return cache.get_or_compute(tid, compute)

    # ------------------------------------------------------------------
    # Naive scan
    # ------------------------------------------------------------------

    def _match_naive(
        self,
        values: Sequence[str | None],
        k: int,
        c: float,
        meter: BudgetMeter | None = None,
    ) -> MatchResult:
        result = MatchResult()
        stats = result.stats
        input_tokens = TupleTokens.from_values(values)
        u_weight = input_tuple_weight(input_tokens, self._weights, self.config)

        # Bounded top-K selection: a size-K min-heap on (similarity, -tid)
        # whose root is the weakest kept match — O(N log K) instead of
        # sorting the whole admitted set.  tid is unique, so the heap
        # never compares row values.
        kept: list[tuple[float, int, tuple]] = []
        scan_ctx = trace_span("matcher.naive_scan")
        with scan_ctx:
            for tid, reference_values in self.reference.scan():
                if meter is not None and stats.fms_evaluations % 32 == 0:
                    reason = meter.exhausted()
                    if reason is not None:
                        stats.degraded = True
                        stats.degraded_reason = reason
                        break
                reference_tokens, row = self._reference_tokens(
                    tid, values=reference_values
                )
                similarity = fms(
                    input_tokens,
                    reference_tokens,
                    self._weights,
                    self.config,
                    u_weight=u_weight,
                )
                stats.fms_evaluations += 1
                if similarity < c or k <= 0:
                    continue
                entry = (similarity, -tid, row)
                if len(kept) < k:
                    heapq.heappush(kept, entry)
                elif entry > kept[0]:
                    heapq.heappushpop(kept, entry)
        scan_ctx.annotate(fms_evaluations=stats.fms_evaluations)
        kept.sort(key=lambda e: (-e[0], -e[1]))
        result.matches = [
            Match(-neg_tid, similarity, row) for similarity, neg_tid, row in kept
        ]
        return result

    # ------------------------------------------------------------------
    # Indexed strategies (basic + OSC)
    # ------------------------------------------------------------------

    def _match_indexed(
        self,
        values: Sequence[str | None],
        k: int,
        c: float,
        use_osc: bool,
        trace: bool = False,
        meter: BudgetMeter | None = None,
    ) -> MatchResult:
        result = MatchResult()
        stats = result.stats
        config = self.config
        eti = self.eti
        log = None
        if trace:
            result.trace = []
            log = result.trace.append
        input_tokens = TupleTokens.from_values(values)
        column_weights = config.normalized_column_weights(input_tokens.num_columns)

        build_ctx = trace_span("matcher.signature_build")
        with build_ctx:
            token_infos = [
                _TokenInfo(
                    token,
                    column,
                    self._weights.weight(token, column) * column_weights[column],
                )
                for token, column in input_tokens.all_tokens()
            ]
            input_weight = sum(info.weight for info in token_infos)
            if log:
                for info in token_infos:
                    log(
                        f"token {info.token!r} (col {info.column}) "
                        f"w={info.weight:.3f}"
                    )
                log(
                    f"w(u) = {input_weight:.3f}, "
                    f"threshold = {c * input_weight:.3f}"
                )
            if input_weight <= 0.0:
                if log:
                    log("all token weights are zero: no match possible")
                return result

            # Expand tokens into weighted signature entries.
            entries: list[tuple[float, int, int, str, int]] = []
            # (qgram_weight, token_index, coordinate, gram, column)
            for token_index, info in enumerate(token_infos):
                for entry in signature_entries_cached(
                    info.token, self.hasher, config, self.caches.signatures
                ):
                    entries.append(
                        (
                            info.weight * entry.weight_fraction,
                            token_index,
                            entry.coordinate,
                            entry.gram,
                            info.column,
                        )
                    )
            if use_osc:
                # Decreasing weight; ties resolve in original (token) order
                # for determinism.
                entries.sort(key=lambda e: -e[0])
            build_ctx.annotate(tokens=len(token_infos), entries=len(entries))

        total_entry_weight = sum(e[0] for e in entries)
        adjustment_unit = 1.0 - 1.0 / config.q
        full_adjustment = sum(info.weight for info in token_infos) * adjustment_unit
        threshold = c * input_weight
        # Admission bar for new tids.  The paper's Figure 3 step 9b uses
        # w(u)·c outright, but its step 11 retains tids down to w(u)·c −
        # AdjustmentTerm; admitting against the unadjusted bar would starve
        # candidates the retention floor means to keep (visible for c > 0:
        # a tid first seen after (1−c) of the signature weight can still
        # clear c once the adjustment is credited).  We admit against the
        # adjusted floor, which is consistent and still bounds table size.
        score_table = ScoreTable(max(threshold - full_adjustment, 0.0))
        fms_cache: dict[int, tuple[float, tuple, bool]] = {}
        lookups_before = eti.lookups

        processed_weight = 0.0
        budget_reason = None
        lookups_done = 0
        eti_ctx = trace_span("matcher.eti_lookups")
        with eti_ctx:
            for qgram_weight, token_index, coordinate, gram, column in entries:
                if meter is not None:
                    budget_reason = meter.exhausted()
                    if budget_reason is not None:
                        if log:
                            log(
                                f"budget exhausted ({budget_reason}) after "
                                f"{lookups_done} of {len(entries)} lookups; "
                                "degrading to best-so-far"
                            )
                        break
                lookups_done += 1
                remaining = total_entry_weight - processed_weight
                eti_entry = eti.lookup(gram, coordinate, column)
                if log:
                    if eti_entry is None:
                        outcome = "miss"
                    elif eti_entry.is_stop_qgram:
                        outcome = f"stop q-gram (freq {eti_entry.frequency})"
                    else:
                        outcome = f"{len(eti_entry.tid_list)} tids"
                    log(
                        f"lookup ({gram!r}, coord {coordinate}, col {column}) "
                        f"w={qgram_weight:.3f} -> {outcome}"
                    )
                if eti_entry is not None and eti_entry.tid_list:
                    score_table.add_tid_list(
                        eti_entry.tid_list, qgram_weight, remaining
                    )
                processed_weight += qgram_weight

                if not use_osc or not score_table.scores:
                    continue
                decision = fetching_test(
                    score_table, k, processed_weight, total_entry_weight
                )
                if not decision.should_fetch:
                    continue
                stats.osc_fetch_attempts += 1
                if log:
                    log(
                        f"OSC fetching test passed: top-{k} "
                        f"{decision.top_tids}, "
                        f"outside cap {decision.outside_score_cap:.3f}"
                    )
                similarities = [
                    # No cost budget here: the stopping test needs exact fms.
                    self._verify(
                        tid, input_tokens, input_weight, fms_cache, stats
                    )[0]
                    for tid in decision.top_tids
                ]
                if stopping_test(
                    similarities,
                    decision.outside_score_cap,
                    input_weight,
                    config.q,
                    conservative=config.osc_conservative,
                ):
                    stats.osc_succeeded = True
                    if log:
                        log(
                            "OSC stopping test passed: fms "
                            + ", ".join(f"{s:.3f}" for s in similarities)
                            + " >= bound "
                            + f"{decision.outside_score_cap / input_weight:.3f}"
                        )
                    matches = [
                        Match(tid, similarity, fms_cache[tid][1])
                        for tid, similarity in zip(
                            decision.top_tids, similarities
                        )
                        if similarity >= c
                    ]
                    matches.sort(key=lambda m: (-m.similarity, m.tid))
                    result.matches = matches
                    self._finalize(stats, score_table, lookups_before)
                    eti_ctx.annotate(
                        lookups=lookups_done, osc_succeeded=True
                    )
                    return result
                if log:
                    log(
                        "OSC stopping test failed (fms "
                        + ", ".join(f"{s:.3f}" for s in similarities)
                        + "); continuing lookups"
                    )
        eti_ctx.annotate(lookups=lookups_done)

        # Basic finish: fetch candidates in decreasing score order, stopping
        # once the next upper bound cannot displace the K-th verified match.
        floor = threshold - full_adjustment
        candidates = score_table.candidates(floor)
        if budget_reason is not None:
            # Budget spent mid-lookup: flag the result and verify only the
            # top-K scored tids, so the degraded answer still costs a
            # bounded, small amount of extra work.
            stats.degraded = True
            stats.degraded_reason = budget_reason
            candidates = candidates[: max(k, 1)]
        if log:
            log(
                f"verification phase: {len(candidates)} candidates "
                f"above floor {floor:.3f}"
            )
        verified: list[tuple[float, int]] = []
        verify_ctx = trace_span("matcher.verify", candidates=len(candidates))
        with verify_ctx:
            for position, (tid, score) in enumerate(candidates):
                if meter is not None and budget_reason is None and position > 0:
                    reason = meter.exhausted()
                    if reason is not None:
                        stats.degraded = True
                        stats.degraded_reason = reason
                        if log:
                            log(
                                f"budget exhausted ({reason}) after verifying "
                                f"{position} candidates; returning best-so-far"
                            )
                        break
                upper_bound = similarity_upper_bound(
                    score, input_weight, config.q
                )
                if upper_bound < c:
                    break
                if len(verified) >= k and upper_bound <= verified[k - 1][0]:
                    if log:
                        log(
                            f"stop: next upper bound {upper_bound:.3f} cannot "
                            f"displace K-th fms {verified[k - 1][0]:.3f}"
                        )
                    break
                cost_budget = None
                if self.config.budgeted_verification and len(verified) >= k:
                    # A candidate can only displace the K-th verified match
                    # if its transformation cost stays under (1 − kth) ·
                    # w(u); later candidates see ever-tighter budgets as the
                    # top-K improves, so the DP abandons most losers mid-row.
                    cost_budget = (1.0 - verified[k - 1][0]) * input_weight
                similarity, _, pruned = self._verify(
                    tid, input_tokens, input_weight, fms_cache, stats,
                    cost_budget=cost_budget,
                )
                if pruned:
                    # Certified unable to displace the current top-K; the
                    # similarity is an upper bound, never a result.
                    if log:
                        log(
                            f"verify tid {tid}: score {score:.3f} -> "
                            "budget-pruned (cannot beat K-th fms "
                            f"{verified[k - 1][0]:.3f})"
                        )
                    continue
                if log:
                    log(
                        f"verify tid {tid}: score {score:.3f} -> "
                        f"fms {similarity:.3f}"
                    )
                if similarity >= c:
                    verified.append((similarity, tid))
                    verified.sort(key=lambda item: (-item[0], item[1]))
                    del verified[k:]
            verify_ctx.annotate(verified=len(verified))
        result.matches = [
            Match(tid, similarity, fms_cache[tid][1]) for similarity, tid in verified
        ]
        self._finalize(stats, score_table, lookups_before)
        return result

    def _verify(
        self,
        tid: int,
        input_tokens: TupleTokens,
        input_weight: float,
        fms_cache: dict[int, tuple[float, tuple, bool]],
        stats: MatchStats,
        cost_budget: float | None = None,
    ) -> tuple[float, tuple, bool]:
        """Fetch ``tid`` (once per query) and compute its fms (once).

        Returns ``(similarity, reference_values, pruned)``.  With
        ``pruned=False`` the similarity is exact; with ``pruned=True`` the
        budgeted DP (:func:`repro.core.fms.fms_budgeted`) proved the
        candidate cannot come in under ``cost_budget`` and the similarity
        is only an upper bound — callers must discard it, never rank it.

        The fetch+tokenize goes through the cross-query reference-token
        cache, so a candidate verified by an earlier query costs neither a
        B+-tree fetch nor re-tokenization; ``candidates_fetched`` still
        counts it (the Figure 8 metric is logical fetches per query).

        A tid the ETI names but the reference relation no longer holds
        (possible when index maintenance lags deletes) verifies to
        similarity −1, which no threshold admits and no stopping test
        accepts — dangling index entries degrade, they don't crash.
        """
        cached = fms_cache.get(tid)
        if cached is not None:
            # An exact entry answers every caller.  A pruned entry only
            # answers budgeted callers: within one query the K-th best
            # similarity never decreases, so budgets only tighten and
            # "over budget before" implies "over budget now".  An exact
            # caller (OSC stopping test) recomputes without a budget.
            if not cached[2] or cost_budget is not None:
                return cached
        try:
            reference_tokens, reference_values = self._reference_tokens(tid)
        except RecordNotFoundError:
            fms_cache[tid] = (-1.0, (), False)
            return fms_cache[tid]
        if cached is None:
            stats.candidates_fetched += 1
        similarity, pruned = fms_budgeted(
            input_tokens,
            reference_tokens,
            self._weights,
            self.config,
            u_weight=input_weight,
            cost_budget=cost_budget,
        )
        stats.fms_evaluations += 1
        if pruned:
            stats.verify_budget_prunes += 1
        fms_cache[tid] = (similarity, reference_values, pruned)
        return fms_cache[tid]

    def _finalize(
        self, stats: MatchStats, score_table: ScoreTable, lookups_before: int
    ) -> None:
        stats.eti_lookups = self.eti.lookups - lookups_before
        stats.tids_processed = score_table.stats.tids_processed
        stats.tids_admitted = score_table.stats.tids_admitted
