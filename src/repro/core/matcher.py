"""The K-fuzzy-match algorithms (§4.3).

:class:`FuzzyMatcher` answers fuzzy match queries against a reference
relation three ways:

- ``naive``: scan the whole reference relation computing exact fms — the
  baseline both accuracy and "normalized elapsed time" are defined against.
- ``basic``: Figure 3.  Tokenize, weight, compute min-hash signatures, look
  up every signature q-gram in the ETI, accumulate tid scores, then fetch
  and verify candidates with exact fms.
- ``osc``: the basic algorithm plus optimistic short circuiting (Figure 4):
  q-grams are processed in decreasing weight order and the algorithm stops
  early as soon as the current top-K provably cannot be displaced.

Candidate verification (both indexed strategies) fetches candidates in
decreasing score order and stops as soon as the score-space upper bound of
the next candidate cannot displace the current K-th verified match — with
the paper's default threshold c = 0 every scored tid is formally a
"candidate", so ordered early-terminated verification is what keeps fetch
counts at the few-per-query level Figure 8 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.candidates import ScoreTable
from repro.core.config import MatchConfig
from repro.core.fms import fms
from repro.core.minhash import MinHasher
from repro.core.osc import fetching_test, similarity_upper_bound, stopping_test
from repro.core.reference import ReferenceTable
from repro.core.tokens import TupleTokens
from repro.core.weights import WeightFunction
from repro.db.errors import RecordNotFoundError
from repro.eti.index import EtiIndex
from repro.eti.signature import signature_entries


@dataclass(frozen=True)
class Match:
    """One fuzzy match: the reference tuple and its fms similarity."""

    tid: int
    similarity: float
    values: tuple[str | None, ...]


@dataclass
class MatchStats:
    """Per-query counters behind the paper's efficiency figures."""

    strategy: str = ""
    eti_lookups: int = 0
    tids_processed: int = 0
    tids_admitted: int = 0
    candidates_fetched: int = 0
    fms_evaluations: int = 0
    osc_fetch_attempts: int = 0
    osc_succeeded: bool = False
    elapsed_seconds: float = 0.0


@dataclass
class MatchResult:
    """Matches (best first) plus the query's statistics."""

    matches: list[Match] = field(default_factory=list)
    stats: MatchStats = field(default_factory=MatchStats)
    trace: list[str] | None = None
    """Human-readable event log of the query, when requested."""

    @property
    def best(self) -> Match | None:
        return self.matches[0] if self.matches else None


@dataclass(frozen=True)
class _TokenInfo:
    token: str
    column: int
    weight: float


class FuzzyMatcher:
    """Fuzzy match queries against one reference relation.

    Parameters
    ----------
    reference:
        The clean reference relation.
    weights:
        Token weight provider (normally an IDF frequency cache built from
        the reference relation).
    config:
        Algorithm parameters.
    eti:
        A built :class:`EtiIndex`; required for the indexed strategies,
        optional if only ``naive`` matching is used.
    hasher:
        The min-hash family.  Must be the one the ETI was built with; when
        omitted, a hasher with the config's (q, H, seed) is created, which
        matches an ETI built from the same config.
    """

    def __init__(
        self,
        reference: ReferenceTable,
        weights: WeightFunction,
        config: MatchConfig | None = None,
        eti: EtiIndex | None = None,
        hasher: MinHasher | None = None,
    ):
        self.reference = reference
        self.weights = weights
        self.config = config if config is not None else MatchConfig()
        self.eti = eti
        self.hasher = (
            hasher
            if hasher is not None
            else MinHasher(self.config.q, self.config.signature_size, self.config.seed)
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def match(
        self,
        values,
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        trace: bool = False,
    ) -> MatchResult:
        """Find the K fuzzy matches of one input tuple.

        ``strategy`` is ``"naive"``, ``"basic"``, or ``"osc"``; the default
        follows ``config.use_osc``.  ``k`` and ``min_similarity`` default to
        the config's values.  With ``trace=True`` the result carries a
        human-readable event log of every lookup and decision (indexed
        strategies only) — useful for debugging and teaching.
        """
        if len(values) != self.reference.num_columns:
            raise ValueError(
                f"input tuple has {len(values)} columns, reference has "
                f"{self.reference.num_columns}"
            )
        k = k if k is not None else self.config.k
        c = min_similarity if min_similarity is not None else self.config.min_similarity
        if strategy is None:
            strategy = "osc" if self.config.use_osc else "basic"
        if strategy not in ("naive", "basic", "osc"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy != "naive" and self.eti is None:
            raise ValueError(f"strategy {strategy!r} requires a built ETI")

        started = time.perf_counter()
        if strategy == "naive":
            result = self._match_naive(values, k, c)
        else:
            result = self._match_indexed(
                values, k, c, use_osc=(strategy == "osc"), trace=trace
            )
        result.stats.strategy = strategy
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    def match_many(
        self,
        batch,
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
    ) -> list[MatchResult]:
        """Match a batch of input tuples; results in input order.

        A convenience wrapper over :meth:`match` for the ETL-style usage
        of Figure 1, where input tuples arrive in batches.
        """
        return [
            self.match(values, k=k, min_similarity=min_similarity, strategy=strategy)
            for values in batch
        ]

    # ------------------------------------------------------------------
    # Naive scan
    # ------------------------------------------------------------------

    def _match_naive(self, values, k: int, c: float) -> MatchResult:
        result = MatchResult()
        input_tokens = TupleTokens.from_values(values)
        best: list[tuple[float, int, tuple]] = []
        for tid, reference_values in self.reference.scan():
            similarity = fms(
                input_tokens,
                TupleTokens.from_values(reference_values),
                self.weights,
                self.config,
            )
            result.stats.fms_evaluations += 1
            if similarity >= c:
                best.append((similarity, tid, reference_values))
        best.sort(key=lambda item: (-item[0], item[1]))
        result.matches = [
            Match(tid, similarity, values_)
            for similarity, tid, values_ in best[:k]
        ]
        return result

    # ------------------------------------------------------------------
    # Indexed strategies (basic + OSC)
    # ------------------------------------------------------------------

    def _match_indexed(
        self, values, k: int, c: float, use_osc: bool, trace: bool = False
    ) -> MatchResult:
        result = MatchResult()
        stats = result.stats
        config = self.config
        eti = self.eti
        log = None
        if trace:
            result.trace = []
            log = result.trace.append
        input_tokens = TupleTokens.from_values(values)
        column_weights = config.normalized_column_weights(input_tokens.num_columns)

        token_infos = [
            _TokenInfo(token, column, self.weights.weight(token, column) * column_weights[column])
            for token, column in input_tokens.all_tokens()
        ]
        input_weight = sum(info.weight for info in token_infos)
        if log:
            for info in token_infos:
                log(f"token {info.token!r} (col {info.column}) w={info.weight:.3f}")
            log(f"w(u) = {input_weight:.3f}, threshold = {c * input_weight:.3f}")
        if input_weight <= 0.0:
            if log:
                log("all token weights are zero: no match possible")
            return result

        # Expand tokens into weighted signature entries.
        entries: list[tuple[float, int, int, str, int]] = []
        # (qgram_weight, token_index, coordinate, gram, column)
        for token_index, info in enumerate(token_infos):
            for entry in signature_entries(info.token, self.hasher, config):
                entries.append(
                    (
                        info.weight * entry.weight_fraction,
                        token_index,
                        entry.coordinate,
                        entry.gram,
                        info.column,
                    )
                )
        if use_osc:
            # Decreasing weight; ties resolve in original (token) order for
            # determinism.
            entries.sort(key=lambda e: -e[0])

        total_entry_weight = sum(e[0] for e in entries)
        adjustment_unit = 1.0 - 1.0 / config.q
        full_adjustment = sum(info.weight for info in token_infos) * adjustment_unit
        threshold = c * input_weight
        # Admission bar for new tids.  The paper's Figure 3 step 9b uses
        # w(u)·c outright, but its step 11 retains tids down to w(u)·c −
        # AdjustmentTerm; admitting against the unadjusted bar would starve
        # candidates the retention floor means to keep (visible for c > 0:
        # a tid first seen after (1−c) of the signature weight can still
        # clear c once the adjustment is credited).  We admit against the
        # adjusted floor, which is consistent and still bounds table size.
        score_table = ScoreTable(max(threshold - full_adjustment, 0.0))
        fms_cache: dict[int, tuple[float, tuple]] = {}
        lookups_before = eti.lookups

        processed_weight = 0.0
        for qgram_weight, token_index, coordinate, gram, column in entries:
            remaining = total_entry_weight - processed_weight
            eti_entry = eti.lookup(gram, coordinate, column)
            if log:
                if eti_entry is None:
                    outcome = "miss"
                elif eti_entry.is_stop_qgram:
                    outcome = f"stop q-gram (freq {eti_entry.frequency})"
                else:
                    outcome = f"{len(eti_entry.tid_list)} tids"
                log(
                    f"lookup ({gram!r}, coord {coordinate}, col {column}) "
                    f"w={qgram_weight:.3f} -> {outcome}"
                )
            if eti_entry is not None and eti_entry.tid_list:
                score_table.add_tid_list(eti_entry.tid_list, qgram_weight, remaining)
            processed_weight += qgram_weight

            if not use_osc or not score_table.scores:
                continue
            decision = fetching_test(
                score_table, k, processed_weight, total_entry_weight
            )
            if not decision.should_fetch:
                continue
            stats.osc_fetch_attempts += 1
            if log:
                log(
                    f"OSC fetching test passed: top-{k} {decision.top_tids}, "
                    f"outside cap {decision.outside_score_cap:.3f}"
                )
            similarities = [
                self._verify(tid, input_tokens, fms_cache, stats)[0]
                for tid in decision.top_tids
            ]
            if stopping_test(
                similarities,
                decision.outside_score_cap,
                input_weight,
                config.q,
                conservative=config.osc_conservative,
            ):
                stats.osc_succeeded = True
                if log:
                    log(
                        "OSC stopping test passed: fms "
                        + ", ".join(f"{s:.3f}" for s in similarities)
                        + f" >= bound {decision.outside_score_cap / input_weight:.3f}"
                    )
                matches = [
                    Match(tid, similarity, fms_cache[tid][1])
                    for tid, similarity in zip(decision.top_tids, similarities)
                    if similarity >= c
                ]
                matches.sort(key=lambda m: (-m.similarity, m.tid))
                result.matches = matches
                self._finalize(stats, score_table, lookups_before)
                return result
            if log:
                log(
                    "OSC stopping test failed (fms "
                    + ", ".join(f"{s:.3f}" for s in similarities)
                    + "); continuing lookups"
                )

        # Basic finish: fetch candidates in decreasing score order, stopping
        # once the next upper bound cannot displace the K-th verified match.
        floor = threshold - full_adjustment
        candidates = score_table.candidates(floor)
        if log:
            log(
                f"verification phase: {len(candidates)} candidates "
                f"above floor {floor:.3f}"
            )
        verified: list[tuple[float, int]] = []
        for tid, score in candidates:
            upper_bound = similarity_upper_bound(score, input_weight, config.q)
            if upper_bound < c:
                break
            if len(verified) >= k and upper_bound <= verified[k - 1][0]:
                if log:
                    log(
                        f"stop: next upper bound {upper_bound:.3f} cannot "
                        f"displace K-th fms {verified[k - 1][0]:.3f}"
                    )
                break
            similarity, _ = self._verify(tid, input_tokens, fms_cache, stats)
            if log:
                log(f"verify tid {tid}: score {score:.3f} -> fms {similarity:.3f}")
            if similarity >= c:
                verified.append((similarity, tid))
                verified.sort(key=lambda item: (-item[0], item[1]))
                del verified[k:]
        result.matches = [
            Match(tid, similarity, fms_cache[tid][1]) for similarity, tid in verified
        ]
        self._finalize(stats, score_table, lookups_before)
        return result

    def _verify(
        self,
        tid: int,
        input_tokens: TupleTokens,
        fms_cache: dict[int, tuple[float, tuple]],
        stats: MatchStats,
    ) -> tuple[float, tuple]:
        """Fetch ``tid`` (once) and compute its exact fms (once).

        A tid the ETI names but the reference relation no longer holds
        (possible when index maintenance lags deletes) verifies to
        similarity −1, which no threshold admits and no stopping test
        accepts — dangling index entries degrade, they don't crash.
        """
        cached = fms_cache.get(tid)
        if cached is not None:
            return cached
        try:
            reference_values = self.reference.fetch(tid)
        except RecordNotFoundError:
            fms_cache[tid] = (-1.0, ())
            return fms_cache[tid]
        stats.candidates_fetched += 1
        similarity = fms(
            input_tokens,
            TupleTokens.from_values(reference_values),
            self.weights,
            self.config,
        )
        stats.fms_evaluations += 1
        fms_cache[tid] = (similarity, reference_values)
        return fms_cache[tid]

    def _finalize(
        self, stats: MatchStats, score_table: ScoreTable, lookups_before: int
    ) -> None:
        stats.eti_lookups = self.eti.lookups - lookups_before
        stats.tids_processed = score_table.stats.tids_processed
        stats.tids_admitted = score_table.stats.tids_admitted
