"""Edit-distance kernels: bit-parallel Myers, banded DP, and the router.

The verification step of a fuzzy-match query spends almost all of its time
computing Levenshtein distances between token pairs (the per-cell cost of
the transformation DP in :mod:`repro.core.fms`).  This module provides
three interchangeable kernels that compute the *same* function — the
unnormalized Levenshtein distance — at different cost profiles:

- :func:`classic_distance` — the reference ``O(m·n)`` dynamic program with
  preallocated rows.  Always exact; the parity baseline for the others.
- :func:`myers_distance` — Myers' bit-parallel algorithm (*A Fast
  Bit-Vector Algorithm for Approximate String Matching*, JACM 1999, in the
  column-wise formulation of Hyyrö 2003).  One machine-word of DP column
  state per pattern character block gives ``O(⌈m/w⌉·n)`` word operations.
  Python integers are arbitrary precision, so the "block" variant for
  patterns longer than a machine word is the same code path: the bit
  vectors simply grow past 64 bits and each bitwise operation processes
  every block at once.
- :func:`bounded_distance` — a Ukkonen-style banded DP that only fills
  cells within ``limit`` of the diagonal and returns early once the band's
  running minimum exceeds the cutoff.  The return value is the exact
  distance when it is ``<= limit`` and otherwise a *certified lower bound*
  greater than ``limit`` — which is all a thresholded caller needs.

:func:`best_distance` routes between the classic and Myers kernels by
operand size; :func:`repro.core.strings.edit_distance_raw` delegates to
it, so every edit-distance consumer in the repository shares the fast
path.  A seeded randomized parity suite (``tests/test_kernels.py``)
asserts the three kernels agree bit-for-bit, and
``benchmarks/bench_kernels.py`` records the speedups.

All kernels are pure functions of their string arguments — no clocks, no
randomness — which the reprolint ``determinism`` rule now enforces for
this module.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry, default_registry

#: Patterns shorter than this go to the classic DP: for one- and
#: two-character tokens the bit-vector setup costs more than the handful
#: of DP cells it replaces (measured in ``benchmarks/bench_kernels.py``).
MYERS_MIN_PATTERN = 3


class KernelCounters:
    """Cumulative work counters for the edit-distance kernels.

    A view over relaxed counters in the process-global metrics registry
    (``repro_kernel_*_total`` series).  Benchmarks and tests
    snapshot/diff these to *measure* (not assert) where distance work
    went: ``classic_cells`` counts DP cells filled by the reference
    kernel, ``myers_words`` counts outer-loop iterations of the
    bit-parallel kernel (one per text character), ``banded_cells``
    counts band cells filled, and ``banded_early_exits`` counts calls
    that abandoned with a certified lower bound instead of an exact
    distance.  Counter updates are lockless increments; concurrent
    queries may under-count slightly, which only ever distorts
    reporting, never answers.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = default_registry()
        self._classic_calls = registry.counter(
            "repro_kernel_classic_calls_total", relaxed=True
        )
        self._classic_cells = registry.counter(
            "repro_kernel_classic_cells_total", relaxed=True
        )
        self._myers_calls = registry.counter(
            "repro_kernel_myers_calls_total", relaxed=True
        )
        self._myers_words = registry.counter(
            "repro_kernel_myers_words_total", relaxed=True
        )
        self._banded_calls = registry.counter(
            "repro_kernel_banded_calls_total", relaxed=True
        )
        self._banded_cells = registry.counter(
            "repro_kernel_banded_cells_total", relaxed=True
        )
        self._banded_early_exits = registry.counter(
            "repro_kernel_banded_early_exits_total", relaxed=True
        )

    @property
    def classic_calls(self) -> int:
        """Calls routed to the classic DP kernel."""
        return self._classic_calls.value()

    @property
    def classic_cells(self) -> int:
        """DP cells filled by the classic kernel."""
        return self._classic_cells.value()

    @property
    def myers_calls(self) -> int:
        """Calls routed to the bit-parallel kernel."""
        return self._myers_calls.value()

    @property
    def myers_words(self) -> int:
        """Outer-loop iterations of the bit-parallel kernel."""
        return self._myers_words.value()

    @property
    def banded_calls(self) -> int:
        """Calls routed to the banded kernel."""
        return self._banded_calls.value()

    @property
    def banded_cells(self) -> int:
        """Band cells filled by the banded kernel."""
        return self._banded_cells.value()

    @property
    def banded_early_exits(self) -> int:
        """Banded calls that returned a certified lower bound."""
        return self._banded_early_exits.value()

    def add_classic(self, cells: int) -> None:
        """Count one classic-DP call filling ``cells`` cells."""
        self._classic_calls.inc()
        self._classic_cells.inc(cells)

    def add_myers(self, words: int) -> None:
        """Count one bit-parallel call over ``words`` text characters."""
        self._myers_calls.inc()
        self._myers_words.inc(words)

    def add_banded_call(self) -> None:
        """Count one banded-kernel call."""
        self._banded_calls.inc()

    def add_banded_cells(self, cells: int) -> None:
        """Count ``cells`` band cells filled."""
        self._banded_cells.inc(cells)

    def add_banded_early_exit(self) -> None:
        """Count one early exit with a certified lower bound."""
        self._banded_early_exits.inc()

    def snapshot(self) -> tuple[int, ...]:
        """The counter values at this instant, for before/after deltas."""
        return (
            self.classic_calls,
            self.classic_cells,
            self.myers_calls,
            self.myers_words,
            self.banded_calls,
            self.banded_cells,
            self.banded_early_exits,
        )

    def reset(self) -> None:
        """Zero every counter (benchmark bracketing)."""
        self._classic_calls.reset()
        self._classic_cells.reset()
        self._myers_calls.reset()
        self._myers_words.reset()
        self._banded_calls.reset()
        self._banded_cells.reset()
        self._banded_early_exits.reset()


#: Module-wide counter instance shared by every kernel call.
COUNTERS = KernelCounters()


def classic_distance(s1: str, s2: str) -> int:
    """Reference ``O(m·n)`` Levenshtein DP with preallocated rows.

    The two row buffers are allocated once and written by index — no
    per-cell ``list.append`` — and the shorter string is kept in the inner
    loop so the working set is ``O(min(m, n))``.
    """
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    if len(s2) < len(s1):
        s1, s2 = s2, s1
    m = len(s1)
    COUNTERS.add_classic(m * len(s2))
    previous = list(range(m + 1))
    current = [0] * (m + 1)
    for row, c2 in enumerate(s2, start=1):
        current[0] = row
        prev_diag = previous[0]
        for col in range(1, m + 1):
            cost_sub = prev_diag + (s1[col - 1] != c2)
            cost_del = previous[col] + 1
            if cost_del < cost_sub:
                cost_sub = cost_del
            cost_ins = current[col - 1] + 1
            if cost_ins < cost_sub:
                cost_sub = cost_ins
            current[col] = cost_sub
            prev_diag = previous[col]
        previous, current = current, previous
    return previous[m]


def myers_distance(s1: str, s2: str) -> int:
    """Myers/Hyyrö bit-parallel Levenshtein distance.

    The shorter string becomes the pattern: its positions map to bits of
    the ``Peq`` match masks, and each character of the text updates the
    whole DP column with a constant number of word operations.  Python's
    arbitrary-precision integers make the multi-word ("block") variant
    automatic — a 200-character pattern just uses 200-bit vectors, and
    every ``|``/``&``/``+`` processes all ⌈m/64⌉ words per operation.
    """
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    if len(s2) < len(s1):
        s1, s2 = s2, s1
    m = len(s1)
    COUNTERS.add_myers(len(s2))
    peq: dict[str, int] = {}
    bit = 1
    for ch in s1:
        peq[ch] = peq.get(ch, 0) | bit
        bit <<= 1
    full = bit - 1
    last = bit >> 1
    pv = full
    mv = 0
    score = m
    get = peq.get
    # ph/mh are left unmasked between steps: Python's two's-complement
    # semantics for negative ints keep every bit below m correct, and the
    # single `& full` on pv re-normalizes the carried state each round.
    for ch in s2:
        eq = get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | ~(xh | pv)
        mh = pv & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = (ph << 1) | 1
        pv = ((mh << 1) | ~(xv | ph)) & full
        mv = ph & xv
    return score


def bounded_distance(s1: str, s2: str, limit: int) -> int:
    """Banded Levenshtein distance with a ``limit`` early exit.

    Returns the exact distance when it is ``<= limit``; otherwise returns
    ``limit + 1`` (or the length difference, when that alone exceeds the
    cutoff), which is a *certified lower bound* on the true distance —
    callers that only need "does the distance clear this threshold" get
    their answer without paying for the full DP.

    Cells farther than ``limit`` from the diagonal can never hold a value
    ``<= limit`` (``D[i][j] >= |i - j|``), so only a ``2·limit + 1`` band
    is filled, and the scan abandons as soon as the band's running row
    minimum exceeds the cutoff: banded cell values only over-estimate
    out-of-threshold distances, and a cell whose true value is within the
    threshold is computed exactly (its optimal path stays inside the
    band), so a row minimum above ``limit`` proves every completion is
    above ``limit`` too.  A negative ``limit`` short-circuits.
    """
    if s1 == s2:
        return 0
    if limit < 0:
        return 1
    if len(s2) < len(s1):
        s1, s2 = s2, s1
    m = len(s1)
    n = len(s2)
    if n - m > limit:
        return n - m
    COUNTERS.add_banded_call()
    # previous[j] = banded D[i-1][j]; cells outside row i-1's band are
    # stale and are never read (the col guards below enforce the band).
    previous = list(range(m + 1))
    current = [0] * (m + 1)
    big = m + n  # larger than any true distance
    cells = 0
    for row, c2 in enumerate(s2, start=1):
        low = row - limit
        if low < 1:
            low = 1
        high = row + limit
        if high > m:
            high = m
        if low == 1:
            current[0] = row  # true D[i][0]; in-band while row <= limit + 1
            row_min = row
        else:
            row_min = big
        prev_diag = previous[low - 1]
        for col in range(low, high + 1):
            cost = prev_diag + (s1[col - 1] != c2)
            if col < row + limit:  # the cell above is inside row i-1's band
                cost_del = previous[col] + 1
                if cost_del < cost:
                    cost = cost_del
            if col > low or low == 1:  # the cell left is inside this band
                cost_ins = current[col - 1] + 1
                if cost_ins < cost:
                    cost = cost_ins
            current[col] = cost
            if cost < row_min:
                row_min = cost
            prev_diag = previous[col]
        cells += high - low + 1
        if row_min > limit:
            COUNTERS.add_banded_cells(cells)
            COUNTERS.add_banded_early_exit()
            return limit + 1
        previous, current = current, previous
    COUNTERS.add_banded_cells(cells)
    distance = previous[m]
    if distance > limit:
        # Banded values may over-estimate once past the cutoff; only the
        # threshold verdict is certified.
        COUNTERS.add_banded_early_exit()
        return limit + 1
    return distance


def best_distance(s1: str, s2: str) -> int:
    """Exact Levenshtein distance via the cheapest applicable kernel.

    Tiny operands (pattern shorter than :data:`MYERS_MIN_PATTERN`) go to
    the classic DP, everything else to the bit-parallel kernel.  Both are
    exact, so routing is purely a performance decision.
    """
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    if min(len(s1), len(s2)) < MYERS_MIN_PATTERN:
        return classic_distance(s1, s2)
    return myers_distance(s1, s2)
