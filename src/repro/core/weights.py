"""IDF token weights and the token-frequency cache (§3, §4.4.1).

The weight of token ``t`` in column ``i`` is ``IDF(t, i) = log(|R| /
freq(t, i))`` where ``freq(t, i)`` counts reference tuples whose column ``i``
token set contains ``t``.  A token unseen in column ``i`` is assumed to be an
erroneous version of *some* reference token, so it receives the average
weight of all (distinct) tokens in that column.

Three cache implementations mirror §4.4.1:

- :class:`TokenFrequencyCache` — the plain in-memory dict ("given current
  main memory sizes ... this assumption is valid").
- :class:`HashedTokenFrequencyCache` — "cache without collisions": tokens
  are replaced by a 1-1 cryptographic hash to shrink the entry size.
- :class:`BoundedTokenFrequencyCache` — "cache with collisions": at most M
  buckets; colliding tokens share a bucket, trading accuracy for memory.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Protocol, Sequence

from repro.core.tokens import TupleTokens


class WeightFunction(Protocol):
    """What the similarity functions need from a weight provider."""

    def weight(self, token: str, column: int) -> float:
        """``w(t, i)``: the token's weight in column ``i``."""
        ...

    def frequency(self, token: str, column: int) -> int:
        """``freq(t, i)``: reference tuples containing the token."""
        ...


class _BaseFrequencyCache:
    """Shared IDF arithmetic over a concrete frequency store."""

    def __init__(self, num_tuples: int, num_columns: int) -> None:
        if num_tuples < 1:
            raise ValueError("reference relation must be non-empty")
        self.num_tuples = num_tuples
        self.num_columns = num_columns
        self._column_totals = [0.0] * num_columns
        self._column_counts = [0] * num_columns
        self._column_averages: list[float] | None = None
        #: Bumped on every mutation; memo layers in front of ``weight``
        #: (:class:`repro.core.cache.CachingWeightFunction`) watch this to
        #: invalidate themselves when frequencies change.
        self.version = 0

    # -- subclass hooks --------------------------------------------------

    def frequency(self, token: str, column: int) -> int:
        raise NotImplementedError

    # -- shared API -------------------------------------------------------

    def idf(self, frequency: int) -> float:
        """``log(|R| / freq)``, the raw IDF value."""
        return math.log(self.num_tuples / frequency)

    def average_weight(self, column: int) -> float:
        """Average IDF of all distinct tokens in ``column``.

        This is the weight assigned to unseen (presumed erroneous) tokens.
        A column with no tokens at all falls back to the maximum possible
        IDF, ``log(|R|)``, treating the phantom token as maximally rare.
        """
        if self._column_averages is None:
            averages = []
            for col in range(self.num_columns):
                if self._column_counts[col]:
                    averages.append(self._column_totals[col] / self._column_counts[col])
                else:
                    averages.append(math.log(self.num_tuples) if self.num_tuples > 1 else 1.0)
            self._column_averages = averages
        return self._column_averages[column]

    def weight(self, token: str, column: int) -> float:
        """``w(t, i)``: IDF if the token occurs in the column, else average.

        A token appearing in every tuple has IDF 0 (the paper keeps that —
        it contributes nothing either way).  Weights are clamped at 0: the
        bounded ("with collisions") cache can merge bucket counts past
        ``|R|``, which would otherwise go negative.
        """
        freq = self.frequency(token, column)
        if freq > 0:
            return max(self.idf(freq), 0.0)
        return self.average_weight(column)

    def tuple_weight(self, tokens: TupleTokens) -> float:
        """``w(u)``: total weight of the token set ``tok(u)``."""
        return sum(self.weight(t, col) for t, col in tokens.all_tokens())

    def _accumulate(self, column: int, frequency: int) -> None:
        self._column_totals[column] += self.idf(frequency)
        self._column_counts[column] += 1
        self._column_averages = None
        self.version += 1


class TokenFrequencyCache(_BaseFrequencyCache):
    """Plain main-memory token-frequency cache keyed by (column, token).

    The only variant that also supports *incremental maintenance*
    (:meth:`add_tuple` / :meth:`remove_tuple`): column averages are
    recomputed lazily from the live frequency map, and ``|R|`` tracks the
    mutations, so IDF weights stay exact as the reference relation changes
    (pair with :class:`repro.eti.maintenance.EtiMaintainer`).
    """

    def __init__(self, num_tuples: int, num_columns: int) -> None:
        super().__init__(num_tuples, num_columns)
        self._frequencies: dict[tuple[int, str], int] = {}

    def frequency(self, token: str, column: int) -> int:
        """``freq(t, i)``: stored frequency, 0 if unseen."""
        return self._frequencies.get((column, token), 0)

    def average_weight(self, column: int) -> float:
        """Average IDF over the live frequency map (recomputed on change)."""
        if self._column_averages is None:
            totals = [0.0] * self.num_columns
            counts = [0] * self.num_columns
            for (col, _), freq in self._frequencies.items():
                totals[col] += max(self.idf(freq), 0.0)
                counts[col] += 1
            fallback = math.log(self.num_tuples) if self.num_tuples > 1 else 1.0
            self._column_averages = [
                totals[c] / counts[c] if counts[c] else fallback
                for c in range(self.num_columns)
            ]
        return self._column_averages[column]

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def add_tuple(self, values: Sequence[str | None]) -> None:
        """Account for one reference tuple being inserted."""
        tokens = TupleTokens.from_values(values)
        if tokens.num_columns != self.num_columns:
            raise ValueError(
                f"{tokens.num_columns} columns for a {self.num_columns}-column cache"
            )
        self.num_tuples += 1
        for token, column in tokens.all_tokens():
            key = (column, token)
            self._frequencies[key] = self._frequencies.get(key, 0) + 1
        self._column_averages = None
        self.version += 1

    def remove_tuple(self, values: Sequence[str | None]) -> None:
        """Account for one reference tuple being deleted."""
        tokens = TupleTokens.from_values(values)
        if tokens.num_columns != self.num_columns:
            raise ValueError(
                f"{tokens.num_columns} columns for a {self.num_columns}-column cache"
            )
        self.num_tuples = max(self.num_tuples - 1, 1)
        for token, column in tokens.all_tokens():
            key = (column, token)
            current = self._frequencies.get(key, 0)
            if current <= 1:
                self._frequencies.pop(key, None)
            else:
                self._frequencies[key] = current - 1
        self._column_averages = None
        self.version += 1

    def set_frequency(self, token: str, column: int, frequency: int) -> None:
        """Record one token's frequency (each entry set exactly once)."""
        if frequency < 1:
            raise ValueError("stored frequencies must be positive")
        key = (column, token)
        if key in self._frequencies:
            raise ValueError(f"frequency for {key!r} already set")
        self._frequencies[key] = frequency
        self._accumulate(column, frequency)

    @property
    def num_entries(self) -> int:
        return len(self._frequencies)

    def distinct_tokens(self, column: int) -> int:
        """Number of distinct tokens stored for ``column``."""
        return sum(1 for (col, _) in self._frequencies if col == column)


class HashedTokenFrequencyCache(_BaseFrequencyCache):
    """"Cache without collisions" (§4.4.1): tokens stored as MD5 digests.

    The 1-1 hash (collision probability negligible) shrinks each entry to a
    fixed-size key; weights are bit-exact equal to the plain cache.
    """

    def __init__(self, num_tuples: int, num_columns: int) -> None:
        super().__init__(num_tuples, num_columns)
        self._frequencies: dict[tuple[int, bytes], int] = {}

    @staticmethod
    def _digest(token: str) -> bytes:
        return hashlib.md5(token.encode("utf-8")).digest()

    def frequency(self, token: str, column: int) -> int:
        """``freq(t, i)`` via the token's digest."""
        return self._frequencies.get((column, self._digest(token)), 0)

    def set_frequency(self, token: str, column: int, frequency: int) -> None:
        """Record one token's frequency under its digest."""
        if frequency < 1:
            raise ValueError("stored frequencies must be positive")
        key = (column, self._digest(token))
        if key in self._frequencies:
            raise ValueError(f"frequency for token {token!r} already set")
        self._frequencies[key] = frequency
        self._accumulate(column, frequency)

    @property
    def num_entries(self) -> int:
        return len(self._frequencies)


class BoundedTokenFrequencyCache(_BaseFrequencyCache):
    """"Cache with collisions" (§4.4.1): at most ``max_entries`` buckets.

    Tokens hash into a fixed bucket table; colliding tokens share one
    frequency counter, so weights may be under-estimated for rare tokens
    colliding with frequent ones.  The paper flags this as the least
    preferred option; it exists here so the accuracy impact can be measured.
    """

    def __init__(self, num_tuples: int, num_columns: int, max_entries: int) -> None:
        super().__init__(num_tuples, num_columns)
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._buckets: dict[int, int] = {}

    def _bucket(self, token: str, column: int) -> int:
        digest = hashlib.md5(f"{column}:{token}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") % self.max_entries

    def frequency(self, token: str, column: int) -> int:
        """The token's *bucket* frequency (may include collisions)."""
        return self._buckets.get(self._bucket(token, column), 0)

    def add_frequency(self, token: str, column: int, frequency: int) -> None:
        """Accumulate ``frequency`` into the token's bucket.

        Unlike the exact caches this is additive: collisions merge counts,
        which is exactly the accuracy hazard §4.4.1 describes.
        """
        if frequency < 1:
            raise ValueError("stored frequencies must be positive")
        bucket = self._bucket(token, column)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + frequency
        self._accumulate(column, frequency)

    # The bounded cache reuses add_frequency for the builder protocol.
    set_frequency = add_frequency

    @property
    def num_entries(self) -> int:
        return len(self._buckets)


def build_frequency_cache(
    tuples: Iterable[Sequence[str | None]],
    num_columns: int,
    cache: _BaseFrequencyCache | None = None,
    num_tuples: int | None = None,
) -> _BaseFrequencyCache:
    """Build a token-frequency cache by scanning reference tuples.

    ``tuples`` yields the attribute values (no tid column).  ``freq(t, i)``
    counts tuples whose column-i token *set* contains ``t`` — a token
    repeated inside one attribute value counts once, per the paper's
    set-based definition.

    When ``cache`` is None a plain :class:`TokenFrequencyCache` is built;
    pass a pre-sized hashed or bounded cache to use the §4.4.1 variants
    (``num_tuples`` must then match the scan).
    """
    counts: dict[tuple[int, str], int] = {}
    scanned = 0
    for values in tuples:
        scanned += 1
        tokens = TupleTokens.from_values(values)
        for column in range(num_columns):
            for token in tokens.column_tokens(column):
                key = (column, token)
                counts[key] = counts.get(key, 0) + 1
    if cache is None:
        cache = TokenFrequencyCache(max(scanned, 1), num_columns)
    elif num_tuples is not None and num_tuples != scanned:
        raise ValueError(f"cache sized for {num_tuples} tuples, scanned {scanned}")
    for (column, token), freq in sorted(counts.items()):
        cache.set_frequency(token, column, freq)
    return cache
