"""The reference relation R[tid, A1, ..., An] on the storage engine.

Wraps a :class:`repro.db.Relation` whose first column is the integer tuple
identifier and whose remaining columns are nullable strings, with a unique
B+-tree index on tid (the paper assumes "the reference relation R is
indexed on the Tid attribute" for efficient candidate fetches).

Fetch accounting (`fetches`) backs the paper's Figure 8 metric — the number
of reference tuples fetched per input tuple.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.db.database import Database
from repro.db.errors import RecordNotFoundError
from repro.db.types import Column, ColumnType

TID_INDEX = "tid_idx"


class ReferenceTable:
    """A clean reference relation with tid-indexed access."""

    def __init__(
        self,
        db: Database,
        name: str,
        column_names: Sequence[str],
    ) -> None:
        if not column_names:
            raise ValueError("a reference relation needs at least one column")
        self.name = name
        self.column_names = tuple(column_names)
        columns = [Column("tid", ColumnType.INT)]
        columns.extend(Column(c, ColumnType.STR, nullable=True) for c in column_names)
        self.relation = db.create_relation(name, columns)
        self.relation.create_index(TID_INDEX, ["tid"], unique=True)
        self.fetches = 0
        self._version_box = [0]

    @classmethod
    def attach(cls, db: Database, name: str, column_names: Sequence[str]) -> "ReferenceTable":
        """Wrap an existing relation (e.g. one reopened from a snapshot).

        The relation must already carry the tid-first schema and the unique
        tid index that :class:`ReferenceTable` creates.
        """
        relation = db.relation(name)
        expected = ("tid",) + tuple(column_names)
        if relation.schema.names != expected:
            raise ValueError(
                f"relation {name!r} has columns {relation.schema.names}, "
                f"expected {expected}"
            )
        if TID_INDEX not in relation.index_names():
            relation.create_index(TID_INDEX, ["tid"], unique=True)
        table = cls.__new__(cls)
        table.name = name
        table.column_names = tuple(column_names)
        table.relation = relation
        table.fetches = 0
        table._version_box = [0]
        return table

    def view(self) -> "ReferenceTable":
        """A handle onto the same stored relation with its own counters.

        Views share the relation, the tid index, and the mutation version
        (an insert through any view invalidates caches everywhere), but
        count fetches independently — the parallel batch engine gives each
        worker a view so per-query statistics stay race-free.
        """
        table = ReferenceTable.__new__(ReferenceTable)
        table.name = self.name
        table.column_names = self.column_names
        table.relation = self.relation
        table.fetches = 0
        table._version_box = self._version_box
        return table

    @property
    def version(self) -> int:
        """Bumped on every insert/delete; cache layers watch this."""
        return self._version_box[0]

    @property
    def num_columns(self) -> int:
        """Number of attribute columns (tid excluded)."""
        return len(self.column_names)

    def __len__(self) -> int:
        return len(self.relation)

    def insert(self, tid: int, values: Sequence[str | None]) -> None:
        """Insert one reference tuple."""
        if len(values) != self.num_columns:
            raise ValueError(
                f"expected {self.num_columns} values, got {len(values)}"
            )
        self.relation.insert((tid,) + tuple(values))
        self._version_box[0] += 1

    def load(self, rows: Iterable[tuple[int, Sequence[str | None]]]) -> int:
        """Bulk load ``(tid, values)`` pairs; returns the count."""
        count = 0
        for tid, values in rows:
            self.insert(tid, values)
            count += 1
        return count

    def fetch(self, tid: int) -> tuple[str | None, ...]:
        """Fetch the attribute values of tuple ``tid`` via the tid index."""
        self.fetches += 1
        row = self.relation.index_get(TID_INDEX, tid)
        return row[1:]

    def delete(self, tid: int) -> tuple[str | None, ...]:
        """Remove tuple ``tid``; returns its attribute values."""
        rid = self.relation.find_rid(TID_INDEX, tid)
        values = self.relation.fetch(rid)[1:]
        self.relation.delete(rid)
        self._version_box[0] += 1
        return values

    def __contains__(self, tid: int) -> bool:
        try:
            self.relation.index_get(TID_INDEX, tid)
        except RecordNotFoundError:
            return False
        return True

    def scan(self) -> Iterator[tuple[int, tuple[str | None, ...]]]:
        """Yield ``(tid, values)`` for every reference tuple."""
        for row in self.relation.scan():
            yield row[0], row[1:]

    def scan_values(self) -> Iterator[tuple[str | None, ...]]:
        """Yield attribute values only (for frequency-cache building)."""
        for _, values in self.scan():
            yield values

    def reset_fetch_counter(self) -> None:
        """Zero the fetch counter (per-experiment accounting)."""
        self.fetches = 0
