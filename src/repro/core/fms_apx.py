"""The indexable approximations *fmsapx* and *fmst_apx* (§4.1, §5.1).

``fmsapx`` upper-bounds fms (with high probability) by (i) ignoring token
order, (ii) letting every input token match its best same-column reference
token, and (iii) estimating ``1 − ed(t, r)`` via min-hash similarity of
q-gram sets plus the adjustment term ``d_q = 1 − 1/q`` (Lemma 4.2):

    fmsapx(u, v) = (1/w(u)) · Σ_col Σ_{t ∈ tok(u[col])} w(t) ·
                   max_{r ∈ tok(v[col])} min(2/q · simmh(QG(t), QG(r)) + d_q, 1)

The per-token contribution is capped at w(t) — matching the paper's worked
example (a perfect q-gram match contributes exactly w(t), not (2/q + d_q) ·
w(t)) — and the cap preserves the upper-bound property because
``1 − ed(t, r) ≤ 1`` always.

``fmst_apx`` (§5.1) splits each token's importance between the token itself
and its q-gram signature: ``sim'mh(t, r) = ½ (I[t = r] + simmh(t, r))``.
Under the paper's error model it is a rank-preserving transformation of
fmsapx, which is why Q+T indexing gains speed without losing accuracy.

These functions are reference implementations used by tests (to validate
that the ETI-based scoring really upper-bounds fms) and by the naive
matcher variants; query processing itself accumulates the same quantity
incrementally from ETI tid-lists.

Reproduction note on Lemma 4.2.  The paper prints the adjustment as
``d = (1 − 1/q)(1 − 1/m)`` and relaxes it to ``d_q = 1 − 1/q``.  Deriving
the bound from the Jokinen–Ukkonen q-gram count inequality
(``|QG(t) ∩ QG(r)| ≥ m − q + 1 − ed_raw · q``) actually gives
``1 − ed ≤ |∩|/(mq) + (1 − 1/q)(1 + 1/m)`` — the boundary term enters with
a *plus* sign (counterexample: 'bofing' vs 'boeing', m=6, q=3: 1 − ed =
5/6 ≈ 0.833, while the paper's d yields only 0.611).  Consequently fmsapx
as defined can fall below fms by an O(1/m)-order slack per token.  We keep
the paper's definition (their probabilistic guarantee absorbs the slack
alongside the min-hash estimation error) and the test suite checks the
upper-bound property with a matching tolerance instead of exactly.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MatchConfig
from repro.core.minhash import MinHasher
from repro.core.strings import jaccard, qgram_set
from repro.core.tokens import TupleTokens
from repro.core.weights import WeightFunction


def minhash_similarity(
    token1: str, token2: str, hasher: MinHasher
) -> float:
    """``simmh(t1, t2)``: fraction of agreeing min-hash coordinates.

    Signatures of unequal length (a short token versus a long one) are
    compared coordinate-wise up to the shorter signature and normalized by
    the longer, so two short tokens degrade to exact-match comparison.
    """
    sig1 = hasher.signature(token1)
    sig2 = hasher.signature(token2)
    if not sig1 or not sig2:
        return 0.0
    agree = sum(1 for a, b in zip(sig1, sig2) if a == b)
    return agree / max(len(sig1), len(sig2))


def _token_score(
    token: str,
    reference_tokens: Sequence[str],
    config: MatchConfig,
    hasher: MinHasher | None,
    include_token_coordinate: bool,
) -> float:
    """max over reference tokens of the (capped) approximate similarity."""
    adjustment = 1.0 - 1.0 / config.q
    best = 0.0
    for reference in reference_tokens:
        if hasher is not None:
            sim = minhash_similarity(token, reference, hasher)
        else:
            sim = jaccard(qgram_set(token, config.q), qgram_set(reference, config.q))
        if include_token_coordinate:
            sim = 0.5 * (float(token == reference) + sim)
        score = min(2.0 / config.q * sim + adjustment, 1.0)
        if score > best:
            best = score
    return best


def _apx(
    u: TupleTokens | Sequence[str | None],
    v: TupleTokens | Sequence[str | None],
    weights: WeightFunction,
    config: MatchConfig,
    hasher: MinHasher | None,
    include_token_coordinate: bool,
) -> float:
    if not isinstance(u, TupleTokens):
        u = TupleTokens.from_values(u)
    if not isinstance(v, TupleTokens):
        v = TupleTokens.from_values(v)
    if u.num_columns != v.num_columns:
        raise ValueError("tuples must have the same number of columns")
    column_weights = config.normalized_column_weights(u.num_columns)
    total_weight = 0.0
    total_score = 0.0
    for column in range(u.num_columns):
        reference_tokens = tuple(v.column_tokens(column))
        for token in u.column_tokens(column):
            weight = weights.weight(token, column) * column_weights[column]
            total_weight += weight
            if reference_tokens:
                total_score += weight * _token_score(
                    token, reference_tokens, config, hasher, include_token_coordinate
                )
    if total_weight <= 0.0:
        return 1.0 if v.token_count() == 0 else 0.0
    return total_score / total_weight


def fms_apx(
    u: TupleTokens | Sequence[str | None],
    v: TupleTokens | Sequence[str | None],
    weights: WeightFunction,
    config: MatchConfig | None = None,
    hasher: MinHasher | None = None,
) -> float:
    """``fmsapx(u, v)`` (§4.1).

    With ``hasher`` given, token similarity is the min-hash estimate the
    index actually uses; with ``hasher=None`` the exact Jaccard coefficient
    is used instead, which equals the *expectation* of the min-hash variant
    (the ``f2`` function in the proof sketch of Lemma 4.1).
    """
    if config is None:
        config = MatchConfig()
    return _apx(u, v, weights, config, hasher, include_token_coordinate=False)


def fms_t_apx(
    u: TupleTokens | Sequence[str | None],
    v: TupleTokens | Sequence[str | None],
    weights: WeightFunction,
    config: MatchConfig | None = None,
    hasher: MinHasher | None = None,
) -> float:
    """``fmst_apx(u, v)`` (§5.1): token-plus-q-gram similarity."""
    if config is None:
        config = MatchConfig()
    return _apx(u, v, weights, config, hasher, include_token_coordinate=True)
