"""Per-query budgets, circuit breaking, and the degraded-mode contract.

The paper's setting is *online* data cleaning (§1): the fuzzy-match lookup
sits inside an interactive pipeline, where a query that stalls is as bad
as one that answers wrongly — §4.3.2's optimistic short circuiting exists
precisely to bound per-query work.  This module makes that bound
*enforceable under faults*:

- :class:`QueryBudget` caps one query's wall-clock time and physical page
  fetches.  When a budget trips, the matcher does not raise: it returns
  the best-so-far top-K with ``MatchStats.degraded`` set and the reason
  recorded — partial answers are flagged, never silent.
- :class:`CircuitBreaker` watches the ETI path.  Repeated storage
  failures trip it open, after which queries skip straight to the
  index-free ``naive`` scan (the fallback chain ``osc → basic → naive``)
  until a half-open trial succeeds.
- :class:`ResiliencePolicy` bundles both plus the fallback switch; one
  policy is shared by every worker of a
  :class:`~repro.core.batch.BatchMatcher` so the breaker sees the whole
  fleet's failures.

The invariant the chaos suite enforces: under any injected fault
schedule, each query's outcome is exactly one of {bit-identical to the
clean run, flagged degraded with a reason, a typed
:class:`~repro.db.errors.DatabaseError`} — never a silently wrong answer.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.analysis.debuglock import make_lock

if TYPE_CHECKING:
    from repro.db.pager import BufferPool

DEGRADED_DEADLINE = "deadline"
DEGRADED_PAGE_FETCHES = "page_fetches"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff shared by storage retries and the client.

    Attempt ``n`` (0-based) sleeps ``min(base_delay * multiplier**n,
    max_delay)`` before retrying; ``max_attempts`` counts total tries, so
    ``max_attempts=1`` disables retrying.  The buffer pool retries
    :class:`~repro.db.errors.TransientIOError` under this policy, and the
    serve client retries connect / timeout / retryable-shed failures
    under it — one backoff implementation for both layers.

    ``jitter`` decorrelates retries from many peers: when the caller
    supplies a seeded ``rng``, up to ``jitter`` of each delay is randomly
    subtracted, so jittered delays stay within ``(1-jitter)·d .. d`` and
    the cap still holds.  Without an ``rng`` (or with ``jitter=0``) the
    delay is the exact deterministic cap formula — the storage layer's
    historical behaviour, which keeps the chaos suite reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        capped = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if rng is None or self.jitter == 0.0:
            return capped
        return capped * (1.0 - self.jitter * rng.random())


class Deadline:
    """A fixed instant on a monotonic clock, shared by matcher and server.

    Every wall-clock limit in the system — a query budget's deadline, a
    request's end-to-end deadline carried over the wire, a server's drain
    budget — is the same concept: "this work is worthless after instant
    T".  This helper centralizes the arithmetic that used to be
    duplicated as ad-hoc ``started + seconds`` / ``now >= threshold``
    pairs: construct with :meth:`after`, poll with :meth:`expired`, and
    hand the unspent remainder to a narrower scope with
    :meth:`remaining` (deadline *propagation*: a request that waited
    80 ms of its 100 ms deadline in a queue runs with a 20 ms compute
    budget).

    ``clock`` is injectable for deterministic tests; it defaults to
    ``time.monotonic`` so deadlines survive wall-clock adjustments.
    """

    __slots__ = ("at", "_clock")

    def __init__(
        self, at: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.at = at
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """The deadline ``seconds`` from now on ``clock``."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left before the deadline, floored at ``0.0``."""
        return max(0.0, self.at - self._clock())

    def expired(self) -> bool:
        """Has the instant passed?"""
        return self._clock() >= self.at

    def earliest(self, other: "Deadline | None") -> "Deadline":
        """The tighter of two deadlines (``other=None`` means unlimited)."""
        if other is None or self.at <= other.at:
            return self
        return other

    def __repr__(self) -> str:
        return f"Deadline(at={self.at:.6f}, remaining={self.remaining():.6f})"


@dataclass(frozen=True)
class QueryBudget:
    """Hard per-query limits: wall-clock seconds and physical page reads.

    ``deadline`` is seconds of wall clock from the start of the query
    (``None`` = unlimited); ``max_page_fetches`` caps the *physical* page
    reads the query may trigger through the buffer pool (``None`` =
    unlimited).  Construct from CLI-style milliseconds with
    :meth:`from_ms`.
    """

    deadline: float | None = None
    max_page_fetches: int | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.max_page_fetches is not None and self.max_page_fetches < 0:
            raise ValueError("max_page_fetches must be >= 0")

    @classmethod
    def from_ms(
        cls, deadline_ms: float | None = None, max_page_fetches: int | None = None
    ) -> "QueryBudget":
        """Budget from a millisecond deadline (the CLI's unit)."""
        deadline = None if deadline_ms is None else deadline_ms / 1000.0
        return cls(deadline=deadline, max_page_fetches=max_page_fetches)

    @classmethod
    def from_deadline(
        cls,
        deadline: Deadline,
        max_page_fetches: int | None = None,
        floor: float = 0.001,
    ) -> "QueryBudget":
        """The budget covering whatever of ``deadline`` is still unspent.

        This is the deadline-propagation primitive: a request that waited
        in a queue runs with only the remainder of its end-to-end
        deadline as compute budget.  ``floor`` (seconds) keeps the budget
        constructible when the remainder has raced to ~zero — such a
        query degrades on its first poll instead of being rejected here.
        """
        return cls(
            deadline=max(deadline.remaining(), floor),
            max_page_fetches=max_page_fetches,
        )

    @property
    def unlimited(self) -> bool:
        return self.deadline is None and self.max_page_fetches is None

    def start(self, pool: "BufferPool | None" = None) -> "BudgetMeter":
        """Begin metering one query (``pool`` supplies the read counter)."""
        return BudgetMeter(self, pool)


class BudgetMeter:
    """One query's view of its budget: cheap to poll, never raises.

    Page fetches are charged from the pool's ``physical_reads`` delta
    since the meter started.  The pool is shared, so under parallel
    execution a query may be charged for a neighbour's reads — the bound
    stays conservative, which is the right direction for a limit.
    """

    __slots__ = (
        "budget",
        "_pool_stats",
        "_started",
        "_reads_at_start",
        "_deadline",
        "_max_fetches",
    )

    def __init__(self, budget: QueryBudget, pool: "BufferPool | None" = None) -> None:
        self.budget = budget
        self._pool_stats = pool.stats if pool is not None else None
        self._started = time.monotonic()
        self._reads_at_start = (
            self._pool_stats.physical_reads if self._pool_stats is not None else 0
        )
        # exhausted() runs once per index entry on the hot path; flatten
        # the budget into absolute thresholds so each poll is two compares.
        self._deadline = (
            None if budget.deadline is None else Deadline(self._started + budget.deadline)
        )
        self._max_fetches = (
            None
            if budget.max_page_fetches is None or self._pool_stats is None
            else self._reads_at_start + budget.max_page_fetches
        )

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._started

    @property
    def deadline(self) -> Deadline | None:
        """The absolute instant this query must stop at (``None`` = no cap)."""
        return self._deadline

    @property
    def page_fetches(self) -> int:
        if self._pool_stats is None:
            return 0
        return self._pool_stats.physical_reads - self._reads_at_start

    def exhausted(self) -> str | None:
        """The reason the budget is spent, or ``None`` while within it."""
        if self._deadline is not None and self._deadline.expired():
            return DEGRADED_DEADLINE
        if (
            self._max_fetches is not None
            and self._pool_stats.physical_reads >= self._max_fetches
        ):
            return DEGRADED_PAGE_FETCHES
        return None


class CircuitBreaker:
    """A breaker over a protected path, with two half-open policies.

    ``failure_threshold`` consecutive failures trip it open.  While open,
    :meth:`allow` denies the protected path except for half-open trials,
    whose cadence depends on the configuration:

    - **count-based** (``cooldown_s=None``, the historical behaviour):
      one trial every ``half_open_interval`` denials.  Deterministic (no
      clocks), right for batch runs where denials keep arriving.
    - **time-based** (``cooldown_s`` set): after ``cooldown_s`` seconds
      on the monotonic clock the breaker moves to ``half_open`` and
      grants exactly *one* probe; further calls are denied until the
      probe resolves.  :meth:`record_success` closes the breaker,
      :meth:`record_failure` re-trips it and restarts the cooldown.
      This is what a long-running server needs — a tripped breaker
      recloses on its own once the outage passes, without a restart and
      without depending on a steady stream of denials.

    Thread-safe: one breaker is shared across a batch engine's workers
    (or a server's worker pool).  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        half_open_interval: int = 8,
        cooldown_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_interval < 1:
            raise ValueError("half_open_interval must be >= 1")
        if cooldown_s is not None and cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.half_open_interval = half_open_interval
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = make_lock("CircuitBreaker._lock")
        self._consecutive_failures = 0
        self._open = False
        self._half_open = False
        self._opened_at: float | None = None
        self._denials = 0
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or (time-based only) ``"half_open"``."""
        with self._lock:
            if not self._open:
                return "closed"
            return "half_open" if self._half_open else "open"

    def allow(self) -> bool:
        """May the protected path run now?"""
        with self._lock:
            if not self._open:
                return True
            if self.cooldown_s is not None:
                if self._half_open:
                    return False  # one probe in flight; deny the rest
                assert self._opened_at is not None
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._half_open = True
                    return True  # the half-open probe
                return False
            self._denials += 1
            if self._denials % self.half_open_interval == 0:
                return True  # half-open trial
            return False

    def record_success(self) -> None:
        """A protected-path success: reset the count and close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._open = False
            self._half_open = False
            self._opened_at = None
            self._denials = 0

    def record_failure(self) -> None:
        """A protected-path failure; trips (or re-trips) the breaker.

        At ``failure_threshold`` consecutive failures a closed breaker
        opens.  In time-based mode a failure while ``half_open`` — the
        probe itself failed — re-trips: the breaker goes back to fully
        open and the cooldown restarts from now.
        """
        with self._lock:
            self._consecutive_failures += 1
            if self._half_open:
                self._half_open = False
                self._opened_at = self._clock()
                self.trips += 1
                return
            if self._consecutive_failures >= self.failure_threshold and not self._open:
                self._open = True
                self._opened_at = self._clock()
                self.trips += 1


@dataclass
class ResiliencePolicy:
    """Everything one matcher (or batch fleet) needs to survive faults.

    ``budget`` applies to every query unless the call site passes its own;
    ``fallback`` enables the ``osc → basic → naive`` strategy chain on
    :class:`~repro.db.errors.DatabaseError`; ``breaker`` gates the ETI
    path.  Share one policy instance across the workers of a batch engine.
    """

    budget: QueryBudget | None = None
    fallback: bool = True
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)

    @classmethod
    def with_budget(
        cls,
        deadline_ms: float | None = None,
        max_page_fetches: int | None = None,
    ) -> "ResiliencePolicy":
        """Policy with a budget given in CLI units (ms / fetch count)."""
        budget = QueryBudget.from_ms(deadline_ms, max_page_fetches)
        return cls(budget=None if budget.unlimited else budget)


def fallback_chain(strategy: str) -> tuple[str, ...]:
    """The degradation order starting at ``strategy``."""
    chain = ("osc", "basic", "naive")
    try:
        return chain[chain.index(strategy):]
    except ValueError:
        return (strategy,)
