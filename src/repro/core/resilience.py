"""Per-query budgets, circuit breaking, and the degraded-mode contract.

The paper's setting is *online* data cleaning (§1): the fuzzy-match lookup
sits inside an interactive pipeline, where a query that stalls is as bad
as one that answers wrongly — §4.3.2's optimistic short circuiting exists
precisely to bound per-query work.  This module makes that bound
*enforceable under faults*:

- :class:`QueryBudget` caps one query's wall-clock time and physical page
  fetches.  When a budget trips, the matcher does not raise: it returns
  the best-so-far top-K with ``MatchStats.degraded`` set and the reason
  recorded — partial answers are flagged, never silent.
- :class:`CircuitBreaker` watches the ETI path.  Repeated storage
  failures trip it open, after which queries skip straight to the
  index-free ``naive`` scan (the fallback chain ``osc → basic → naive``)
  until a half-open trial succeeds.
- :class:`ResiliencePolicy` bundles both plus the fallback switch; one
  policy is shared by every worker of a
  :class:`~repro.core.batch.BatchMatcher` so the breaker sees the whole
  fleet's failures.

The invariant the chaos suite enforces: under any injected fault
schedule, each query's outcome is exactly one of {bit-identical to the
clean run, flagged degraded with a reason, a typed
:class:`~repro.db.errors.DatabaseError`} — never a silently wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.debuglock import make_lock

if TYPE_CHECKING:
    from repro.db.pager import BufferPool

DEGRADED_DEADLINE = "deadline"
DEGRADED_PAGE_FETCHES = "page_fetches"


@dataclass(frozen=True)
class QueryBudget:
    """Hard per-query limits: wall-clock seconds and physical page reads.

    ``deadline`` is seconds of wall clock from the start of the query
    (``None`` = unlimited); ``max_page_fetches`` caps the *physical* page
    reads the query may trigger through the buffer pool (``None`` =
    unlimited).  Construct from CLI-style milliseconds with
    :meth:`from_ms`.
    """

    deadline: float | None = None
    max_page_fetches: int | None = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.max_page_fetches is not None and self.max_page_fetches < 0:
            raise ValueError("max_page_fetches must be >= 0")

    @classmethod
    def from_ms(
        cls, deadline_ms: float | None = None, max_page_fetches: int | None = None
    ) -> "QueryBudget":
        """Budget from a millisecond deadline (the CLI's unit)."""
        deadline = None if deadline_ms is None else deadline_ms / 1000.0
        return cls(deadline=deadline, max_page_fetches=max_page_fetches)

    @property
    def unlimited(self) -> bool:
        return self.deadline is None and self.max_page_fetches is None

    def start(self, pool: "BufferPool | None" = None) -> "BudgetMeter":
        """Begin metering one query (``pool`` supplies the read counter)."""
        return BudgetMeter(self, pool)


class BudgetMeter:
    """One query's view of its budget: cheap to poll, never raises.

    Page fetches are charged from the pool's ``physical_reads`` delta
    since the meter started.  The pool is shared, so under parallel
    execution a query may be charged for a neighbour's reads — the bound
    stays conservative, which is the right direction for a limit.
    """

    __slots__ = (
        "budget",
        "_pool_stats",
        "_started",
        "_reads_at_start",
        "_deadline_at",
        "_max_fetches",
    )

    def __init__(self, budget: QueryBudget, pool: "BufferPool | None" = None) -> None:
        self.budget = budget
        self._pool_stats = pool.stats if pool is not None else None
        self._started = time.perf_counter()
        self._reads_at_start = (
            self._pool_stats.physical_reads if self._pool_stats is not None else 0
        )
        # exhausted() runs once per index entry on the hot path; flatten
        # the budget into absolute thresholds so each poll is two compares.
        self._deadline_at = (
            None if budget.deadline is None else self._started + budget.deadline
        )
        self._max_fetches = (
            None
            if budget.max_page_fetches is None or self._pool_stats is None
            else self._reads_at_start + budget.max_page_fetches
        )

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    @property
    def page_fetches(self) -> int:
        if self._pool_stats is None:
            return 0
        return self._pool_stats.physical_reads - self._reads_at_start

    def exhausted(self) -> str | None:
        """The reason the budget is spent, or ``None`` while within it."""
        if self._deadline_at is not None and time.perf_counter() >= self._deadline_at:
            return DEGRADED_DEADLINE
        if (
            self._max_fetches is not None
            and self._pool_stats.physical_reads >= self._max_fetches
        ):
            return DEGRADED_PAGE_FETCHES
        return None


class CircuitBreaker:
    """A count-based breaker over the ETI (indexed) query path.

    ``failure_threshold`` consecutive failures trip it open; while open,
    :meth:`allow` denies the protected path except for one half-open
    trial every ``half_open_interval`` denials.  A successful trial
    closes the breaker, a failed one re-opens it.  Deterministic (no
    clocks) and thread-safe: one breaker is shared across a batch
    engine's workers.
    """

    def __init__(self, failure_threshold: int = 3, half_open_interval: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_interval < 1:
            raise ValueError("half_open_interval must be >= 1")
        self.failure_threshold = failure_threshold
        self.half_open_interval = half_open_interval
        self._lock = make_lock("CircuitBreaker._lock")
        self._consecutive_failures = 0
        self._open = False
        self._denials = 0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return "open" if self._open else "closed"

    def allow(self) -> bool:
        """May the protected path run now?"""
        with self._lock:
            if not self._open:
                return True
            self._denials += 1
            if self._denials % self.half_open_interval == 0:
                return True  # half-open trial
            return False

    def record_success(self) -> None:
        """A protected-path success: reset the count and close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._open = False
            self._denials = 0

    def record_failure(self) -> None:
        """A protected-path failure; trips the breaker at the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold and not self._open:
                self._open = True
                self.trips += 1


@dataclass
class ResiliencePolicy:
    """Everything one matcher (or batch fleet) needs to survive faults.

    ``budget`` applies to every query unless the call site passes its own;
    ``fallback`` enables the ``osc → basic → naive`` strategy chain on
    :class:`~repro.db.errors.DatabaseError`; ``breaker`` gates the ETI
    path.  Share one policy instance across the workers of a batch engine.
    """

    budget: QueryBudget | None = None
    fallback: bool = True
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)

    @classmethod
    def with_budget(
        cls,
        deadline_ms: float | None = None,
        max_page_fetches: int | None = None,
    ) -> "ResiliencePolicy":
        """Policy with a budget given in CLI units (ms / fetch count)."""
        budget = QueryBudget.from_ms(deadline_ms, max_page_fetches)
        return cls(budget=None if budget.unlimited else budget)


def fallback_chain(strategy: str) -> tuple[str, ...]:
    """The degradation order starting at ``strategy``."""
    chain = ("osc", "basic", "naive")
    try:
        return chain[chain.index(strategy):]
    except ValueError:
        return (strategy,)
