"""Optimistic short circuiting — the fetching and stopping tests (§4.3.2).

Signature q-grams are processed in decreasing weight order.  After each
lookup, the *fetching test* asks whether the current top-K tids look like
the final answer: the K-th tid's score is linearly extrapolated over the
not-yet-processed signature weight and compared against the best score the
(K+1)-th tid could still reach (the paper's worked example: R1's score 2.0
after two q-grams extrapolates to 4.5, R2 can reach at most 1.0 + 2.5 =
3.5, so fetch).  If the test passes, the top-K candidates are fetched and
verified with exact fms; the *stopping test* then confirms that no tuple
outside the fetched K can possibly be more similar.

The stopping test converts the score-space cap into similarity space
through the capped per-token form of fmsapx.  A token t whose min-hash
similarity to its best reference token is s contributes ``w(t) · min(2/q ·
s + (1 − 1/q), 1)`` to fmsapx·w(u), while contributing ``w(t) · s`` to the
accumulated raw score.  Hence for any tuple whose final raw score is at
most S::

    fms ≤ fmsapx ≤ (2/q) · S / w(u) + (1 − 1/q)

which is the bound an outside tuple must fail to clear.  This is both
safe (fms ≤ fmsapx holds with high probability, Lemma 4.1) and far
tighter than adding the adjustment term outright — tight enough for the
test to actually fire on the majority of inputs, which is what Figure 10
reports.

An over-optimistic fetching test costs only wasted fetches, never a wrong
answer (Theorem 2): correctness rests on the stopping test alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import ScoreTable


@dataclass(frozen=True)
class OscDecision:
    """Outcome of one fetching-test evaluation."""

    should_fetch: bool
    top_tids: tuple[int, ...]
    outside_score_cap: float
    """Best possible final *raw* score of any tid outside ``top_tids``:
    ``ss_i(r_{K+1}) + (w(Q_p) − w(Q_i))``."""


def fetching_test(
    score_table: ScoreTable,
    k: int,
    processed_weight: float,
    total_weight: float,
) -> OscDecision:
    """Evaluate the fetching test after some prefix of lookups.

    ``processed_weight`` is ``w(Q_i)`` (weight of q-grams looked up so far)
    and ``total_weight`` is ``w(Q_p)``.  Returns the decision along with the
    outside-tuple score cap consumed by the stopping test.
    """
    remaining = total_weight - processed_weight
    top = score_table.top(k + 1)
    runner_up_score = top[k][1] if len(top) > k else 0.0
    outside_cap = runner_up_score + remaining
    if len(top) < k or processed_weight <= 0.0:
        return OscDecision(False, (), outside_cap)
    estimated_kth = top[k - 1][1] * (total_weight / processed_weight)
    should_fetch = estimated_kth > outside_cap
    top_tids = tuple(tid for tid, _ in top[:k])
    return OscDecision(should_fetch, top_tids, outside_cap)


def similarity_upper_bound(raw_score: float, input_weight: float, q: int) -> float:
    """Largest fms any tuple with final raw score ``raw_score`` can have.

    ``min((2/q) · raw_score / w(u) + (1 − 1/q), 1)`` — the capped-fmsapx
    bound derived in the module docstring.  Also used by the basic
    algorithm's ordered candidate verification to stop fetching early.
    """
    if input_weight <= 0.0:
        return 1.0
    bound = (2.0 / q) * (raw_score / input_weight) + (1.0 - 1.0 / q)
    return min(bound, 1.0)


def stopping_test(
    similarities: list[float],
    outside_score_cap: float,
    input_weight: float,
    q: int,
    conservative: bool = False,
) -> bool:
    """True iff every fetched candidate beats all outside tuples.

    ``similarities`` are the exact fms values of the fetched top-K.

    With ``conservative=False`` (default) the test is the paper's: compare
    fms against ``(ss_i(r_{K+1}) + w(Q_p) − w(Q_i)) / w(u)`` — the worked
    example's "If fms(u, R1) ≥ 3.5/4.5, we stop".  This treats the raw
    score as a direct stand-in for similarity; it can in principle stop on
    a non-optimal tuple whose competitor has low q-gram overlap but high
    edit similarity, which the paper's accuracy numbers absorb.

    With ``conservative=True`` the outside cap is translated through
    :func:`similarity_upper_bound` instead, which is provably safe with
    respect to fmsapx but fires far less often (the ablation benchmark
    quantifies the trade).
    """
    if conservative:
        bound = similarity_upper_bound(outside_score_cap, input_weight, q)
    elif input_weight > 0.0:
        bound = outside_score_cap / input_weight
    else:
        bound = 0.0
    return all(similarity >= bound for similarity in similarities)
