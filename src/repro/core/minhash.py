"""Min-hash signatures over q-gram sets (§4.1).

``mh_i(S) = argmin_{a ∈ S} h_i(a)`` for H independent hash functions — the
signature stores the *q-grams themselves* (the argmins), because the ETI is
keyed on q-gram strings.  The hash family is a keyed 64-bit mix over
blake2b, seeded deterministically: ETI construction and query processing
must compute identical signatures, and results must be reproducible across
processes (Python's builtin ``hash`` for str is salted per process, so it
is deliberately *not* used).

Short-token convention (§4.2/§4.3.1): a token no longer than ``q``
characters has the token itself as its entire signature.
"""

from __future__ import annotations

import hashlib


class MinHasher:
    """Deterministic min-hash signature generator.

    Parameters
    ----------
    q:
        q-gram size.
    num_hashes:
        H, the number of signature coordinates.
    seed:
        Family seed; the same (q, num_hashes, seed) triple always produces
        the same signatures.
    """

    def __init__(self, q: int, num_hashes: int, seed: int = 2003) -> None:
        if q < 1:
            raise ValueError("q must be positive")
        if num_hashes < 0:
            raise ValueError("num_hashes must be non-negative")
        self.q = q
        self.num_hashes = num_hashes
        self.seed = seed
        self._keys = [
            hashlib.blake2b(
                f"repro-minhash-{seed}-{i}".encode(), digest_size=8
            ).digest()
            for i in range(num_hashes)
        ]
        # Per-instance memo: token -> signature.  Tokens repeat massively
        # across reference tuples ('seattle', 'wa', ...), so this is the
        # difference between O(tokens) and O(distinct tokens) hashing work.
        self._memo: dict[str, tuple[str, ...]] = {}

    def _hash(self, key: bytes, gram: str) -> int:
        digest = hashlib.blake2b(
            gram.encode("utf-8"), key=key, digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")

    def qgrams(self, token: str) -> tuple[str, ...]:
        """All q-grams of ``token`` in positional order (with duplicates)."""
        if len(token) <= self.q:
            return (token,)
        q = self.q
        return tuple(token[i : i + q] for i in range(len(token) - q + 1))

    def signature(self, token: str) -> tuple[str, ...]:
        """The min-hash signature ``mh(token)``.

        Returns a tuple of ``num_hashes`` q-grams (coordinate i is the
        argmin under hash function i), or ``(token,)`` for short tokens.
        An empty token has an empty signature.
        """
        if not token:
            return ()
        cached = self._memo.get(token)
        if cached is not None:
            return cached
        if len(token) <= self.q or self.num_hashes == 0:
            signature: tuple[str, ...] = (token,)
        else:
            grams = sorted(set(self.qgrams(token)))
            signature = tuple(
                min(grams, key=lambda g, k=key: self._hash(k, g))
                for key in self._keys
            )
        self._memo[token] = signature
        return signature

    def signature_length(self, token: str) -> int:
        """``|mh(token)|`` — the divisor in per-q-gram weight assignment."""
        return len(self.signature(token))


def required_signature_size(delta: float, epsilon: float) -> int:
    """The H of Lemma 4.1 / Theorems 1–2: ``H ≥ 2 δ⁻² ln ε⁻¹``.

    With this many min-hash coordinates, ``P(fmsapx < (1 − δ) · fms) ≤ ε``
    and the retrieval algorithms return the true top-K with probability at
    least ``1 − ε``.  The paper's experimental H ∈ {1, 2, 3} sit far below
    these worst-case sizes — the evaluation shows small signatures suffice
    in practice, which is exactly the gap this helper makes visible.
    """
    import math

    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    return math.ceil(2.0 / (delta**2) * math.log(1.0 / epsilon))
