"""Character-level string primitives: edit distance and q-gram sets.

The paper's definitions (Section 3):

- ``ed(s1, s2)`` is the minimum number of character edit operations (insert,
  delete, substitute) to transform ``s1`` into ``s2``, *normalized by the
  maximum of the two lengths*.  The worked example: ed("company",
  "corporation") = 7/11 ≈ 0.64.
- ``QG_q(s)`` is the set of all length-q substrings of ``s`` (Section 4.1);
  3-gram set of "boeing" = {boe, oei, ein, ing}.  For strings shorter than
  ``q`` we follow the paper's short-token convention and use the string
  itself as its only "gram".
"""

from __future__ import annotations

from functools import lru_cache


def edit_distance_raw(s1: str, s2: str) -> int:
    """Unnormalized Levenshtein distance between ``s1`` and ``s2``."""
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    # Keep the shorter string in the inner loop for the O(min) row.
    if len(s2) < len(s1):
        s1, s2 = s2, s1
    previous = list(range(len(s1) + 1))
    for row, c2 in enumerate(s2, start=1):
        current = [row]
        prev_diag = previous[0]
        for col, c1 in enumerate(s1, start=1):
            cost_sub = prev_diag + (c1 != c2)
            cost_del = previous[col] + 1
            cost_ins = current[col - 1] + 1
            best = cost_sub
            if cost_del < best:
                best = cost_del
            if cost_ins < best:
                best = cost_ins
            current.append(best)
            prev_diag = previous[col]
        previous = current
    return previous[-1]


def edit_distance(s1: str, s2: str) -> float:
    """Edit distance normalized by ``max(len(s1), len(s2))``, in [0, 1].

    Two empty strings are at distance 0.
    """
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 0.0
    return edit_distance_raw(s1, s2) / longest


@lru_cache(maxsize=200_000)
def _cached_edit_distance(s1: str, s2: str) -> float:
    return edit_distance(s1, s2)


def cached_edit_distance(s1: str, s2: str) -> float:
    """Memoized :func:`edit_distance` for the token-pair hot path.

    The fms transformation-cost DP compares each input token against each
    reference token of the candidate set; candidates share tokens heavily
    (think 'seattle', 'wa'), so memoization pays off.  The argument order is
    canonicalized because ``edit_distance`` is symmetric.
    """
    if s2 < s1:
        s1, s2 = s2, s1
    return _cached_edit_distance(s1, s2)


def qgram_set(s: str, q: int) -> frozenset[str]:
    """The set ``QG_q(s)`` of all length-q substrings of ``s``.

    Follows the paper's short-token convention: a string shorter than ``q``
    contributes itself as its only gram, so q-gram similarity degrades to
    exact match for very short tokens instead of being undefined.
    """
    if q < 1:
        raise ValueError("q must be positive")
    if len(s) <= q:
        return frozenset((s,)) if s else frozenset()
    return frozenset(s[i : i + q] for i in range(len(s) - q + 1))


def jaccard(set1: frozenset[str] | set, set2: frozenset[str] | set) -> float:
    """Jaccard coefficient ``|S1 ∩ S2| / |S1 ∪ S2]`` (0 for two empty sets)."""
    if not set1 and not set2:
        return 0.0
    intersection = len(set1 & set2)
    union = len(set1) + len(set2) - intersection
    return intersection / union


def tuple_edit_similarity(
    u: tuple[str | None, ...], v: tuple[str | None, ...]
) -> float:
    """Tuple-level edit-distance similarity — the paper's *ed* baseline.

    Used in the ed-vs-fms accuracy experiment (Section 6.2.1.1).  Each
    column pair is compared with normalized edit distance; the per-column
    distances are combined weighted by the column's share of the total
    character length, which matches the implicit length-proportional
    weighting of Equation (1) in Section 3.2 while still respecting column
    boundaries.  ``None`` (missing) values are treated as empty strings.
    Returns a similarity in [0, 1].
    """
    if len(u) != len(v):
        raise ValueError("tuples must have the same number of columns")
    total_length = 0
    weighted_distance = 0.0
    for a, b in zip(u, v):
        a = (a or "").lower()
        b = (b or "").lower()
        longest = max(len(a), len(b))
        if longest == 0:
            continue
        total_length += longest
        weighted_distance += edit_distance_raw(a, b)
    if total_length == 0:
        return 1.0
    return 1.0 - weighted_distance / total_length
