"""Character-level string primitives: edit distance and q-gram sets.

The paper's definitions (Section 3):

- ``ed(s1, s2)`` is the minimum number of character edit operations (insert,
  delete, substitute) to transform ``s1`` into ``s2``, *normalized by the
  maximum of the two lengths*.  The worked example: ed("company",
  "corporation") = 7/11 ≈ 0.64.
- ``QG_q(s)`` is the set of all length-q substrings of ``s`` (Section 4.1);
  3-gram set of "boeing" = {boe, oei, ein, ing}.  For strings shorter than
  ``q`` we follow the paper's short-token convention and use the string
  itself as its only "gram".

Distance computation is delegated to :mod:`repro.core.kernels`: the
bit-parallel Myers kernel for everything but the tiniest operands, and the
classic DP (with preallocated rows) as the small-operand fallback.  All
kernels are exact and parity-tested, so callers never see a different
number than the reference DP would produce.
"""

from __future__ import annotations

import math

from repro.core.kernels import MYERS_MIN_PATTERN, bounded_distance, classic_distance, myers_distance

#: Bound on the exact and lower-bound memo sizes.  When a memo fills up it
#: is simply cleared — the hot-path token vocabulary is far smaller than
#: this, so in practice the memos never cycle; the cap only guards
#: pathological adversarial workloads.  Cache policy never affects values.
ED_CACHE_CAPACITY = 200_000

# token-pair -> exact normalized distance (keys are canonically ordered).
# Exposed read-only as ``exact_distance_memo`` so the fms DP's inner loop
# can probe it with a single dict lookup; all writes happen here.
_ED_CACHE: dict[tuple[str, str], float] = {}
exact_distance_memo = _ED_CACHE
# token-pair -> best *raw* lower bound proven so far by a thresholded call
# that gave up before reaching the exact distance.
_ED_LB_CACHE: dict[tuple[str, str], int] = {}


def edit_distance_raw(s1: str, s2: str) -> int:
    """Unnormalized Levenshtein distance between ``s1`` and ``s2``.

    Routed through the kernel layer: operands whose shorter side reaches
    :data:`repro.core.kernels.MYERS_MIN_PATTERN` use the bit-parallel
    Myers kernel; smaller ones use the classic DP fallback, which
    preallocates its two row buffers and writes cells by index.
    """
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    if min(len(s1), len(s2)) < MYERS_MIN_PATTERN:
        return classic_distance(s1, s2)
    return myers_distance(s1, s2)


def edit_distance(s1: str, s2: str) -> float:
    """Edit distance normalized by ``max(len(s1), len(s2))``, in [0, 1].

    Two empty strings are at distance 0.
    """
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 0.0
    return edit_distance_raw(s1, s2) / longest


def clear_edit_distance_caches() -> None:
    """Drop the cross-query edit-distance memos (benchmark bracketing)."""
    _ED_CACHE.clear()
    _ED_LB_CACHE.clear()


def cached_edit_distance(s1: str, s2: str) -> float:
    """Memoized :func:`edit_distance` for the token-pair hot path.

    The fms transformation-cost DP compares each input token against each
    reference token of the candidate set; candidates share tokens heavily
    (think 'seattle', 'wa'), so memoization pays off.  The argument order is
    canonicalized because ``edit_distance`` is symmetric.
    """
    if s2 < s1:
        s1, s2 = s2, s1
    key = (s1, s2)
    value = _ED_CACHE.get(key)
    if value is not None:
        return value
    value = edit_distance(s1, s2)
    if len(_ED_CACHE) >= ED_CACHE_CAPACITY:
        _ED_CACHE.clear()
    _ED_CACHE[key] = value
    return value


def bounded_edit_distance(s1: str, s2: str, cutoff: float) -> tuple[float, bool]:
    """Normalized edit distance, computed only up to ``cutoff``.

    Returns ``(value, exact)``.  With ``exact=True``, ``value`` is the
    exact normalized distance (and has been memoized alongside
    :func:`cached_edit_distance`'s results).  With ``exact=False``,
    ``value`` is a certified *lower bound* on the normalized distance —
    the banded kernel proved the distance is at least that much and
    stopped.  Callers that only need "is the distance below ``cutoff``"
    (the budgeted fms DP) use the bound to discard the comparison without
    paying for the full computation; anything else should fall back to
    :func:`cached_edit_distance`.

    A ``cutoff`` at or above 1.0 always computes exactly (normalized
    distances never exceed 1.0, so no bound could prune anything).
    """
    if s2 < s1:
        s1, s2 = s2, s1
    key = (s1, s2)
    value = _ED_CACHE.get(key)
    if value is not None:
        return (value, True)
    longest = max(len(s1), len(s2))
    if longest == 0:
        return (0.0, True)
    if cutoff >= 1.0:
        return (cached_edit_distance(s1, s2), True)
    # Raw distances strictly below ceil(cutoff·longest) can matter; the
    # band limit is one less.  Float error in the product can only move
    # the limit by one either way, and the caller re-checks the returned
    # bound against its own threshold before acting on it, so a too-small
    # limit costs a fallback computation, never a wrong answer.
    limit = math.ceil(cutoff * longest) - 1
    known = _ED_LB_CACHE.get(key)
    if known is not None and known > limit:
        return (known / longest, False)
    raw = bounded_distance(s1, s2, limit)
    if raw <= limit:
        value = raw / longest
        if len(_ED_CACHE) >= ED_CACHE_CAPACITY:
            _ED_CACHE.clear()
        _ED_CACHE[key] = value
        return (value, True)
    if known is None or raw > known:
        if len(_ED_LB_CACHE) >= ED_CACHE_CAPACITY:
            _ED_LB_CACHE.clear()
        _ED_LB_CACHE[key] = raw
    return (raw / longest, False)


def qgram_set(s: str, q: int) -> frozenset[str]:
    """The set ``QG_q(s)`` of all length-q substrings of ``s``.

    Follows the paper's short-token convention: a string shorter than ``q``
    contributes itself as its only gram, so q-gram similarity degrades to
    exact match for very short tokens instead of being undefined.
    """
    if q < 1:
        raise ValueError("q must be positive")
    if len(s) <= q:
        return frozenset((s,)) if s else frozenset()
    return frozenset(s[i : i + q] for i in range(len(s) - q + 1))


def jaccard(set1: frozenset[str] | set, set2: frozenset[str] | set) -> float:
    """Jaccard coefficient ``|S1 ∩ S2| / |S1 ∪ S2|`` (0 for two empty sets)."""
    if not set1 and not set2:
        return 0.0
    intersection = len(set1 & set2)
    union = len(set1) + len(set2) - intersection
    return intersection / union


def tuple_edit_similarity(
    u: tuple[str | None, ...], v: tuple[str | None, ...]
) -> float:
    """Tuple-level edit-distance similarity — the paper's *ed* baseline.

    Used in the ed-vs-fms accuracy experiment (Section 6.2.1.1).  Each
    column pair is compared with normalized edit distance; the per-column
    distances are combined weighted by the column's share of the total
    character length, which matches the implicit length-proportional
    weighting of Equation (1) in Section 3.2 while still respecting column
    boundaries.  ``None`` (missing) values are treated as empty strings.
    Returns a similarity in [0, 1].
    """
    if len(u) != len(v):
        raise ValueError("tuples must have the same number of columns")
    total_length = 0
    weighted_distance = 0.0
    for a, b in zip(u, v):
        a = (a or "").lower()
        b = (b or "").lower()
        longest = max(len(a), len(b))
        if longest == 0:
            continue
        total_length += longest
        weighted_distance += edit_distance_raw(a, b)
    if total_length == 0:
        return 1.0
    return 1.0 - weighted_distance / total_length
