"""Batch/parallel fuzzy-match execution: Figure 1's ETL loop at scale.

:class:`BatchMatcher` pushes a whole batch of dirty input tuples through
the matcher the way the paper's evaluation does (§6: batches against a
1.7M-tuple reference), with three throughput levers stacked on top of the
single-query algorithms:

1. **Deduplication** — identical tuples in one batch are matched once;
   duplicates get replicated results (dirty feeds repeat rows).
2. **Cross-query caches** — per-worker :class:`~repro.core.cache.MatcherCaches`
   amortize reference tokenization, IDF weighing, and signature expansion
   across the whole batch (the PASS-JOIN/ApproxJoin preprocessing idea).
3. **A worker pool** — with ``jobs > 1`` the distinct queries fan out over
   a worker pool.  Each worker lazily builds its own
   :class:`~repro.core.matcher.FuzzyMatcher` (own ETI lookup counter, own
   reference-fetch counter, own caches) over the *shared read-only*
   stored relations, so per-query statistics never race.  The storage
   layer's buffer pool serializes page access internally.

The pool comes in two flavours, selected by ``executor``: ``"thread"``
(the GIL-bound historical behaviour — cheap workers, shared address
space, compatible with resilience policies and fault injectors) and
``"process"`` (true multicore: each worker process owns a private
interpreter and matcher; see :class:`WorkerSpec` for how workers obtain
the reference).  ``"auto"`` picks processes only when that is provably
safe *and* useful — ``jobs > 1``, no shared resilience policy, stock
reference/ETI classes, the ``fork`` start method available, and at least
two CPUs — and threads otherwise.

Results are always returned in input order and are bit-identical to the
sequential per-tuple :meth:`FuzzyMatcher.match` path: every query is
deterministic and independent, so execution order cannot change answers
— and the process pool ships back the same :class:`MatchResult` objects
(matches, per-query stats, trace) the thread pool produces in place.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.analysis.debuglock import make_lock
from repro.core.cache import MatcherCaches
from repro.core.config import MatchConfig
from repro.core.matcher import (
    FuzzyMatcher,
    MatchResult,
    failed_result,
    replicate_result,
)
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.resilience import ResiliencePolicy
from repro.core.weights import WeightFunction
from repro.obs.registry import (
    MetricsRegistry,
    RegistrySnapshot,
    merge_snapshots,
)
from repro.db.database import Database
from repro.db.errors import DatabaseError
from repro.eti.builder import build_eti
from repro.eti.index import EtiIndex

#: Valid ``executor`` arguments.
EXECUTORS = ("auto", "thread", "process")


@dataclass(frozen=True)
class WorkerSpec:
    """Picklable recipe that rebuilds a worker matcher in a fresh process.

    Used only when worker processes cannot inherit the parent engine via
    ``fork`` (spawn/forkserver start methods).  The worker rebuilds an
    in-memory database from the serialized ``rows`` and — when the parent
    had an ETI — re-runs the deterministic, seeded ETI build, yielding an
    index bit-identical to the parent's by construction.  (Reopening the
    parent's database *file* instead is deliberately not offered: the
    storage engine keeps its catalog in the write-ahead-log manifest, so
    attaching from another process while the parent holds the file could
    not be done read-only; the rebuild is write-free and exact.)

    The weight function and min-hash family are pickled through as-is so
    worker similarities use exactly the parent's weights and signatures.
    """

    columns: tuple[str, ...]
    table: str
    build_index: bool
    config: MatchConfig
    weights: WeightFunction
    hasher: MinHasher
    rows: tuple[tuple[int, tuple[str | None, ...]], ...]
    fail_fast: bool

    def build(self) -> FuzzyMatcher:
        """Materialize the matcher inside the worker process."""
        db = Database.in_memory()
        reference = ReferenceTable(db, self.table, self.columns)
        reference.load(self.rows)
        eti = (
            build_eti(db, reference, self.config)[0] if self.build_index else None
        )
        return FuzzyMatcher(
            reference, self.weights, self.config, eti, self.hasher,
            caches=MatcherCaches(),
        )


# Per-process worker state.  ``_FORK_PARENT`` is set in the parent just
# before the pool is created so that fork-started workers inherit the
# live engine and can build their matcher from it without any pickling;
# ``_PROCESS_MATCHER``/``_PROCESS_FAIL_FAST`` are populated inside each
# worker by :func:`_process_worker_init`.
_FORK_PARENT: "BatchMatcher | None" = None
_PROCESS_MATCHER: FuzzyMatcher | None = None
_PROCESS_FAIL_FAST: bool = True


def _process_worker_init(spec: WorkerSpec | None) -> None:
    """Build this worker process's private matcher (pool initializer).

    ``spec=None`` is the fork fast path: the parent engine was inherited
    through :data:`_FORK_PARENT` at fork time (the storage layer reads
    pages with ``os.pread``, which is position-independent, so inherited
    on-disk databases are safe to read from many processes at once).
    Otherwise the picklable ``spec`` rebuilds everything from scratch.
    """
    global _PROCESS_MATCHER, _PROCESS_FAIL_FAST
    if spec is None:
        parent = _FORK_PARENT
        if parent is None:
            raise RuntimeError("fork worker started without an inherited engine")
        _PROCESS_MATCHER = parent._build_matcher()
        _PROCESS_FAIL_FAST = parent.fail_fast
    else:
        _PROCESS_MATCHER = spec.build()
        _PROCESS_FAIL_FAST = spec.fail_fast


def _process_run_query(
    task: tuple[Sequence[str | None], int | None, float | None, str | None, bool],
) -> MatchResult:
    """Run one query in a worker process and marshal the result back.

    The returned :class:`MatchResult` (matches, stats, trace) pickles
    back to the parent whole, so process-mode reports and per-query
    statistics look exactly like thread-mode ones.  ``fail_fast`` is
    honoured worker-side the same way the thread path does it: the error
    becomes the item's ``result.error`` marker, or re-raises to abort
    the whole batch.
    """
    matcher = _PROCESS_MATCHER
    if matcher is None:
        raise RuntimeError("worker process used before initialization")
    values, k, min_similarity, strategy, trace = task
    try:
        return matcher.match(
            values, k=k, min_similarity=min_similarity, strategy=strategy,
            trace=trace,
        )
    except DatabaseError as exc:
        if _PROCESS_FAIL_FAST:
            raise
        return failed_result(exc, strategy or "")


@dataclass
class BatchReport:
    """Accounting for one :meth:`BatchMatcher.match_many` run.

    ``executor`` records which pool flavour actually ran the batch
    (``"thread"`` or ``"process"`` — the resolved value, never
    ``"auto"``).  In process mode ``cache_counters`` covers only the
    parent-side sequential matcher: worker caches live in other
    processes and are not aggregated (per-query :class:`MatchStats`
    still ride along on every result).

    ``degraded_reasons`` and ``failed_types`` break the two outcome
    counters down by *why*: reason string (``"deadline"``,
    ``"fallback:TransientIOError"``, …) → count and error class name →
    count.  They survive :meth:`to_json`, so a ``fail_fast=False`` batch
    run reports the same per-item degradation fields a server response
    carries — not just the totals.
    """

    total_queries: int = 0
    unique_queries: int = 0
    jobs: int = 1
    executor: str = "thread"
    elapsed_seconds: float = 0.0
    cache_counters: dict = field(default_factory=dict)
    degraded_queries: int = 0
    failed_queries: int = 0
    degraded_reasons: dict[str, int] = field(default_factory=dict)
    failed_types: dict[str, int] = field(default_factory=dict)

    @property
    def deduplicated_queries(self) -> int:
        return self.total_queries - self.unique_queries

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.total_queries / self.elapsed_seconds

    def as_dict(self) -> dict:
        """The report as plain data, derived properties included."""
        return {
            "total_queries": self.total_queries,
            "unique_queries": self.unique_queries,
            "deduplicated_queries": self.deduplicated_queries,
            "jobs": self.jobs,
            "executor": self.executor,
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": self.queries_per_second,
            "degraded_queries": self.degraded_queries,
            "failed_queries": self.failed_queries,
            "degraded_reasons": dict(sorted(self.degraded_reasons.items())),
            "failed_types": dict(sorted(self.failed_types.items())),
            "cache_counters": self.cache_counters,
        }

    def to_json(self, indent: int | None = None) -> str:
        """JSON form of :meth:`as_dict` (keys in a stable order)."""
        return json.dumps(self.as_dict(), indent=indent)


class BatchMatcher:
    """Parallel batch execution over one reference relation and ETI.

    Parameters mirror :class:`FuzzyMatcher`, plus:

    jobs:
        Worker count.  ``1`` runs sequentially (still deduplicating and
        caching); ``N > 1`` fans distinct queries out over ``N`` workers.
    executor:
        ``"thread"`` (default), ``"process"``, or ``"auto"``.  Threads
        share the address space — required whenever workers must share a
        resilience policy, fault injectors, or subclassed components —
        but serialize CPU-bound verification on the GIL.  Processes give
        true multicore speedup; workers are initialized fork/spawn-safely
        (inherit the engine on ``fork``, rebuild from a
        :class:`WorkerSpec` otherwise) and results marshal back intact.
        ``"auto"`` resolves to processes only when that is safe and the
        machine has more than one CPU; it never breaks shared-state
        setups, it only declines to parallelize them across processes.
    cache_factory:
        Zero-argument callable building the :class:`MatcherCaches` bundle
        for each worker (and the sequential matcher).  Defaults to
        :class:`MatcherCaches` with default capacities; pass
        ``MatcherCaches.disabled`` to benchmark the uncached path.
    resilience:
        Optional :class:`~repro.core.resilience.ResiliencePolicy`, shared
        by every worker — the circuit breaker sees the whole fleet's ETI
        failures, and each query runs under the policy's budget.
    fail_fast:
        With the default ``True``, a :class:`DatabaseError` on any tuple
        aborts the batch (the pre-resilience behaviour).  With ``False``
        the failure is isolated into that tuple's result
        (``result.error`` set) and the rest of the batch completes.
    """

    def __init__(
        self,
        reference: ReferenceTable,
        weights: WeightFunction,
        config: MatchConfig | None = None,
        eti: EtiIndex | None = None,
        hasher: MinHasher | None = None,
        jobs: int = 1,
        cache_factory: Callable[[], MatcherCaches] = MatcherCaches,
        resilience: ResiliencePolicy | None = None,
        fail_fast: bool = True,
        executor: str = "thread",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.resilience = resilience
        self.fail_fast = fail_fast
        self.reference = reference
        self.weights = weights
        self.config = config if config is not None else MatchConfig()
        self.eti = eti
        self.hasher = (
            hasher
            if hasher is not None
            else MinHasher(self.config.q, self.config.signature_size, self.config.seed)
        )
        self.jobs = jobs
        self.cache_factory = cache_factory
        self.executor = self._resolve_executor(executor)
        self._local = threading.local()
        self._workers: list[FuzzyMatcher] = []
        self._workers_lock = make_lock("BatchMatcher._workers_lock")
        self._sequential = self._build_matcher()
        self._pool: Executor | None = None
        self.last_report = BatchReport(jobs=jobs, executor=self.executor)

    @classmethod
    def from_matcher(
        cls,
        matcher: FuzzyMatcher,
        jobs: int = 1,
        cache_factory: Callable[[], MatcherCaches] = MatcherCaches,
        resilience: ResiliencePolicy | None = None,
        fail_fast: bool = True,
        executor: str = "thread",
    ) -> "BatchMatcher":
        """Wrap an existing matcher's components in a batch engine."""
        return cls(
            matcher.reference,
            matcher.weights,
            matcher.config,
            matcher.eti,
            matcher.hasher,
            jobs=jobs,
            cache_factory=cache_factory,
            resilience=resilience if resilience is not None else matcher.resilience,
            fail_fast=fail_fast,
            executor=executor,
        )

    # ------------------------------------------------------------------
    # Worker construction
    # ------------------------------------------------------------------

    def _resolve_executor(self, requested: str) -> str:
        """Turn the requested executor into a concrete ``thread``/``process``.

        Explicit ``"process"`` is validated, not second-guessed: a shared
        resilience policy cannot work across address spaces (each worker
        would get a private circuit breaker, silently voiding the
        contract), so that combination raises instead of degrading.

        ``"auto"`` is conservative: processes only with ``jobs > 1``, no
        resilience policy, *stock* reference/ETI classes (subclasses are
        how tests inject faults and how callers share in-process state —
        both break across a process boundary), a usable ``fork`` start
        method, and more than one CPU (on a single core the fork and IPC
        overhead cannot pay for itself).
        """
        if requested == "thread":
            return "thread"
        if requested == "process":
            if self.resilience is not None:
                raise ValueError(
                    "executor='process' cannot share a resilience policy "
                    "across worker processes; use executor='thread'"
                )
            return "process"
        if (
            self.jobs > 1
            and self.resilience is None
            and type(self.reference) is ReferenceTable
            and (self.eti is None or type(self.eti) is EtiIndex)
            and "fork" in multiprocessing.get_all_start_methods()
            and (os.cpu_count() or 1) > 1
        ):
            return "process"
        return "thread"

    def _build_matcher(self) -> FuzzyMatcher:
        """One matcher over the shared relations with private counters."""
        eti_view = EtiIndex(self.eti.relation) if self.eti is not None else None
        reference_view = self.reference.view()
        return FuzzyMatcher(
            reference_view,
            self.weights,
            self.config,
            eti_view,
            self.hasher,
            caches=self.cache_factory(),
            resilience=self.resilience,
        )

    def worker_matcher(self) -> FuzzyMatcher:
        """This thread's matcher over the shared relations (built lazily).

        One matcher per calling thread, cached for the engine's lifetime:
        private per-query counters and caches, shared read-only reference
        + ETI, shared resilience policy.  The batch path uses this for
        its pool workers, and the serving layer
        (:class:`repro.serve.server.MatchServer`) reuses it so server
        workers get exactly the batch engine's worker semantics — warm
        caches across requests, one breaker for the whole fleet — instead
        of a second pool implementation.
        """
        matcher = getattr(self._local, "matcher", None)
        if matcher is None:
            matcher = self._build_matcher()
            self._local.matcher = matcher
            with self._workers_lock:
                self._workers.append(matcher)
        return matcher

    def _worker_spec(self) -> WorkerSpec | None:
        """Picklable rebuild recipe for non-fork worker processes.

        Fork-started pools pass ``None`` (workers inherit the engine);
        spawn/forkserver pools get the full spec, which serializes the
        reference rows for a deterministic in-memory rebuild.
        """
        if "fork" in multiprocessing.get_all_start_methods():
            return None
        return WorkerSpec(
            columns=self.reference.column_names,
            table=self.reference.name,
            build_index=self.eti is not None,
            config=self.config,
            weights=self.weights,
            hasher=self.hasher,
            rows=tuple(self.reference.scan()),
            fail_fast=self.fail_fast,
        )

    def _ensure_pool(self) -> Executor:
        """The persistent worker pool (so worker caches stay warm across
        batches)."""
        global _FORK_PARENT
        if self._pool is None:
            if self.executor == "process":
                spec = self._worker_spec()
                if spec is None:
                    # Fork fast path: workers build from the engine they
                    # inherit at fork time.  Worker processes spawn lazily
                    # on first submit, so the global stays set for the
                    # pool's lifetime.
                    _FORK_PARENT = self
                    context = multiprocessing.get_context("fork")
                else:
                    context = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=context,
                    initializer=_process_worker_init,
                    initargs=(spec,),
                )
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-batch"
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        global _FORK_PARENT
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if _FORK_PARENT is self:
            _FORK_PARENT = None

    def __enter__(self) -> "BatchMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def warm_shared_state(
        self,
        sample: Sequence[str | None] | None = None,
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
    ) -> None:
        """Force lazily-built shared structures before threads fan out.

        The weight provider computes column averages on the first unseen
        token and the min-hash family memoizes signatures; doing one
        throwaway query here keeps those one-time mutations
        single-threaded.  Query errors (bad arity, missing ETI, storage
        faults) are left for the real execution to raise or isolate.
        """
        for column in range(self.reference.num_columns):
            self.weights.weight("", column)
        if sample is not None:
            try:
                self._sequential.match(
                    sample, k=k, min_similarity=min_similarity, strategy=strategy
                )
            except (ValueError, DatabaseError):
                pass

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def match_many(
        self,
        batch: Iterable[Sequence[str | None]],
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        trace: bool = False,
    ) -> list[MatchResult]:
        """Match a batch of input tuples; results in input order.

        Semantically identical to ``[matcher.match(v, ...) for v in
        batch]`` — same matches, same similarities — with dedup, caching,
        and (``jobs > 1``) parallel execution underneath.  A
        :class:`BatchReport` for the run is left in :attr:`last_report`.

        With ``fail_fast=False`` (constructor flag) one query's
        :class:`DatabaseError` becomes that item's ``result.error`` marker
        instead of killing the batch; the report counts failed and
        degraded items.
        """
        batch = list(batch)
        started = time.perf_counter()
        if self.jobs == 1 or len(batch) <= 1:
            results = self._sequential.match_many(
                batch,
                k=k,
                min_similarity=min_similarity,
                strategy=strategy,
                trace=trace,
                fail_fast=self.fail_fast,
            )
            unique = sum(1 for r in results if not r.stats.deduplicated)
            self._finish_report(len(batch), unique, started, results)
            return results

        groups: dict[tuple, list[int]] = {}
        keys: list[tuple | None] = []
        for index, values in enumerate(batch):
            try:
                key = tuple(values)
                groups.setdefault(key, []).append(index)
            except TypeError:
                key = None
            keys.append(key)
        unique_inputs = [
            batch[indices[0]] for indices in groups.values()
        ] + [batch[i] for i, key in enumerate(keys) if key is None]

        self.warm_shared_state(
            unique_inputs[0] if unique_inputs else None, k, min_similarity, strategy
        )

        if self.executor == "process":
            global _FORK_PARENT
            if "fork" in multiprocessing.get_all_start_methods():
                # Re-point the inherited-engine global at this engine so
                # any worker forked during this batch builds from it.
                _FORK_PARENT = self
            tasks = [
                (values, k, min_similarity, strategy, trace)
                for values in unique_inputs
            ]
            chunksize = max(1, len(tasks) // (self.jobs * 4))
            unique_results = list(
                self._ensure_pool().map(
                    _process_run_query, tasks, chunksize=chunksize
                )
            )
        else:

            def run_query(values: Sequence[str | None]) -> MatchResult:
                try:
                    return self.worker_matcher().match(
                        values,
                        k=k,
                        min_similarity=min_similarity,
                        strategy=strategy,
                        trace=trace,
                    )
                except DatabaseError as exc:
                    if self.fail_fast:
                        raise
                    return failed_result(exc, strategy or "")

            unique_results = list(self._ensure_pool().map(run_query, unique_inputs))

        results: list[MatchResult | None] = [None] * len(batch)
        for group_index, indices in enumerate(groups.values()):
            first, *rest = indices
            results[first] = unique_results[group_index]
            for index in rest:
                results[index] = replicate_result(unique_results[group_index])
        extras = iter(unique_results[len(groups):])
        for index, key in enumerate(keys):
            if key is None:
                results[index] = next(extras)
        self._finish_report(len(batch), len(unique_inputs), started, results)
        return results

    def _finish_report(
        self,
        total: int,
        unique: int,
        started: float,
        results: Sequence[MatchResult | None] = (),
    ) -> None:
        degraded_reasons: dict[str, int] = {}
        failed_types: dict[str, int] = {}
        for result in results:
            if result is None:
                continue
            if result.stats.degraded:
                reason = result.stats.degraded_reason or "unknown"
                degraded_reasons[reason] = degraded_reasons.get(reason, 0) + 1
            if result.failed:
                error_type = result.error_type or "DatabaseError"
                failed_types[error_type] = failed_types.get(error_type, 0) + 1
        self.last_report = BatchReport(
            total_queries=total,
            unique_queries=unique,
            jobs=self.jobs,
            executor=self.executor,
            elapsed_seconds=time.perf_counter() - started,
            cache_counters=self.cache_counters(),
            degraded_queries=sum(1 for r in results if r is not None and r.stats.degraded),
            failed_queries=sum(1 for r in results if r is not None and r.failed),
            degraded_reasons=degraded_reasons,
            failed_types=failed_types,
        )

    def cache_counters(self) -> dict:
        """Aggregated hit/miss counters over every matcher built so far."""
        total: dict[str, dict[str, int]] = {}
        with self._workers_lock:
            matchers = [self._sequential, *self._workers]
        for matcher in matchers:
            for name, counters in matcher.caches.counters().items():
                bucket = total.setdefault(
                    name, {"hits": 0, "misses": 0, "evictions": 0}
                )
                bucket["hits"] += counters["hits"]
                bucket["misses"] += counters["misses"]
                bucket["evictions"] += counters["evictions"]
        for bucket in total.values():
            lookups = bucket["hits"] + bucket["misses"]
            bucket["hit_rate"] = bucket["hits"] / lookups if lookups else 0.0
        return total

    def registries(self) -> list[MetricsRegistry]:
        """Every matcher's metrics registry built so far (dedup'd).

        One registry per cache bundle; matchers sharing a bundle (the
        ``cache_factory=lambda: shared`` pattern) contribute it once.
        """
        with self._workers_lock:
            matchers = [self._sequential, *self._workers]
        registries: list[MetricsRegistry] = []
        for matcher in matchers:
            registry = matcher.caches.registry
            if not any(registry is seen for seen in registries):
                registries.append(registry)
        return registries

    def metrics_snapshot(self) -> RegistrySnapshot:
        """Fleet totals: every per-matcher registry snapshot, merged."""
        return merge_snapshots(
            registry.snapshot() for registry in self.registries()
        )

    def set_metrics_enabled(self, enabled: bool) -> None:
        """Toggle metric recording on every matcher registry at runtime.

        Matchers built *after* the call get fresh (enabled) registries;
        the serve layer re-applies the flag per worker matcher, which is
        the only place matchers are created post-start.
        """
        for registry in self.registries():
            registry.set_enabled(enabled)
