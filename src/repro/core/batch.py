"""Batch/parallel fuzzy-match execution: Figure 1's ETL loop at scale.

:class:`BatchMatcher` pushes a whole batch of dirty input tuples through
the matcher the way the paper's evaluation does (§6: batches against a
1.7M-tuple reference), with three throughput levers stacked on top of the
single-query algorithms:

1. **Deduplication** — identical tuples in one batch are matched once;
   duplicates get replicated results (dirty feeds repeat rows).
2. **Cross-query caches** — per-worker :class:`~repro.core.cache.MatcherCaches`
   amortize reference tokenization, IDF weighing, and signature expansion
   across the whole batch (the PASS-JOIN/ApproxJoin preprocessing idea).
3. **A worker pool** — with ``jobs > 1`` the distinct queries fan out over
   a thread pool.  Each worker lazily builds its own
   :class:`~repro.core.matcher.FuzzyMatcher` (own ETI lookup counter, own
   reference-fetch counter, own caches) over the *shared read-only*
   stored relations, so per-query statistics never race.  The storage
   layer's buffer pool serializes page access internally.

Results are always returned in input order and are bit-identical to the
sequential per-tuple :meth:`FuzzyMatcher.match` path: every query is
deterministic and independent, so execution order cannot change answers.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.analysis.debuglock import make_lock
from repro.core.cache import MatcherCaches
from repro.core.config import MatchConfig
from repro.core.matcher import (
    FuzzyMatcher,
    MatchResult,
    failed_result,
    replicate_result,
)
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.resilience import ResiliencePolicy
from repro.core.weights import WeightFunction
from repro.db.errors import DatabaseError
from repro.eti.index import EtiIndex


@dataclass
class BatchReport:
    """Accounting for one :meth:`BatchMatcher.match_many` run."""

    total_queries: int = 0
    unique_queries: int = 0
    jobs: int = 1
    elapsed_seconds: float = 0.0
    cache_counters: dict = field(default_factory=dict)
    degraded_queries: int = 0
    failed_queries: int = 0

    @property
    def deduplicated_queries(self) -> int:
        return self.total_queries - self.unique_queries

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.total_queries / self.elapsed_seconds


class BatchMatcher:
    """Parallel batch execution over one reference relation and ETI.

    Parameters mirror :class:`FuzzyMatcher`, plus:

    jobs:
        Worker count.  ``1`` runs sequentially (still deduplicating and
        caching); ``N > 1`` fans distinct queries out over ``N`` threads.
    cache_factory:
        Zero-argument callable building the :class:`MatcherCaches` bundle
        for each worker (and the sequential matcher).  Defaults to
        :class:`MatcherCaches` with default capacities; pass
        ``MatcherCaches.disabled`` to benchmark the uncached path.
    resilience:
        Optional :class:`~repro.core.resilience.ResiliencePolicy`, shared
        by every worker — the circuit breaker sees the whole fleet's ETI
        failures, and each query runs under the policy's budget.
    fail_fast:
        With the default ``True``, a :class:`DatabaseError` on any tuple
        aborts the batch (the pre-resilience behaviour).  With ``False``
        the failure is isolated into that tuple's result
        (``result.error`` set) and the rest of the batch completes.
    """

    def __init__(
        self,
        reference: ReferenceTable,
        weights: WeightFunction,
        config: MatchConfig | None = None,
        eti: EtiIndex | None = None,
        hasher: MinHasher | None = None,
        jobs: int = 1,
        cache_factory: Callable[[], MatcherCaches] = MatcherCaches,
        resilience: ResiliencePolicy | None = None,
        fail_fast: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.resilience = resilience
        self.fail_fast = fail_fast
        self.reference = reference
        self.weights = weights
        self.config = config if config is not None else MatchConfig()
        self.eti = eti
        self.hasher = (
            hasher
            if hasher is not None
            else MinHasher(self.config.q, self.config.signature_size, self.config.seed)
        )
        self.jobs = jobs
        self.cache_factory = cache_factory
        self._local = threading.local()
        self._workers: list[FuzzyMatcher] = []
        self._workers_lock = make_lock("BatchMatcher._workers_lock")
        self._sequential = self._build_matcher()
        self._pool: ThreadPoolExecutor | None = None
        self.last_report = BatchReport(jobs=jobs)

    @classmethod
    def from_matcher(
        cls,
        matcher: FuzzyMatcher,
        jobs: int = 1,
        cache_factory: Callable[[], MatcherCaches] = MatcherCaches,
        resilience: ResiliencePolicy | None = None,
        fail_fast: bool = True,
    ) -> "BatchMatcher":
        """Wrap an existing matcher's components in a batch engine."""
        return cls(
            matcher.reference,
            matcher.weights,
            matcher.config,
            matcher.eti,
            matcher.hasher,
            jobs=jobs,
            cache_factory=cache_factory,
            resilience=resilience if resilience is not None else matcher.resilience,
            fail_fast=fail_fast,
        )

    # ------------------------------------------------------------------
    # Worker construction
    # ------------------------------------------------------------------

    def _build_matcher(self) -> FuzzyMatcher:
        """One matcher over the shared relations with private counters."""
        eti_view = EtiIndex(self.eti.relation) if self.eti is not None else None
        reference_view = self.reference.view()
        return FuzzyMatcher(
            reference_view,
            self.weights,
            self.config,
            eti_view,
            self.hasher,
            caches=self.cache_factory(),
            resilience=self.resilience,
        )

    def _worker_matcher(self) -> FuzzyMatcher:
        matcher = getattr(self._local, "matcher", None)
        if matcher is None:
            matcher = self._build_matcher()
            self._local.matcher = matcher
            with self._workers_lock:
                self._workers.append(matcher)
        return matcher

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The persistent worker pool (so worker caches stay warm across
        batches)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-batch"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _warm_shared_state(
        self,
        sample: Sequence[str | None] | None,
        k: int | None,
        min_similarity: float | None,
        strategy: str | None,
    ) -> None:
        """Force lazily-built shared structures before threads fan out.

        The weight provider computes column averages on the first unseen
        token and the min-hash family memoizes signatures; doing one
        throwaway query here keeps those one-time mutations
        single-threaded.  Query errors (bad arity, missing ETI, storage
        faults) are left for the real execution to raise or isolate.
        """
        for column in range(self.reference.num_columns):
            self.weights.weight("", column)
        if sample is not None:
            try:
                self._sequential.match(
                    sample, k=k, min_similarity=min_similarity, strategy=strategy
                )
            except (ValueError, DatabaseError):
                pass

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def match_many(
        self,
        batch: Iterable[Sequence[str | None]],
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        trace: bool = False,
    ) -> list[MatchResult]:
        """Match a batch of input tuples; results in input order.

        Semantically identical to ``[matcher.match(v, ...) for v in
        batch]`` — same matches, same similarities — with dedup, caching,
        and (``jobs > 1``) parallel execution underneath.  A
        :class:`BatchReport` for the run is left in :attr:`last_report`.

        With ``fail_fast=False`` (constructor flag) one query's
        :class:`DatabaseError` becomes that item's ``result.error`` marker
        instead of killing the batch; the report counts failed and
        degraded items.
        """
        batch = list(batch)
        started = time.perf_counter()
        if self.jobs == 1 or len(batch) <= 1:
            results = self._sequential.match_many(
                batch,
                k=k,
                min_similarity=min_similarity,
                strategy=strategy,
                trace=trace,
                fail_fast=self.fail_fast,
            )
            unique = sum(1 for r in results if not r.stats.deduplicated)
            self._finish_report(len(batch), unique, started, results)
            return results

        groups: dict[tuple, list[int]] = {}
        keys: list[tuple | None] = []
        for index, values in enumerate(batch):
            try:
                key = tuple(values)
                groups.setdefault(key, []).append(index)
            except TypeError:
                key = None
            keys.append(key)
        unique_inputs = [
            batch[indices[0]] for indices in groups.values()
        ] + [batch[i] for i, key in enumerate(keys) if key is None]

        self._warm_shared_state(
            unique_inputs[0] if unique_inputs else None, k, min_similarity, strategy
        )

        def run_query(values: Sequence[str | None]) -> MatchResult:
            try:
                return self._worker_matcher().match(
                    values,
                    k=k,
                    min_similarity=min_similarity,
                    strategy=strategy,
                    trace=trace,
                )
            except DatabaseError as exc:
                if self.fail_fast:
                    raise
                return failed_result(exc, strategy or "")

        unique_results = list(self._ensure_pool().map(run_query, unique_inputs))

        results: list[MatchResult | None] = [None] * len(batch)
        for group_index, indices in enumerate(groups.values()):
            first, *rest = indices
            results[first] = unique_results[group_index]
            for index in rest:
                results[index] = replicate_result(unique_results[group_index])
        extras = iter(unique_results[len(groups):])
        for index, key in enumerate(keys):
            if key is None:
                results[index] = next(extras)
        self._finish_report(len(batch), len(unique_inputs), started, results)
        return results

    def _finish_report(
        self,
        total: int,
        unique: int,
        started: float,
        results: Sequence[MatchResult | None] = (),
    ) -> None:
        self.last_report = BatchReport(
            total_queries=total,
            unique_queries=unique,
            jobs=self.jobs,
            elapsed_seconds=time.perf_counter() - started,
            cache_counters=self.cache_counters(),
            degraded_queries=sum(1 for r in results if r is not None and r.stats.degraded),
            failed_queries=sum(1 for r in results if r is not None and r.failed),
        )

    def cache_counters(self) -> dict:
        """Aggregated hit/miss counters over every matcher built so far."""
        total: dict[str, dict[str, int]] = {}
        with self._workers_lock:
            matchers = [self._sequential, *self._workers]
        for matcher in matchers:
            for name, counters in matcher.caches.counters().items():
                bucket = total.setdefault(
                    name, {"hits": 0, "misses": 0, "evictions": 0}
                )
                bucket["hits"] += counters["hits"]
                bucket["misses"] += counters["misses"]
                bucket["evictions"] += counters["evictions"]
        for bucket in total.values():
            lookups = bucket["hits"] + bucket["misses"]
            bucket["hit_rate"] = bucket["hits"] / lookups if lookups else 0.0
        return total
