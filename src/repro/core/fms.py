"""The fuzzy match similarity function *fms* (§3.1) .

``fms(u, v) = 1 − min(tc(u, v) / w(u), 1)`` where ``tc`` is the minimum cost
of transforming input tuple ``u`` into reference tuple ``v`` column by
column, using three token-level operations:

- *replacement* of input token t1 by reference token t2:
  ``ed(t1, t2) · w(t1)`` (cross-column replacements are forbidden — the DP
  only ever compares same-column sequences);
- *insertion* of reference token t: ``c_ins · w(t)``;
- *deletion* of input token t: ``w(t)``.

The per-column minimum-cost sequence is found with the classic edit-distance
dynamic program lifted from characters to weighted tokens.  With
``allow_transpositions`` (§5.3) the DP also admits the Damerau-style swap of
two adjacent tokens at cost ``g(w(t1), w(t2))``; since a transposition only
reorders tokens, fms with transpositions is still upper-bounded by fmsapx
and every index-based guarantee carries over.

fms is deliberately asymmetric: ``u`` is always the dirty input, ``v`` the
clean reference.

Two verification fast paths live here (see ``docs/INTERNALS.md``):

- *Per-cell edit-distance cutoffs*: before comparing two tokens, the DP
  already knows the cheapest way to reach the cell without a replacement;
  the replacement only matters if ``ed`` lands below a cutoff derived from
  that alternative, so the thresholded banded kernel
  (:func:`repro.core.strings.bounded_edit_distance`) is asked only for a
  verdict, not the exact distance.  Cell values are unchanged — the
  shortcut is taken only when the kernel's certified lower bound proves
  the replacement is dominated.
- *Cost budgets*: the matcher's top-K loop knows that a candidate whose
  transformation cost exceeds ``(1 − kth_best) · w(u)`` can never enter
  the result, and passes that as a budget.  The DP abandons the candidate
  as soon as the running row minimum plus an admissible lower bound on the
  remaining tokens' cost exceeds the budget, returning a certified lower
  bound instead of the exact cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MatchConfig, TranspositionCost
from repro.core.strings import (
    bounded_edit_distance,
    cached_edit_distance,
    exact_distance_memo,
)
from repro.core.tokens import TupleTokens
from repro.core.weights import WeightFunction
from repro.obs.registry import MetricsRegistry, default_registry


class FmsCounters:
    """Cumulative work counters for the transformation-cost DP.

    A view over relaxed counters in the process-global metrics registry
    (``repro_fms_*_total`` series).  ``dp_cells`` counts (input token ×
    reference token) cells filled, ``cutoff_prunes`` counts cells where
    the banded kernel's lower bound proved the replacement dominated
    (no exact edit distance computed), and ``budget_abandons`` counts
    DP runs that stopped early because the running cost cleared the
    caller's budget.  Lockless increments: concurrent queries may
    under-count, which only distorts reporting.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = default_registry()
        self._dp_cells = registry.counter(
            "repro_fms_dp_cells_total", relaxed=True
        )
        self._cutoff_prunes = registry.counter(
            "repro_fms_cutoff_prunes_total", relaxed=True
        )
        self._budget_abandons = registry.counter(
            "repro_fms_budget_abandons_total", relaxed=True
        )

    @property
    def dp_cells(self) -> int:
        """DP cells filled across every run."""
        return self._dp_cells.value()

    @property
    def cutoff_prunes(self) -> int:
        """Cells settled by the banded kernel's lower bound alone."""
        return self._cutoff_prunes.value()

    @property
    def budget_abandons(self) -> int:
        """DP runs abandoned after clearing the caller's budget."""
        return self._budget_abandons.value()

    def add_dp_cells(self, cells: int) -> None:
        """Count ``cells`` DP cells filled."""
        self._dp_cells.inc(cells)

    def add_cutoff_prune(self) -> None:
        """Count one lower-bound prune."""
        self._cutoff_prunes.inc()

    def add_budget_abandon(self) -> None:
        """Count one budget-driven early stop."""
        self._budget_abandons.inc()

    def snapshot(self) -> tuple[int, int, int]:
        """Counter values at this instant, for before/after deltas."""
        return (self.dp_cells, self.cutoff_prunes, self.budget_abandons)

    def reset(self) -> None:
        """Zero every counter (benchmark bracketing)."""
        self._dp_cells.reset()
        self._cutoff_prunes.reset()
        self._budget_abandons.reset()


#: Module-wide counters shared by every transformation-cost DP run.
COUNTERS = FmsCounters()


def _transposition_cost(w1: float, w2: float, config: MatchConfig) -> float:
    kind = config.transposition_cost
    if kind is TranspositionCost.AVERAGE:
        return (w1 + w2) / 2.0
    if kind is TranspositionCost.MINIMUM:
        return min(w1, w2)
    if kind is TranspositionCost.MAXIMUM:
        return max(w1, w2)
    return config.transposition_constant


def _replace_cost(
    prev_diag: float, alternative: float, token_u: str, token_v: str, weight_u: float
) -> float:
    """Cell value ``min(alternative, prev_diag + ed(t_u, t_v) · w_u)``.

    The edit distance only matters when it is small enough for the
    replacement to beat ``alternative`` (the best of delete/insert), so
    the thresholded kernel is consulted first; its certified lower bound
    discharges most comparisons without computing an exact distance.  The
    returned cell value is exactly what the unbounded DP would produce.
    """
    if weight_u <= 0.0:
        return alternative if alternative < prev_diag else prev_diag
    gap = alternative - prev_diag
    if gap <= 0.0:
        # Even a free replacement cannot beat the alternative.
        return alternative
    # Fast path: a previously memoized exact distance settles the cell
    # with one dict probe (the common case — candidates share tokens).
    key = (token_u, token_v) if token_u <= token_v else (token_v, token_u)
    memoized = exact_distance_memo.get(key)
    if memoized is not None:
        replace = prev_diag + memoized * weight_u
        return replace if replace < alternative else alternative
    distance, exact = bounded_edit_distance(token_u, token_v, gap / weight_u)
    replace = prev_diag + distance * weight_u
    if exact:
        return replace if replace < alternative else alternative
    if replace >= alternative:
        # The lower bound alone proves the replacement is dominated.
        COUNTERS.add_cutoff_prune()
        return alternative
    # Float-boundary fallback: the bound was not decisive; pay for the
    # exact distance (memoized) to keep the cell bit-identical.
    replace = prev_diag + cached_edit_distance(token_u, token_v) * weight_u
    return replace if replace < alternative else alternative


def transformation_cost(
    input_tokens: Sequence[str],
    reference_tokens: Sequence[str],
    column: int,
    weights: WeightFunction,
    config: MatchConfig,
    column_weight: float = 1.0,
    budget: float | None = None,
) -> float:
    """``tc(u[i], v[i])``: minimum cost to transform one column's tokens.

    ``input_tokens`` / ``reference_tokens`` are the *ordered* token
    sequences of column ``column``.  ``column_weight`` scales every token
    weight (§5.2); 1.0 is plain fms.

    ``budget`` (``None`` = unlimited) lets the DP abandon early: when the
    minimum cost of any completion provably exceeds the budget, a
    certified lower bound greater than the budget is returned instead of
    the exact cost.  Results at or under the budget are always exact.
    """
    m = len(input_tokens)
    n = len(reference_tokens)
    input_weights = [
        weights.weight(t, column) * column_weight for t in input_tokens
    ]
    reference_weights = [
        weights.weight(t, column) * column_weight for t in reference_tokens
    ]
    c_ins = config.token_insertion_factor
    transpositions = config.allow_transpositions

    # DP over (i input tokens consumed, j reference tokens produced).
    previous = [0.0] * (n + 1)
    for j in range(1, n + 1):
        previous[j] = previous[j - 1] + c_ins * reference_weights[j - 1]
    older: list[float] | None = None  # row i-2, for transpositions
    for i in range(1, m + 1):
        current = [previous[0] + input_weights[i - 1]]
        token_u = input_tokens[i - 1]
        weight_u = input_weights[i - 1]
        row_min = current[0]
        for j in range(1, n + 1):
            token_v = reference_tokens[j - 1]
            delete = previous[j] + weight_u
            insert = current[j - 1] + c_ins * reference_weights[j - 1]
            alternative = delete if delete < insert else insert
            best = _replace_cost(
                previous[j - 1], alternative, token_u, token_v, weight_u
            )
            if transpositions and older is not None and i >= 2 and j >= 2:
                # Transpose (u[i-2], u[i-1]) then replace each against its
                # crossed counterpart — a transposition followed by token
                # replacements is a legal transformation sequence, so the
                # DP may take it whenever it is the cheapest option (exact
                # swaps degenerate to the bare transposition cost).
                swap = (
                    older[j - 2]
                    + _transposition_cost(input_weights[i - 2], weight_u, config)
                    + cached_edit_distance(token_u, reference_tokens[j - 2]) * weight_u
                    + cached_edit_distance(input_tokens[i - 2], token_v)
                    * input_weights[i - 2]
                )
                if swap < best:
                    best = swap
            current.append(best)
            if best < row_min:
                row_min = best
        COUNTERS.add_dp_cells(n)
        if budget is not None and i < m:
            # Admissible completion bound: input tokens i..m-1 remain.  If
            # more remain than there are reference tokens, the surplus must
            # be deleted no matter how the rest pair up, costing at least
            # the smallest remaining weights.  (Transpositions only reorder
            # tokens, so the surplus-deletion argument still holds.)
            lower = row_min
            surplus = (m - i) - n
            if surplus > 0:
                lower += sum(sorted(input_weights[i:])[:surplus])
            if lower > budget:
                COUNTERS.add_budget_abandon()
                return lower
        older = previous
        previous = current
    return previous[n]


def tuple_transformation_cost(
    u: TupleTokens,
    v: TupleTokens,
    weights: WeightFunction,
    config: MatchConfig,
    budget: float | None = None,
) -> float:
    """``tc(u, v)``: sum of per-column transformation costs.

    With a ``budget``, the per-column DPs run under the remaining budget
    and the whole computation abandons (returning a certified lower bound
    greater than the budget) as soon as the accumulated cost alone proves
    the tuple cannot come in under it.  Results at or under the budget are
    always exact.
    """
    if u.num_columns != v.num_columns:
        raise ValueError("tuples must have the same number of columns")
    column_weights = config.normalized_column_weights(u.num_columns)
    total = 0.0
    for col in range(u.num_columns):
        u_tokens = u.sequences[col]
        v_tokens = v.sequences[col]
        if u_tokens == v_tokens:
            # Identical token sequences transform for free; skipping the
            # DP here is the hot-path win (candidates usually agree on
            # most columns).
            continue
        remaining = None if budget is None else budget - total
        total += transformation_cost(
            u_tokens,
            v_tokens,
            col,
            weights,
            config,
            column_weight=column_weights[col],
            budget=remaining,
        )
        if budget is not None and total > budget:
            # Either this column's DP abandoned (returning a lower bound
            # above its remaining budget) or the exact running total
            # crossed the line; both certify total cost > budget.
            return total
    return total


def input_tuple_weight(
    u: TupleTokens, weights: WeightFunction, config: MatchConfig
) -> float:
    """``w(u)``: total (column-weighted) weight of the token set tok(u)."""
    column_weights = config.normalized_column_weights(u.num_columns)
    return sum(
        weights.weight(token, col) * column_weights[col]
        for token, col in u.all_tokens()
    )


def fms(
    u: TupleTokens | Sequence[str | None],
    v: TupleTokens | Sequence[str | None],
    weights: WeightFunction,
    config: MatchConfig | None = None,
    u_weight: float | None = None,
) -> float:
    """Fuzzy match similarity between input ``u`` and reference ``v``.

    Accepts raw attribute-value sequences or pre-tokenized
    :class:`TupleTokens`.  Returns a similarity in [0, 1].  An input with
    no tokens at all matches an empty reference perfectly and anything
    else not at all (``w(u) = 0`` leaves nothing to normalize by).

    ``u_weight`` is an optional precomputed ``w(u)``
    (:func:`input_tuple_weight` of ``u`` under the same weights and
    config): a query verifying many candidates against one input tuple
    computes it once instead of per candidate.
    """
    similarity, _ = fms_budgeted(u, v, weights, config, u_weight=u_weight)
    return similarity


def fms_budgeted(
    u: TupleTokens | Sequence[str | None],
    v: TupleTokens | Sequence[str | None],
    weights: WeightFunction,
    config: MatchConfig | None = None,
    u_weight: float | None = None,
    cost_budget: float | None = None,
) -> tuple[float, bool]:
    """:func:`fms` with an optional transformation-cost budget.

    Returns ``(similarity, pruned)``.  With ``pruned=False`` the
    similarity is exact.  With ``pruned=True`` (only possible when a
    ``cost_budget`` is given) the DP proved the transformation cost
    exceeds the budget and stopped; the returned value is an *upper
    bound* on the true similarity and is strictly below
    ``1 − cost_budget / w(u)`` — enough for a top-K loop to discard the
    candidate, and nothing else.
    """
    if config is None:
        config = MatchConfig()
    if not isinstance(u, TupleTokens):
        u = TupleTokens.from_values(u)
    if not isinstance(v, TupleTokens):
        v = TupleTokens.from_values(v)
    total_weight = (
        u_weight if u_weight is not None else input_tuple_weight(u, weights, config)
    )
    if total_weight <= 0.0:
        return (1.0 if v.token_count() == 0 else 0.0, False)
    if cost_budget is not None and cost_budget >= total_weight:
        # fms floors at 0 once cost reaches w(u): nothing left to prune.
        cost_budget = None
    cost = tuple_transformation_cost(u, v, weights, config, budget=cost_budget)
    pruned = cost_budget is not None and cost > cost_budget
    return (1.0 - min(cost / total_weight, 1.0), pruned)
