"""The fuzzy match similarity function *fms* (§3.1) .

``fms(u, v) = 1 − min(tc(u, v) / w(u), 1)`` where ``tc`` is the minimum cost
of transforming input tuple ``u`` into reference tuple ``v`` column by
column, using three token-level operations:

- *replacement* of input token t1 by reference token t2:
  ``ed(t1, t2) · w(t1)`` (cross-column replacements are forbidden — the DP
  only ever compares same-column sequences);
- *insertion* of reference token t: ``c_ins · w(t)``;
- *deletion* of input token t: ``w(t)``.

The per-column minimum-cost sequence is found with the classic edit-distance
dynamic program lifted from characters to weighted tokens.  With
``allow_transpositions`` (§5.3) the DP also admits the Damerau-style swap of
two adjacent tokens at cost ``g(w(t1), w(t2))``; since a transposition only
reorders tokens, fms with transpositions is still upper-bounded by fmsapx
and every index-based guarantee carries over.

fms is deliberately asymmetric: ``u`` is always the dirty input, ``v`` the
clean reference.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MatchConfig, TranspositionCost
from repro.core.strings import cached_edit_distance
from repro.core.tokens import TupleTokens
from repro.core.weights import WeightFunction


def _transposition_cost(w1: float, w2: float, config: MatchConfig) -> float:
    kind = config.transposition_cost
    if kind is TranspositionCost.AVERAGE:
        return (w1 + w2) / 2.0
    if kind is TranspositionCost.MINIMUM:
        return min(w1, w2)
    if kind is TranspositionCost.MAXIMUM:
        return max(w1, w2)
    return config.transposition_constant


def transformation_cost(
    input_tokens: Sequence[str],
    reference_tokens: Sequence[str],
    column: int,
    weights: WeightFunction,
    config: MatchConfig,
    column_weight: float = 1.0,
) -> float:
    """``tc(u[i], v[i])``: minimum cost to transform one column's tokens.

    ``input_tokens`` / ``reference_tokens`` are the *ordered* token
    sequences of column ``column``.  ``column_weight`` scales every token
    weight (§5.2); 1.0 is plain fms.
    """
    m = len(input_tokens)
    n = len(reference_tokens)
    input_weights = [
        weights.weight(t, column) * column_weight for t in input_tokens
    ]
    reference_weights = [
        weights.weight(t, column) * column_weight for t in reference_tokens
    ]
    c_ins = config.token_insertion_factor

    # DP over (i input tokens consumed, j reference tokens produced).
    previous = [0.0] * (n + 1)
    for j in range(1, n + 1):
        previous[j] = previous[j - 1] + c_ins * reference_weights[j - 1]
    older: list[float] | None = None  # row i-2, for transpositions
    for i in range(1, m + 1):
        current = [previous[0] + input_weights[i - 1]]
        token_u = input_tokens[i - 1]
        weight_u = input_weights[i - 1]
        for j in range(1, n + 1):
            token_v = reference_tokens[j - 1]
            best = previous[j - 1] + cached_edit_distance(token_u, token_v) * weight_u
            delete = previous[j] + weight_u
            if delete < best:
                best = delete
            insert = current[j - 1] + c_ins * reference_weights[j - 1]
            if insert < best:
                best = insert
            if config.allow_transpositions and older is not None and i >= 2 and j >= 2:
                # Transpose (u[i-2], u[i-1]) then replace each against its
                # crossed counterpart — a transposition followed by token
                # replacements is a legal transformation sequence, so the
                # DP may take it whenever it is the cheapest option (exact
                # swaps degenerate to the bare transposition cost).
                swap = (
                    older[j - 2]
                    + _transposition_cost(input_weights[i - 2], weight_u, config)
                    + cached_edit_distance(token_u, reference_tokens[j - 2]) * weight_u
                    + cached_edit_distance(input_tokens[i - 2], token_v)
                    * input_weights[i - 2]
                )
                if swap < best:
                    best = swap
            current.append(best)
        older = previous
        previous = current
    return previous[n]


def tuple_transformation_cost(
    u: TupleTokens,
    v: TupleTokens,
    weights: WeightFunction,
    config: MatchConfig,
) -> float:
    """``tc(u, v)``: sum of per-column transformation costs."""
    if u.num_columns != v.num_columns:
        raise ValueError("tuples must have the same number of columns")
    column_weights = config.normalized_column_weights(u.num_columns)
    total = 0.0
    for col in range(u.num_columns):
        u_tokens = u.sequences[col]
        v_tokens = v.sequences[col]
        if u_tokens == v_tokens:
            # Identical token sequences transform for free; skipping the
            # DP here is the hot-path win (candidates usually agree on
            # most columns).
            continue
        total += transformation_cost(
            u_tokens,
            v_tokens,
            col,
            weights,
            config,
            column_weight=column_weights[col],
        )
    return total


def input_tuple_weight(
    u: TupleTokens, weights: WeightFunction, config: MatchConfig
) -> float:
    """``w(u)``: total (column-weighted) weight of the token set tok(u)."""
    column_weights = config.normalized_column_weights(u.num_columns)
    return sum(
        weights.weight(token, col) * column_weights[col]
        for token, col in u.all_tokens()
    )


def fms(
    u: TupleTokens | Sequence[str | None],
    v: TupleTokens | Sequence[str | None],
    weights: WeightFunction,
    config: MatchConfig | None = None,
    u_weight: float | None = None,
) -> float:
    """Fuzzy match similarity between input ``u`` and reference ``v``.

    Accepts raw attribute-value sequences or pre-tokenized
    :class:`TupleTokens`.  Returns a similarity in [0, 1].  An input with
    no tokens at all matches an empty reference perfectly and anything
    else not at all (``w(u) = 0`` leaves nothing to normalize by).

    ``u_weight`` is an optional precomputed ``w(u)``
    (:func:`input_tuple_weight` of ``u`` under the same weights and
    config): a query verifying many candidates against one input tuple
    computes it once instead of per candidate.
    """
    if config is None:
        config = MatchConfig()
    if not isinstance(u, TupleTokens):
        u = TupleTokens.from_values(u)
    if not isinstance(v, TupleTokens):
        v = TupleTokens.from_values(v)
    total_weight = (
        u_weight if u_weight is not None else input_tuple_weight(u, weights, config)
    )
    if total_weight <= 0.0:
        return 1.0 if v.token_count() == 0 else 0.0
    cost = tuple_transformation_cost(u, v, weights, config)
    return 1.0 - min(cost / total_weight, 1.0)
