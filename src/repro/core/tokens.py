"""Tokenization with per-column token identity.

Section 3 of the paper: ``tok`` splits a string into tokens on a set of
delimiters (whitespace by default), lower-casing everything.  Tokens carry a
*column property* — 'madison' in a name column is a different token from
'madison' in a city column.  ``tok(v)`` for a whole tuple is the multiset
union of the per-column token *sets*: duplicates within one column collapse,
but one copy per column is retained.

For the transformation-cost DP (fms) the *ordered* token sequence per column
matters too, so :class:`TupleTokens` exposes both views.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Sequence

DEFAULT_DELIMITERS = " \t\n\r.,;:/()[]{}'\"!?&#"

_SPLITTER_CACHE: dict[str, re.Pattern] = {}


def _splitter(delimiters: str) -> re.Pattern:
    pattern = _SPLITTER_CACHE.get(delimiters)
    if pattern is None:
        pattern = re.compile("[" + re.escape(delimiters) + "]+")
        _SPLITTER_CACHE[delimiters] = pattern
    return pattern


def tokenize(value: str | None, delimiters: str = DEFAULT_DELIMITERS) -> list[str]:
    """Split ``value`` into an ordered list of lower-cased tokens.

    ``None`` (a missing attribute value) tokenizes to the empty list, which
    is how the paper treats NULL columns: nothing to transform, and absent
    tokens are charged as insertions when comparing to a reference tuple.
    """
    if value is None:
        return []
    parts = _splitter(delimiters).split(value.lower())
    return [p for p in parts if p]


@dataclass(frozen=True)
class TupleTokens:
    """Tokenized view of one tuple.

    ``sequences[i]`` is the ordered token list of column ``i`` (duplicates
    preserved, for the DP); ``sets[i]`` is the de-duplicated token set of
    column ``i`` (for weights, signatures, and ``tok(v)`` semantics).
    """

    sequences: tuple[tuple[str, ...], ...]
    sets: tuple[frozenset[str], ...]

    @classmethod
    def from_values(
        cls,
        values: Sequence[str | None],
        delimiters: str = DEFAULT_DELIMITERS,
    ) -> "TupleTokens":
        sequences = tuple(tuple(tokenize(v, delimiters)) for v in values)
        sets = tuple(frozenset(seq) for seq in sequences)
        return cls(sequences=sequences, sets=sets)

    @property
    def num_columns(self) -> int:
        return len(self.sequences)

    def column_tokens(self, column: int) -> frozenset[str]:
        """The token set ``tok(v[column])``."""
        return self.sets[column]

    def all_tokens(self) -> Iterator[tuple[str, int]]:
        """Yield ``(token, column)`` pairs — the multiset union ``tok(v)``.

        One copy per (token, column): the paper's rule that a token occurring
        in multiple columns is retained once per column, distinguished by its
        column property.
        """
        for column, token_set in enumerate(self.sets):
            for token in sorted(token_set):
                yield token, column

    def token_count(self) -> int:
        """``|tok(v)|``: number of distinct (token, column) pairs."""
        return sum(len(s) for s in self.sets)
