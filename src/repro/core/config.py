"""Configuration for the fuzzy match operation.

All paper parameters in one frozen dataclass.  Paper defaults (§6.1
"Parameter Settings"): K=1, q-gram size q=4, minimum similarity threshold
c=0.0, token insertion factor c_ins=0.5, stop q-gram threshold 10 000.
Signature schemes follow §6.2's notation: ``Q_H`` (q-grams only) and
``Q+T_H`` (q-grams plus the token itself as coordinate 0).
"""

from __future__ import annotations

import enum
from typing import Any
from dataclasses import dataclass, replace


class SignatureScheme(enum.Enum):
    """How tokens are turned into ETI signature coordinates (§5.1, §6.2).

    ``FULL_QGRAMS`` is not in the paper's evaluation: it indexes *every*
    q-gram of every token (the Gravano-style full q-gram table of the
    related work, [12]/[18]), serving as the baseline for the paper's §2
    claim that the ETI "is smaller than a full q-gram table because we
    only select (probabilistically) a subset of all q-grams per tuple".
    With this scheme ``signature_size`` is ignored.
    """

    QGRAMS = "Q"
    QGRAMS_PLUS_TOKEN = "Q+T"
    FULL_QGRAMS = "Full"


class TranspositionCost(enum.Enum):
    """Cost function g(w(t1), w(t2)) of a token transposition (§5.3)."""

    AVERAGE = "avg"
    MINIMUM = "min"
    MAXIMUM = "max"
    CONSTANT = "const"


@dataclass(frozen=True)
class MatchConfig:
    """Parameters of the similarity function and the match algorithms.

    Attributes
    ----------
    q:
        q-gram size (paper experiments: 4; paper running examples: 3).
    signature_size:
        H, the number of min-hash coordinates per token.  0 is only valid
        with the ``Q+T`` scheme (tokens-only indexing, "Q+T_0").
    scheme:
        ``Q`` or ``Q+T`` signature scheme.
    k:
        Number of fuzzy matches to return (the K in K-fuzzy-match).
    min_similarity:
        c, the minimum fms similarity a returned match must reach.
    token_insertion_factor:
        c_ins in the token insertion cost ``c_ins * w(t)``.
    stop_qgram_threshold:
        Tid-lists longer than this are replaced by NULL in the ETI
        ("stop q-grams", §4.2).
    column_weights:
        Optional per-column importance multipliers (§5.2).  Any positive
        values are accepted; they are normalized internally (the paper
        normalizes W_1..W_n to sum to 1).
    allow_transpositions:
        Enable the token transposition operation in fms (§5.3).
    transposition_cost:
        Cost function for a transposition.
    transposition_constant:
        Cost used when ``transposition_cost`` is CONSTANT.
    use_osc:
        Enable optimistic short circuiting in query processing (§4.3.2).
    budgeted_verification:
        Let candidate verification pass a transformation-cost budget
        derived from the current K-th best similarity into the fms DP, so
        provably-losing candidates are abandoned mid-computation (see
        :func:`repro.core.fms.fms_budgeted`).  Never changes answers —
        only how much DP work losing candidates cost; ``False`` restores
        the always-exact behaviour for A/B measurement.
    osc_conservative:
        Use the provably-safe stopping bound instead of the paper's
        permissive score-space bound (see :mod:`repro.core.osc`).  Safer,
        but short circuiting fires much less often.
    seed:
        Seed of the min-hash family (signatures must be identical between
        ETI build and query processing).
    """

    q: int = 4
    signature_size: int = 2
    scheme: SignatureScheme = SignatureScheme.QGRAMS_PLUS_TOKEN
    k: int = 1
    min_similarity: float = 0.0
    token_insertion_factor: float = 0.5
    stop_qgram_threshold: int = 10_000
    column_weights: tuple[float, ...] | None = None
    allow_transpositions: bool = False
    transposition_cost: TranspositionCost = TranspositionCost.AVERAGE
    transposition_constant: float = 0.5
    use_osc: bool = True
    osc_conservative: bool = False
    budgeted_verification: bool = True
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ValueError("q must be positive")
        if self.signature_size < 0:
            raise ValueError("signature_size must be non-negative")
        if self.signature_size == 0 and self.scheme is SignatureScheme.QGRAMS:
            raise ValueError("Q_0 is not a valid scheme: no coordinates at all")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if not 0.0 <= self.min_similarity < 1.0:
            raise ValueError("min_similarity must be in [0, 1)")
        if not 0.0 <= self.token_insertion_factor <= 1.0:
            raise ValueError("token_insertion_factor must be in [0, 1]")
        if self.stop_qgram_threshold < 1:
            raise ValueError("stop_qgram_threshold must be positive")
        if self.column_weights is not None:
            if any(w <= 0 for w in self.column_weights):
                raise ValueError("column weights must be positive")

    @property
    def strategy_label(self) -> str:
        """The paper's strategy notation, e.g. ``Q_2`` or ``Q+T_3``."""
        if self.scheme is SignatureScheme.FULL_QGRAMS:
            return "Full"
        return f"{self.scheme.value}_{self.signature_size}"

    def normalized_column_weights(self, num_columns: int) -> tuple[float, ...]:
        """Per-column multipliers scaled so the average multiplier is 1.

        With no configured weights every column gets 1.0 (plain fms).  The
        paper normalizes W_1..W_n to sum to 1; scaling them to *average* 1
        is the same ranking with the convenient property that uniform
        weights reduce to the unweighted function exactly.
        """
        if self.column_weights is None:
            return (1.0,) * num_columns
        if len(self.column_weights) != num_columns:
            raise ValueError(
                f"{len(self.column_weights)} column weights for "
                f"{num_columns} columns"
            )
        total = sum(self.column_weights)
        scale = num_columns / total
        return tuple(w * scale for w in self.column_weights)

    def with_(self, **changes: Any) -> "MatchConfig":
        """Return a copy with ``changes`` applied (convenience wrapper)."""
        return replace(self, **changes)
