"""Cross-query caches for the fuzzy-match hot path.

The matcher's per-query work has three components that repeat massively
across a batch of dirty input tuples (that is what IDF weighting says:
most tokens are frequent ones):

- tokenizing fetched reference tuples (``tid -> TupleTokens``) — the same
  candidates come back query after query;
- IDF weight lookups (``(column, token) -> float``) — every fms evaluation
  re-weighs the same tokens;
- min-hash signature expansion (``token -> signature entries``) — dirty
  batches share almost all of their tokens.

PASS-JOIN and ApproxJoin get their throughput by amortizing exactly this
per-string preprocessing across a workload; :class:`MatcherCaches` is the
same idea for the online ETL loop of Figure 1.  All caches are bounded
LRU, thread-safe (the parallel batch engine shares nothing *mutable*
except these), and every one counts hits/misses/evictions so the win is
measured, not asserted — the counters surface per query in
:class:`repro.core.matcher.MatchStats` and in ``BENCH_batch.json``.

Cached values are keyed on content that is fixed for one matcher (its
config, hasher, and weight provider).  Do **not** share one
:class:`MatcherCaches` between matchers with different configurations;
give each its own bundle (the default).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.analysis.debuglock import make_lock
from repro.obs.registry import MetricsRegistry

_MISSING = object()

# Default capacities: sized for the paper's evaluation scale (a couple of
# million reference tuples, batches of thousands of dirty inputs) while
# staying bounded.  Entries are small (token strings, weight floats,
# tokenized tuples), so even the largest default is a few tens of MB.
DEFAULT_REFERENCE_CAPACITY = 65_536
DEFAULT_WEIGHT_CAPACITY = 262_144
DEFAULT_SIGNATURE_CAPACITY = 131_072


class CacheStats:
    """Hit/miss/eviction counters for one cache — a registry view.

    The counts live in ``repro_cache_{hits,misses,evictions}_total``
    series of a :class:`~repro.obs.registry.MetricsRegistry`, labelled
    by cache name; this class is the read/write facade the cache uses,
    so per-cache numbers and aggregate exposition read the same cells.
    Without an explicit registry each instance gets a private one,
    preserving the old standalone-counter behaviour.

    The backing counters are relaxed (lockless): the cache only
    increments them under its own LRU lock, and the pre-registry
    dataclass had exactly the same unlocked-read semantics.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        cache_name: str = "",
    ) -> None:
        if registry is None:
            registry = MetricsRegistry()
        labels = {"cache": cache_name} if cache_name else None
        self._hits = registry.counter(
            "repro_cache_hits_total", labels, relaxed=True
        )
        self._misses = registry.counter(
            "repro_cache_misses_total", labels, relaxed=True
        )
        self._evictions = registry.counter(
            "repro_cache_evictions_total", labels, relaxed=True
        )

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hits.value()

    @property
    def misses(self) -> int:
        """Lookups that fell through to a compute."""
        return self._misses.value()

    @property
    def evictions(self) -> int:
        """Entries dropped to stay within capacity."""
        return self._evictions.value()

    def record_hit(self) -> None:
        """Count one cache hit."""
        self._hits.inc()

    def record_miss(self) -> None:
        """Count one cache miss."""
        self._misses.inc()

    def record_eviction(self) -> None:
        """Count one LRU eviction."""
        self._evictions.inc()

    @property
    def lookups(self) -> int:
        """Hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> tuple[int, int]:
        """``(hits, misses)`` at this instant, for per-query deltas."""
        return (self.hits, self.misses)


class LRUCache:
    """A bounded, thread-safe LRU map with hit/miss/eviction accounting.

    ``capacity=0`` disables the cache: every lookup misses and nothing is
    stored, which is how the "seed" (uncached) behaviour is reproduced for
    parity tests and benchmarks.

    Thread safety: all map mutations happen under one lock.  In
    :meth:`get_or_compute` the compute callable runs *outside* the lock,
    so two threads racing on the same key may both compute; the second
    store is discarded.  Cached values must therefore be immutable (they
    are: tuples, floats, frozen dataclasses).
    """

    def __init__(
        self,
        capacity: int,
        name: str = "",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.name = name
        self.stats = CacheStats(registry, name)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = make_lock("LRUCache._lock")

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss."""
        if not self.enabled:
            self.stats.record_miss()
            return default
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.record_miss()
                return default
            self._data.move_to_end(key)
            self.stats.record_hit()
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key -> value``, evicting the LRU entry when full."""
        if not self.enabled:
            return
        with self._lock:
            if key in self._data:
                self._data[key] = value
                self._data.move_to_end(key)
                return
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.record_eviction()

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        if not self.enabled:
            self.stats.record_miss()
            return compute()
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self.stats.record_hit()
                return value
            self.stats.record_miss()
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        with self._lock:
            self._data.clear()


class MatcherCaches:
    """The bundle of cross-query caches one :class:`FuzzyMatcher` uses.

    - ``reference_tokens``: ``tid -> (TupleTokens, values)`` for fetched
      reference tuples, shared by candidate verification and the naive
      scan.
    - ``token_weights``: ``(column, token) -> weight`` memo in front of
      the weight provider (see :class:`CachingWeightFunction`).
    - ``signatures``: ``token -> signature entries`` memo in front of
      :func:`repro.eti.signature.signature_entries`.

    Every bundle owns (or is handed) one
    :class:`~repro.obs.registry.MetricsRegistry`; its three caches
    write their counters there, labelled by cache name, and the
    matcher publishes its per-query metrics to the same registry.
    Per-bundle registries keep absolute counts meaningful (one bundle
    per matcher) while fleet totals come from snapshot merging — see
    ``BatchMatcher.metrics_snapshot``.
    """

    def __init__(
        self,
        reference_capacity: int = DEFAULT_REFERENCE_CAPACITY,
        weight_capacity: int = DEFAULT_WEIGHT_CAPACITY,
        signature_capacity: int = DEFAULT_SIGNATURE_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.reference_tokens = LRUCache(
            reference_capacity, "reference_tokens", self.registry
        )
        self.token_weights = LRUCache(
            weight_capacity, "token_weights", self.registry
        )
        self.signatures = LRUCache(
            signature_capacity, "signatures", self.registry
        )

    @classmethod
    def disabled(cls) -> "MatcherCaches":
        """A bundle with every cache off — the seed (uncached) behaviour."""
        return cls(0, 0, 0)

    @property
    def enabled(self) -> bool:
        return any(cache.enabled for cache in self.all_caches())

    def all_caches(self) -> tuple[LRUCache, ...]:
        """The three caches, in counter order."""
        return (self.reference_tokens, self.token_weights, self.signatures)

    def counters(self) -> dict[str, dict[str, int | float]]:
        """Per-cache hit/miss/eviction counters plus hit rate."""
        return {
            cache.name: {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "evictions": cache.stats.evictions,
                "hit_rate": cache.stats.hit_rate,
                "entries": len(cache),
            }
            for cache in self.all_caches()
        }

    def snapshot(self) -> tuple[tuple[int, int], ...]:
        """Per-cache ``(hits, misses)`` tuples, for per-query deltas."""
        return tuple(cache.stats.snapshot() for cache in self.all_caches())

    def clear(self) -> None:
        """Drop every entry from every cache."""
        for cache in self.all_caches():
            cache.clear()


class CachingWeightFunction:
    """A :class:`~repro.core.weights.WeightFunction` memoizing ``weight``.

    Wraps any weight provider with the shared ``token_weights`` LRU.  The
    wrapper watches the provider's ``version`` attribute (bumped by the
    frequency caches on every mutation — see
    :class:`repro.core.weights.TokenFrequencyCache`) and clears the memo
    whenever it changes, so incrementally-maintained weights stay exact.
    Providers without a ``version`` attribute are assumed immutable.
    """

    def __init__(self, base: Any, cache: LRUCache) -> None:
        self._base = base
        self._cache = cache
        self._seen_version = getattr(base, "version", None)

    @property
    def base(self) -> Any:
        """The wrapped weight provider."""
        return self._base

    def _check_version(self) -> None:
        version = getattr(self._base, "version", None)
        if version != self._seen_version:
            self._cache.clear()
            self._seen_version = version

    def weight(self, token: str, column: int) -> float:
        """``w(t, i)`` served from the memo (computed once per token)."""
        self._check_version()
        return self._cache.get_or_compute(
            (column, token), lambda: self._base.weight(token, column)
        )

    def frequency(self, token: str, column: int) -> int:
        """``freq(t, i)``, delegated uncached (cold path)."""
        return self._base.frequency(token, column)
