"""Command-line interface.

Twelve subcommands covering the full workflow:

- ``repro generate``  — write a synthetic Customer reference relation CSV;
- ``repro corrupt``   — sample reference tuples and inject Table 4 errors;
- ``repro match``     — build the ETI and fuzzy-match an input CSV
  (``--db`` persists the warehouse and reuses it on later runs);
- ``repro explain``   — trace one query's lookups and OSC decisions;
- ``repro dedup``     — flag fuzzy duplicates inside a reference CSV;
- ``repro evaluate``  — run the paper's experiment suite and print tables;
- ``repro fsck``      — check a persisted warehouse for corruption;
- ``repro recover``   — replay a warehouse's write-ahead log and checkpoint;
- ``repro serve``     — run a long-lived match server over a warehouse
  (admission control, deadlines, load shedding, graceful drain);
- ``repro ping``      — query a running server's readiness (``--stats``
  appends a one-line health summary);
- ``repro stats``     — dump a running server's live metrics as JSON or
  Prometheus text (``--watch`` refreshes continuously);
- ``repro fuzz``      — sweep mutated inputs at one trust boundary.

CSV conventions: the reference file's first column is the integer ``tid``;
a dirty-input file may carry a ``target_tid`` first column (written by
``corrupt``), in which case ``match`` also reports accuracy.  Empty cells
are treated as missing (NULL) attribute values.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import signal
import sys
import time
from typing import Sequence

from repro.core.batch import BatchMatcher
from repro.core.config import MatchConfig, SignatureScheme
from repro.core.matcher import FuzzyMatcher
from repro.core.resilience import ResiliencePolicy
from repro.core.reference import ReferenceTable
from repro.core.weights import build_frequency_cache
from repro.data.datasets import DATASET_PRESETS, DatasetSpec, make_dataset
from repro.data.generator import CUSTOMER_COLUMNS, generate_customers
from repro.db.database import Database
from repro.db.fsck import check_database
from repro.db.snapshot import load_database, save_database
from repro.eti.builder import BuildStats, build_eti
from repro.eti.index import EtiIndex
from repro.eval.harness import Workbench
from repro.eval import figures as figure_drivers
from repro.eval.metrics import accuracy


def _cell(value: str | None) -> str:
    return "" if value is None else value


def _value(cell: str) -> str | None:
    return cell if cell != "" else None


def _read_reference_csv(
    path: str,
) -> tuple[list[str], list[tuple[int, tuple[str | None, ...]]]]:
    """Returns (column_names, [(tid, values), ...])."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if not header or header[0] != "tid":
            raise SystemExit(f"{path}: first column must be 'tid', got {header[:1]}")
        columns = header[1:]
        rows = []
        for record in reader:
            rows.append((int(record[0]), tuple(_value(c) for c in record[1:])))
    return columns, rows


def _build_matcher(
    reference_path: str, config: MatchConfig
) -> tuple[FuzzyMatcher, BuildStats]:
    columns, rows = _read_reference_csv(reference_path)
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", columns)
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    eti, build_stats = build_eti(db, reference, config)
    return FuzzyMatcher(reference, weights, config, eti), build_stats


def _matcher_from_db(
    db_path: str, reference_path: str | None, config: MatchConfig, wal: bool
) -> tuple[FuzzyMatcher, BuildStats | None, Database]:
    """A matcher over a persisted warehouse (§6.2.2.1 ETI reuse).

    If a snapshot exists at ``db_path``, the persisted reference + ETI
    serve this batch directly (``BuildStats`` is ``None``); the ETI must
    have been built with the same ``q``/``signature_size``/``scheme``.
    Otherwise the warehouse is built from the reference CSV and
    snapshotted for subsequent runs.  The returned :class:`Database` is
    the open warehouse handle — long-lived callers (``repro serve``)
    checkpoint it on drain.
    """
    if os.path.exists(db_path + ".meta.json"):
        db = load_database(db_path, wal=wal)
        relation = db.relation("reference")
        columns = [c.name for c in relation.schema.columns][1:]
        reference = ReferenceTable.attach(db, "reference", columns)
        weights = build_frequency_cache(
            reference.scan_values(), reference.num_columns
        )
        eti = EtiIndex(db.relation("eti"))
        return FuzzyMatcher(reference, weights, config, eti), None, db
    if reference_path is None:
        raise SystemExit(
            f"{db_path}: no persisted warehouse found and no --reference "
            "CSV given to build one"
        )
    columns, rows = _read_reference_csv(reference_path)
    db = Database.on_disk(db_path, wal=wal)
    reference = ReferenceTable(db, "reference", columns)
    reference.load(rows)
    weights = build_frequency_cache(reference.scan_values(), reference.num_columns)
    eti, build_stats = build_eti(db, reference, config)
    save_database(db, db_path)
    return FuzzyMatcher(reference, weights, config, eti), build_stats, db


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic reference relation CSV."""
    customers = generate_customers(
        args.count,
        seed=args.seed,
        business_fraction=args.business_fraction,
        unique=args.unique,
    )
    writer = csv.writer(args.out)
    writer.writerow(("tid",) + CUSTOMER_COLUMNS)
    for customer in customers:
        writer.writerow((customer.tid,) + customer.values)
    print(f"wrote {len(customers)} reference tuples", file=sys.stderr)
    return 0


def cmd_corrupt(args: argparse.Namespace) -> int:
    """``repro corrupt``: sample reference tuples and inject errors."""
    columns, rows = _read_reference_csv(args.reference)
    if args.preset:
        spec = DatasetSpec.preset(args.preset, method=args.method)
    else:
        probabilities = tuple(float(p) for p in args.probabilities.split(","))
        if len(probabilities) != len(columns):
            raise SystemExit(
                f"need {len(columns)} probabilities, got {len(probabilities)}"
            )
        spec = DatasetSpec("custom", probabilities, method=args.method)
    frequency_lookup = None
    if args.method == "type2":
        cache = build_frequency_cache((v for _, v in rows), len(columns))
        frequency_lookup = cache.frequency
    dataset = make_dataset(
        rows, spec, args.count, seed=args.seed, frequency_lookup=frequency_lookup
    )
    writer = csv.writer(args.out)
    writer.writerow(["target_tid"] + columns)
    for dirty in dataset.inputs:
        writer.writerow([dirty.target_tid] + [_cell(v) for v in dirty.values])
    print(
        f"wrote {len(dataset)} dirty tuples "
        f"(errors: {dataset.error_counts()})",
        file=sys.stderr,
    )
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    """``repro match``: build an ETI and fuzzy-match an input CSV."""
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    config = MatchConfig(
        q=args.q,
        signature_size=args.signature_size,
        scheme=SignatureScheme(args.scheme),
        k=args.k,
        min_similarity=args.min_similarity,
        use_osc=(args.strategy != "basic"),
    )
    started = time.perf_counter()
    if args.db:
        matcher, build_stats, _db = _matcher_from_db(
            args.db, args.reference, config, wal=args.wal
        )
    else:
        matcher, build_stats = _build_matcher(args.reference, config)
    build_seconds = time.perf_counter() - started
    if build_stats is None:
        print(
            f"reused persisted ETI from {args.db} in {build_seconds:.2f}s",
            file=sys.stderr,
        )
    else:
        print(
            f"built ETI: {build_stats.eti_rows} rows in {build_seconds:.2f}s",
            file=sys.stderr,
        )

    with open(args.input, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        has_target = bool(header) and header[0] == "target_tid"
        input_columns = header[1:] if has_target else header
        if len(input_columns) != matcher.reference.num_columns:
            raise SystemExit(
                f"input has {len(input_columns)} attribute columns, "
                f"reference has {matcher.reference.num_columns}"
            )
        inputs = []
        for record in reader:
            target = int(record[0]) if has_target else None
            values = tuple(_value(c) for c in (record[1:] if has_target else record))
            inputs.append((target, values))

    budgeted = args.deadline_ms is not None or args.max_page_fetches is not None
    resilience = None
    if budgeted:
        resilience = ResiliencePolicy.with_budget(
            deadline_ms=args.deadline_ms, max_page_fetches=args.max_page_fetches
        )
    executor = getattr(args, "executor", "auto")
    if resilience is not None and executor == "process":
        raise SystemExit(
            "--executor process cannot be combined with per-query budgets "
            "(--deadline-ms/--max-page-fetches); use --executor thread"
        )
    engine = BatchMatcher.from_matcher(
        matcher,
        jobs=args.jobs,
        resilience=resilience,
        fail_fast=args.fail_fast,
        executor=executor,
    )
    started = time.perf_counter()
    with engine:
        results = engine.match_many(
            [values for _, values in inputs], strategy=args.strategy
        )
    elapsed = time.perf_counter() - started

    writer = csv.writer(args.out)
    out_header = (["target_tid"] if has_target else []) + list(input_columns)
    out_header += ["matched_tid", "similarity"]
    if budgeted:
        # The status column only appears when a budget was requested, so
        # budget-free runs keep the historical output schema.
        out_header += ["status"]
    writer.writerow(out_header)
    predictions = []
    for (target, values), result in zip(inputs, results):
        best = result.best
        row = ([target] if has_target else []) + [_cell(v) for v in values]
        if best is None:
            row += ["", ""]
        else:
            row += [best.tid, f"{best.similarity:.4f}"]
        if budgeted:
            if result.failed:
                row += [f"error:{result.error_type}"]
            elif result.stats.degraded:
                row += [f"degraded:{result.stats.degraded_reason}"]
            else:
                row += ["ok"]
        writer.writerow(row)
        if has_target:
            predictions.append((best.tid if best else None, target))
    report = engine.last_report
    print(
        f"matched {len(inputs)} tuples in {elapsed:.2f}s "
        f"({1000 * elapsed / max(len(inputs), 1):.1f} ms/tuple, "
        f"{report.queries_per_second:.1f} q/s, jobs={args.jobs}, "
        f"executor={report.executor}, "
        f"{report.deduplicated_queries} deduplicated)",
        file=sys.stderr,
    )
    if report.degraded_queries or report.failed_queries:
        print(
            f"resilience: {report.degraded_queries} degraded, "
            f"{report.failed_queries} failed",
            file=sys.stderr,
        )
        breakdown = [
            f"{reason}={count}"
            for reason, count in sorted(report.degraded_reasons.items())
        ] + [
            f"error:{error_type}={count}"
            for error_type, count in sorted(report.failed_types.items())
        ]
        if breakdown:
            print("  reasons: " + ", ".join(breakdown), file=sys.stderr)
    if args.report_json:
        with open(args.report_json, "w") as handle:
            handle.write(report.to_json(indent=2))
            handle.write("\n")
    if has_target and predictions:
        print(f"accuracy: {accuracy(predictions):.3f}", file=sys.stderr)
    return 0


def cmd_dedup(args: argparse.Namespace) -> int:
    """``repro dedup``: flag fuzzy duplicates inside a reference CSV."""
    from repro.dedup import FuzzyDeduplicator

    columns, rows = _read_reference_csv(args.reference)
    db = Database.in_memory()
    reference = ReferenceTable(db, "reference", columns)
    reference.load(rows)
    dedup = FuzzyDeduplicator(threshold=args.threshold, neighbors=args.neighbors)
    report = dedup.deduplicate(reference, db)
    mapping = report.duplicates_of()

    writer = csv.writer(args.out)
    writer.writerow(["tid"] + columns + ["duplicate_of"])
    for tid, values in reference.scan():
        canonical = mapping.get(tid, "")
        writer.writerow([tid] + [_cell(v) for v in values] + [canonical])
    print(
        f"scanned {report.tuples_scanned} tuples in {report.elapsed_seconds:.2f}s; "
        f"{len(report.clusters)} clusters, "
        f"{report.duplicate_count} duplicates flagged",
        file=sys.stderr,
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: trace one fuzzy match query, step by step."""
    config = MatchConfig(
        q=args.q,
        signature_size=args.signature_size,
        scheme=SignatureScheme(args.scheme),
    )
    matcher, _ = _build_matcher(args.reference, config)
    values = tuple(_value(v) for v in args.values)
    if len(values) != matcher.reference.num_columns:
        raise SystemExit(
            f"{len(values)} values given, reference has "
            f"{matcher.reference.num_columns} columns"
        )
    result = matcher.match(values, strategy=args.strategy, trace=True)
    for line in result.trace or ():
        print(line)
    print()
    if result.best is None:
        print("no match")
    else:
        for match in result.matches:
            print(f"match tid={match.tid} fms={match.similarity:.4f} {match.values}")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """``repro fsck``: check a persisted warehouse for corruption.

    Exit code 0 = clean, 1 = recoverable findings only (e.g. a torn log
    tail recovery would discard), 2 = corruption.
    """
    report = check_database(args.db, eti_name=args.eti_name)
    for line in report.lines():
        print(line)
    return report.exit_code


def cmd_recover(args: argparse.Namespace) -> int:
    """``repro recover``: replay a warehouse's log and checkpoint it."""
    db = load_database(args.db)
    wal = db.wal
    assert wal is not None  # load_database(wal=True) always attaches one
    recovery = wal.recovery
    catalog_source = (
        "recovered from log" if recovery.catalog_recovered else "from snapshot"
    )
    print(f"generation:      {wal.generation}")
    print(f"committed txns:  {recovery.committed_txns}")
    print(f"replayed pages:  {recovery.replayed_pages}")
    print(f"torn bytes:      {recovery.torn_bytes}")
    print(f"catalog:         {catalog_source}")
    if args.dry_run:
        # Report only: no checkpoint, no flush (a torn tail is still
        # trimmed — that happens on every open).
        db.pool.storage.close()
        print("dry run: snapshot and log left as found")
        return 0
    save_database(db, args.db)
    db.close()
    print("checkpointed: log applied to the page file and emptied")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: a long-lived match server over a warehouse.

    Binds immediately (``ping`` answers ``loading`` while the warehouse
    builds or loads), then serves until SIGTERM/SIGINT.  SIGTERM during
    load exits 1 without serving; SIGTERM while serving drains: admitted
    work finishes within ``--drain-budget-s``, the rest is shed with a
    typed reason, and the WAL is checkpointed before exit.
    """
    from repro.serve.server import MatchServer, ServeConfig

    config = MatchConfig(
        q=args.q,
        signature_size=args.signature_size,
        scheme=SignatureScheme(args.scheme),
        k=args.k,
        min_similarity=args.min_similarity,
        use_osc=(args.strategy != "basic"),
    )
    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        default_deadline_ms=(
            args.default_deadline_ms if args.default_deadline_ms > 0 else None
        ),
        max_page_fetches=args.max_page_fetches,
        degrade_p95_s=args.degrade_p95_ms / 1000.0,
        recover_p95_s=args.recover_p95_ms / 1000.0,
        shed_p95_s=args.shed_p95_ms / 1000.0,
        stage_cooldown_s=args.stage_cooldown_s,
        drain_budget_s=args.drain_budget_s,
        stuck_after_s=args.stuck_after_s,
    )

    def engine_factory() -> tuple[BatchMatcher, Database | None]:
        matcher, build_stats, db = _matcher_from_db(
            args.db, args.reference, config, wal=args.wal
        )
        if build_stats is None:
            print(f"loaded persisted warehouse {args.db}", file=sys.stderr)
        else:
            print(
                f"built warehouse {args.db}: {build_stats.eti_rows} ETI rows",
                file=sys.stderr,
            )
        engine = BatchMatcher.from_matcher(
            matcher,
            jobs=args.workers,
            resilience=ResiliencePolicy(),
            fail_fast=False,
            executor="thread",
        )
        return engine, db

    on_bound = None
    if args.port_file:

        def write_port_file(host: str, port: int) -> None:
            tmp = args.port_file + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(f"{host} {port}\n")
            os.replace(tmp, args.port_file)

        on_bound = write_port_file

    server = MatchServer(
        engine_factory=engine_factory, config=serve_config, on_bound=on_bound
    )

    def handle_signal(signum: int, _frame: object) -> None:
        if server.lifecycle.state == "loading":
            # Nothing has been served and the snapshot write is atomic:
            # dying now is cheaper and safer than a half-loaded drain.
            raise SystemExit(1)
        server.request_shutdown()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)

    host, port = server.start()
    print(f"serving on {host}:{port}", file=sys.stderr)
    server.serve_until_shutdown()
    stats = server.stats.as_dict()
    print(
        f"drained: {stats['completed']} completed, {stats['degraded']} degraded, "
        f"{stats['shed']} shed",
        file=sys.stderr,
    )
    if server.checkpoint_error is not None:
        print(f"checkpoint failed: {server.checkpoint_error}", file=sys.stderr)
        return 1
    return 0


def _server_endpoint(args: argparse.Namespace) -> tuple[str, int] | None:
    """Resolve the server address from ``--host/--port/--port-file``.

    Returns ``None`` (after printing why) when the port file cannot be
    read; raises ``SystemExit`` when no port was given at all.
    """
    host, port = args.host, args.port
    if args.port_file:
        try:
            with open(args.port_file) as handle:
                bound_host, bound_port = handle.read().split()
        except (OSError, ValueError) as exc:
            print(f"cannot read --port-file: {exc}", file=sys.stderr)
            return None
        host, port = bound_host, int(bound_port)
    if port is None:
        raise SystemExit(f"{args.command} needs --port or --port-file")
    return host, port


def cmd_ping(args: argparse.Namespace) -> int:
    """``repro ping``: print a running server's readiness payload.

    ``--stats`` swaps the JSON payload for a one-line health summary
    (state, ladder stage, queue depth, wait p95, shed rate).  Exit
    codes: 0 = serving, 1 = any other state (loading, degraded,
    draining), 2 = unreachable.
    """
    from repro.serve.client import ServeClient

    endpoint = _server_endpoint(args)
    if endpoint is None:
        return 2
    host, port = endpoint
    try:
        with ServeClient(host, port, timeout_s=args.timeout_s) as client:
            payload = client.ping()
            stats = client.stats(["serve"]) if args.stats else None
    except (OSError, ConnectionError) as exc:
        print(f"ping failed: {exc}", file=sys.stderr)
        return 2
    if stats is not None:
        completed = stats.get("completed", 0)
        shed = stats.get("shed", 0)
        resolved = (
            completed
            + sum(stats.get("degraded_reasons", {}).values())
            + sum(stats.get("errors", {}).values())
            + shed
        )
        shed_rate = shed / resolved if resolved else 0.0
        print(
            f"{payload.get('state')} stage={payload.get('stage')} "
            f"queue={payload.get('queue_depth')}/{payload.get('queue_capacity')} "
            f"p95_wait={payload.get('p95_wait_ms')}ms "
            f"shed_rate={shed_rate:.1%} completed={completed}"
        )
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if payload.get("state") == "serving" else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: dump a running server's live metrics.

    ``--format json`` prints the full stats payload (serve counters
    plus the merged metrics snapshot; ``--traces`` adds recent and
    slow span trees); ``--format prom`` renders the metrics section in
    Prometheus text exposition format.  ``--watch`` refetches every
    ``--interval-s`` seconds until interrupted.  Exit codes: 0 =
    payload fetched, 2 = unreachable.
    """
    from repro.obs.exposition import render_prometheus
    from repro.serve.client import ServeClient

    endpoint = _server_endpoint(args)
    if endpoint is None:
        return 2
    host, port = endpoint
    sections = ["serve", "metrics"]
    if args.traces:
        sections.append("traces")
    try:
        while True:
            with ServeClient(host, port, timeout_s=args.timeout_s) as client:
                payload = client.stats(sections)
            if args.format == "prom":
                sys.stdout.write(render_prometheus(payload.get("metrics", {})))
            else:
                print(json.dumps(payload, indent=2, sort_keys=True))
            if not args.watch:
                return 0
            sys.stdout.flush()
            time.sleep(args.interval_s)
    except (OSError, ConnectionError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz``: sweep mutated inputs at one trust boundary.

    Targets: ``wire`` (mutated frames against a live in-process server),
    ``stats`` (mutated stats requests against the same server), ``wal``
    (mutated write-ahead logs through recovery), ``snapshot``
    (mutated catalog metadata through the loader).  Prints a JSON report;
    exits 1 if any case crashed, hung, or failed untyped.  Failing
    inputs (raw and minimized) are written to ``--corpus-dir``.
    """
    from repro.fuzz.harness import run_fuzz

    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    cases = min(args.cases, 25) if args.smoke else args.cases
    report = run_fuzz(
        args.target,
        seeds=seeds,
        cases_per_seed=cases,
        corpus_dir=args.corpus_dir,
        case_deadline_s=args.case_deadline_s,
    )
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    return 0 if report.ok else 1


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: run the paper's experiment suite."""
    workbench = Workbench(
        num_reference=args.reference_size, num_inputs=args.inputs, seed=args.seed
    )
    wanted = args.figures.split(",") if args.figures != "all" else [
        "edfms", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"
    ]
    grid = None
    if any(f.startswith("fig") and f != "fig7" for f in wanted):
        grid = figure_drivers.run_strategy_grid(workbench)
    naive_unit = None
    if "fig6" in wanted or "fig7" in wanted:
        naive_unit = workbench.naive_unit_time()
    for name in wanted:
        if name == "edfms":
            result = figure_drivers.run_ed_vs_fms(workbench, num_inputs=args.edfms_inputs)
        elif name == "fig5":
            result = figure_drivers.fig5_accuracy(grid)
        elif name == "fig6":
            result = figure_drivers.fig6_times(grid, naive_unit)
        elif name == "fig7":
            result = figure_drivers.fig7_build_times(workbench, naive_unit)
        elif name == "fig8":
            result = figure_drivers.fig8_candidates(grid)
        elif name == "fig9":
            result = figure_drivers.fig9_tids(grid)
        elif name == "fig10":
            result = figure_drivers.fig10_osc(grid)
        else:
            raise SystemExit(f"unknown figure {name!r}")
        print(result.render())
        print()
    workbench.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fuzzy match for online data cleaning (SIGMOD 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic reference relation CSV")
    gen.add_argument("--count", type=int, default=5000)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--business-fraction", type=float, default=0.4)
    gen.add_argument("--unique", action="store_true", default=True)
    gen.add_argument("--out", type=argparse.FileType("w"), default=sys.stdout)
    gen.set_defaults(func=cmd_generate)

    cor = sub.add_parser("corrupt", help="inject errors into sampled reference tuples")
    cor.add_argument("--reference", required=True)
    cor.add_argument("--count", type=int, default=200)
    cor.add_argument("--preset", choices=sorted(DATASET_PRESETS))
    cor.add_argument(
        "--probabilities",
        help="comma-separated per-column error probabilities (alternative to --preset)",
    )
    cor.add_argument("--method", choices=("type1", "type2"), default="type1")
    cor.add_argument("--seed", type=int, default=7)
    cor.add_argument("--out", type=argparse.FileType("w"), default=sys.stdout)
    cor.set_defaults(func=cmd_corrupt)

    mat = sub.add_parser("match", help="fuzzy-match an input CSV against a reference CSV")
    mat.add_argument("--reference", required=True)
    mat.add_argument("--input", required=True)
    mat.add_argument("--k", type=int, default=1)
    mat.add_argument("--min-similarity", type=float, default=0.0)
    mat.add_argument("--q", type=int, default=4)
    mat.add_argument("--signature-size", type=int, default=2)
    mat.add_argument("--scheme", choices=("Q", "Q+T"), default="Q+T")
    mat.add_argument("--strategy", choices=("naive", "basic", "osc"), default="osc")
    mat.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="batch-matching workers (1 = sequential)",
    )
    mat.add_argument(
        "--executor",
        choices=("auto", "thread", "process"),
        default="auto",
        help="worker pool flavour for --jobs > 1: 'thread' shares one "
        "interpreter (GIL-bound), 'process' runs true multicore workers, "
        "'auto' picks processes when safe and useful (default)",
    )
    mat.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query wall-clock budget; exhausted queries return "
        "best-so-far results flagged 'degraded' in a status column",
    )
    mat.add_argument(
        "--max-page-fetches",
        type=int,
        default=None,
        help="per-query physical page read budget (adds the status column)",
    )
    mat.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole batch on the first storage error instead of "
        "isolating it into that row's result",
    )
    mat.add_argument(
        "--db",
        default=None,
        help="page-file path of a persisted warehouse: built and "
        "snapshotted on first use, the persisted ETI answers later runs "
        "(build parameters must match)",
    )
    mat.add_argument(
        "--wal",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="write-ahead logging for --db (--no-wal trades crash "
        "safety for write-in-place speed)",
    )
    mat.add_argument(
        "--report-json",
        default=None,
        help="also write the full batch report (counts, degradation "
        "reasons, error types) as JSON to this path",
    )
    mat.add_argument("--out", type=argparse.FileType("w"), default=sys.stdout)
    mat.set_defaults(func=cmd_match)

    ded = sub.add_parser("dedup", help="flag fuzzy duplicates inside a reference CSV")
    ded.add_argument("--reference", required=True)
    ded.add_argument("--threshold", type=float, default=0.85)
    ded.add_argument("--neighbors", type=int, default=4)
    ded.add_argument("--out", type=argparse.FileType("w"), default=sys.stdout)
    ded.set_defaults(func=cmd_dedup)

    exp = sub.add_parser("explain", help="trace one fuzzy match query step by step")
    exp.add_argument("--reference", required=True)
    exp.add_argument("--q", type=int, default=4)
    exp.add_argument("--signature-size", type=int, default=2)
    exp.add_argument("--scheme", choices=("Q", "Q+T"), default="Q+T")
    exp.add_argument("--strategy", choices=("basic", "osc"), default="osc")
    exp.add_argument(
        "values",
        nargs="+",
        help="the input tuple's attribute values (use '' for NULL)",
    )
    exp.set_defaults(func=cmd_explain)

    ev = sub.add_parser("evaluate", help="run the paper's experiment suite")
    ev.add_argument("--reference-size", type=int, default=2000)
    ev.add_argument("--inputs", type=int, default=100)
    ev.add_argument("--edfms-inputs", type=int, default=40)
    ev.add_argument("--seed", type=int, default=2003)
    ev.add_argument(
        "--figures",
        default="all",
        help="comma list from: edfms,fig5,fig6,fig7,fig8,fig9,fig10 (default all)",
    )
    ev.set_defaults(func=cmd_evaluate)

    fsk = sub.add_parser("fsck", help="check a persisted warehouse for corruption")
    fsk.add_argument("db", help="page-file path (metadata and WAL live beside it)")
    fsk.add_argument(
        "--eti-name",
        default="eti",
        help="relation name of the ETI for referential checks",
    )
    fsk.set_defaults(func=cmd_fsck)

    rec = sub.add_parser(
        "recover", help="replay a warehouse's write-ahead log and checkpoint it"
    )
    rec.add_argument("db", help="page-file path (metadata and WAL live beside it)")
    rec.add_argument(
        "--dry-run",
        action="store_true",
        help="report what recovery finds without checkpointing",
    )
    rec.set_defaults(func=cmd_recover)

    srv = sub.add_parser(
        "serve",
        help="run a long-lived match server over a persisted warehouse",
    )
    srv.add_argument(
        "--db",
        required=True,
        help="page-file path of the warehouse (built from --reference "
        "and snapshotted on first use)",
    )
    srv.add_argument(
        "--reference",
        default=None,
        help="reference CSV for building the warehouse when --db does "
        "not exist yet",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0, help="0 = OS-assigned")
    srv.add_argument(
        "--port-file",
        default=None,
        help="write 'host port' here once bound (for supervisors and "
        "`repro ping --port-file`)",
    )
    srv.add_argument("--workers", type=int, default=4)
    srv.add_argument("--queue-capacity", type=int, default=64)
    srv.add_argument(
        "--default-deadline-ms",
        type=float,
        default=250.0,
        help="end-to-end deadline for requests that name none "
        "(<= 0 disables the default)",
    )
    srv.add_argument("--max-page-fetches", type=int, default=None)
    srv.add_argument("--degrade-p95-ms", type=float, default=200.0)
    srv.add_argument("--recover-p95-ms", type=float, default=50.0)
    srv.add_argument("--shed-p95-ms", type=float, default=400.0)
    srv.add_argument("--stage-cooldown-s", type=float, default=1.0)
    srv.add_argument("--drain-budget-s", type=float, default=5.0)
    srv.add_argument("--stuck-after-s", type=float, default=10.0)
    srv.add_argument("--q", type=int, default=4)
    srv.add_argument("--signature-size", type=int, default=2)
    srv.add_argument("--scheme", choices=("Q", "Q+T"), default="Q+T")
    srv.add_argument("--k", type=int, default=1)
    srv.add_argument("--min-similarity", type=float, default=0.0)
    srv.add_argument("--strategy", choices=("basic", "osc"), default="osc")
    srv.add_argument(
        "--wal", action=argparse.BooleanOptionalAction, default=True
    )
    srv.set_defaults(func=cmd_serve)

    png = sub.add_parser("ping", help="query a running match server's readiness")
    png.add_argument("--host", default="127.0.0.1")
    png.add_argument("--port", type=int, default=None)
    png.add_argument(
        "--port-file", default=None, help="read host/port written by serve"
    )
    png.add_argument("--timeout-s", type=float, default=5.0)
    png.add_argument(
        "--stats",
        action="store_true",
        help="print a one-line health summary instead of the JSON payload",
    )
    png.set_defaults(func=cmd_ping)

    st = sub.add_parser(
        "stats", help="dump a running match server's live metrics"
    )
    st.add_argument("--host", default="127.0.0.1")
    st.add_argument("--port", type=int, default=None)
    st.add_argument(
        "--port-file", default=None, help="read host/port written by serve"
    )
    st.add_argument("--timeout-s", type=float, default=5.0)
    st.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="full payload as JSON, or Prometheus text exposition",
    )
    st.add_argument(
        "--traces",
        action="store_true",
        help="include recent and slow request span trees (JSON format)",
    )
    st.add_argument(
        "--watch", action="store_true", help="refetch until interrupted"
    )
    st.add_argument(
        "--interval-s", type=float, default=2.0, help="--watch refresh period"
    )
    st.set_defaults(func=cmd_stats)

    fz = sub.add_parser(
        "fuzz",
        help="fuzz a trust boundary: wire protocol, stats op, WAL, or snapshot",
    )
    fz.add_argument(
        "--target",
        choices=sorted(("wire", "stats", "wal", "snapshot")),
        default="wire",
    )
    fz.add_argument(
        "--seeds", type=int, default=3, help="number of consecutive seeds"
    )
    fz.add_argument("--seed-base", type=int, default=0, help="first seed")
    fz.add_argument(
        "--cases", type=int, default=200, help="mutated inputs per seed"
    )
    fz.add_argument(
        "--smoke", action="store_true", help="CI-sized sweep (caps cases at 25)"
    )
    fz.add_argument(
        "--corpus-dir", default=None, help="directory for failing inputs"
    )
    fz.add_argument(
        "--case-deadline-s",
        type=float,
        default=5.0,
        help="per-case hang budget",
    )
    fz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "corrupt" and not args.preset and not args.probabilities:
        parser.error("corrupt needs --preset or --probabilities")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
