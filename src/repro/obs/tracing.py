"""Span-tree tracing: per-request timing across serve, matcher, and db.

A trace is a tree of :class:`Span` objects rooted at the serve layer's
``request`` span.  Instrumented code opens children with
:func:`trace_span`, which consults a thread-local stack: when no trace
is active on the current thread the call returns a shared no-op
context, so library code can be instrumented unconditionally and pay
one attribute read when tracing is off.

The :class:`Tracer` owns retention: finished root spans land in a
bounded ring buffer (most recent N), traces over the slow threshold
are additionally kept in a slow-query log, and the slowest trace ever
seen is always retained — at sub-millisecond p50 the interesting
outlier would otherwise age out of both buffers long before an
operator asks for it.

Clocks are injected (defaulting to ``time.perf_counter``, the one
clock the determinism rule admits) so tests drive time by hand.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from types import TracebackType
from typing import Any, Callable

from repro.analysis.debuglock import make_lock

__all__ = ["Span", "Tracer", "trace_span"]


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "start_s", "end_s", "annotations", "children")

    def __init__(self, name: str, start_s: float) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s = start_s
        self.annotations: dict[str, Any] = {}
        self.children: list["Span"] = []

    @property
    def duration_s(self) -> float:
        """Wall time between open and close."""
        return self.end_s - self.start_s

    def annotate(self, **values: Any) -> None:
        """Attach key/value context (counts, reasons, byte sizes)."""
        self.annotations.update(values)

    def child(self, name: str, duration_s: float = 0.0, **values: Any) -> "Span":
        """Append a synthesized child (e.g. queue wait measured elsewhere)."""
        span = Span(name, self.start_s)
        span.end_s = self.start_s + duration_s
        span.annotations.update(values)
        self.children.append(span)
        return span

    def as_dict(self, origin_s: float | None = None) -> dict[str, Any]:
        """JSON-ready view with times relative to the trace origin."""
        origin = self.start_s if origin_s is None else origin_s
        node: dict[str, Any] = {
            "name": self.name,
            "start_ms": round((self.start_s - origin) * 1000.0, 3),
            "duration_ms": round(self.duration_s * 1000.0, 3),
        }
        if self.annotations:
            node["annotations"] = dict(self.annotations)
        if self.children:
            node["children"] = [c.as_dict(origin) for c in self.children]
        return node


class _ThreadState(threading.local):
    """Per-thread active-trace state: the span stack and its clock."""

    def __init__(self) -> None:
        self.stack: list[Span] = []
        self.clock: Callable[[], float] = time.perf_counter


_STATE = _ThreadState()


class _NullContext:
    """The shared do-nothing span context returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def annotate(self, **values: Any) -> None:
        """Dropped — there is no active trace."""


_NULL = _NullContext()


class _SpanContext:
    """Context manager that opens a child span on the active trace."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        state = _STATE
        self._span.end_s = state.clock()
        if exc_type is not None:
            self._span.annotations["error"] = exc_type.__name__
        if state.stack and state.stack[-1] is self._span:
            state.stack.pop()

    def annotate(self, **values: Any) -> None:
        """Attach key/value context to the open span."""
        self._span.annotate(**values)


def trace_span(name: str, **values: Any) -> _SpanContext | _NullContext:
    """Open a child span under the current thread's active trace.

    With no trace active this returns a shared no-op context — the fast
    path for untraced requests is one empty-list check.
    """
    stack = _STATE.stack
    if not stack:
        return _NULL
    parent = stack[-1]
    span = Span(name, _STATE.clock())
    span.annotations.update(values)
    parent.children.append(span)
    stack.append(span)
    return _SpanContext(span)


class _RootContext:
    """Context manager for a root span; records into the tracer on exit."""

    __slots__ = ("_tracer", "_span", "_is_root")

    def __init__(self, tracer: "Tracer", span: Span, is_root: bool) -> None:
        self._tracer = tracer
        self._span = span
        self._is_root = is_root

    def __enter__(self) -> Span:
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        state = _STATE
        self._span.end_s = state.clock()
        if exc_type is not None:
            self._span.annotations["error"] = exc_type.__name__
        if state.stack and state.stack[-1] is self._span:
            state.stack.pop()
        if self._is_root:
            self._tracer.record(self._span)

    def annotate(self, **values: Any) -> None:
        """Attach key/value context to the root span."""
        self._span.annotate(**values)


class Tracer:
    """Retention policy for finished traces: ring, slow log, slowest-ever."""

    def __init__(
        self,
        *,
        ring_capacity: int = 64,
        slow_capacity: int = 16,
        slow_threshold_s: float = 0.050,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {ring_capacity}"
            )
        if slow_capacity < 1:
            raise ValueError(
                f"slow_capacity must be >= 1, got {slow_capacity}"
            )
        if slow_threshold_s <= 0:
            raise ValueError(
                f"slow_threshold_s must be positive, got {slow_threshold_s}"
            )
        self.slow_threshold_s = slow_threshold_s
        self._clock = clock
        self._lock = make_lock("Tracer._lock")
        self._ring: deque[Span] = deque(maxlen=ring_capacity)
        self._slow: deque[Span] = deque(maxlen=slow_capacity)
        self._slowest: Span | None = None

    def trace(self, name: str, **values: Any) -> _RootContext:
        """Open a trace root on this thread.

        If a trace is already active the new span joins it as a child
        (and is retained through its root) rather than starting a
        second recording.
        """
        state = _STATE
        state.clock = self._clock
        span = Span(name, self._clock())
        span.annotations.update(values)
        is_root = not state.stack
        if not is_root:
            state.stack[-1].children.append(span)
        state.stack.append(span)
        return _RootContext(self, span, is_root)

    def record(self, span: Span) -> None:
        """File one finished root span into the retention buffers."""
        with self._lock:
            self._ring.append(span)
            if span.duration_s >= self.slow_threshold_s:
                self._slow.append(span)
            if (
                self._slowest is None
                or span.duration_s > self._slowest.duration_s
            ):
                self._slowest = span

    def recent(self, limit: int | None = None) -> list[Span]:
        """Most recent finished traces, oldest first."""
        with self._lock:
            spans = list(self._ring)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def slow(self) -> list[Span]:
        """Traces over the slow threshold, oldest first."""
        with self._lock:
            return list(self._slow)

    def slowest(self) -> Span | None:
        """The slowest trace ever recorded (never ages out)."""
        with self._lock:
            return self._slowest
