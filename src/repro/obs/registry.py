"""Thread-safe metrics registry: counters, gauges, log-bucket histograms.

The registry is the single accumulation point for every counter the
engine used to keep in scattered per-module structs (cache hit/miss
tallies, kernel cell counts, serve shed reasons).  Instruments are
keyed by ``(name, sorted label pairs)`` so per-query views and fleet
aggregates read the same cells and can never disagree.

Design constraints, in order:

- **Determinism.**  No instrument reads a clock; histogram bucket edges
  are a pure function of ``(start, factor, count)``; snapshots carry no
  timestamps.  The module sits inside the reprolint determinism rule's
  scope (``repro/obs/``).
- **Mergeability.**  :class:`RegistrySnapshot` values add pointwise
  (:func:`merge_snapshots`), so per-worker registries aggregate into
  fleet totals without shared-lock contention on the hot path.
- **Bounded labels.**  Each metric name admits at most
  ``label_cardinality`` distinct label sets; overflow routes to a
  sentinel series instead of growing without bound.
- **Hot-path cost.**  :class:`RelaxedCounter` is lockless and may
  undercount under concurrent increments — the same contract the kernel
  counters always had.  Strict instruments take a lock on every access,
  including reads.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterable, Union

from repro.analysis.debuglock import make_lock

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LabelPairs",
    "MetricsRegistry",
    "OVERFLOW_LABELS",
    "RegistrySnapshot",
    "RelaxedCounter",
    "default_registry",
    "log_bucket_edges",
    "merge_snapshots",
]

LabelPairs = tuple[tuple[str, str], ...]
"""Canonical label form: ``(key, value)`` pairs sorted by key."""

OVERFLOW_LABELS: LabelPairs = (("overflow", "cardinality"),)
"""Sentinel label set that absorbs series past the cardinality cap."""


def log_bucket_edges(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """Deterministic log-spaced bucket upper bounds.

    ``edges[i] = start * factor**i`` — a pure function of its inputs,
    so two processes configured alike produce bitwise-identical edges
    and their histogram snapshots merge without translation.
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


DEFAULT_LATENCY_EDGES = log_bucket_edges(1e-4, 2.0, 18)
"""0.1 ms to ~13 s in doubling buckets — covers the serve latency range."""


class _Switch:
    """A shared on/off flag instruments consult before recording.

    Deliberately lock-free: toggling races with in-flight increments,
    and either order is acceptable (the toggle is a coarse runtime
    control, not a synchronization point).
    """

    __slots__ = ("on",)

    def __init__(self, on: bool = True) -> None:
        self.on = on


class Counter:
    """A strict monotonic counter: locked on increment *and* read."""

    def __init__(self, switch: _Switch) -> None:
        self._switch = switch
        self._lock = make_lock("Counter._lock")
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        if not self._switch.on:
            return
        with self._lock:
            self._value += amount

    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter (tests and per-phase benchmarks only)."""
        with self._lock:
            self._value = 0


class RelaxedCounter:
    """A lockless counter for hot paths; may undercount under races.

    Mirrors the long-standing ``KernelCounters`` contract: increments
    from concurrent threads can interleave and lose updates, which is
    acceptable for perf telemetry and rules out any lock cost in the
    inner verification loops.
    """

    __slots__ = ("_switch", "_value")

    def __init__(self, switch: _Switch) -> None:
        self._switch = switch
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` without locking (best-effort under threads)."""
        if self._switch.on:
            self._value += amount

    def value(self) -> int:
        """The current (best-effort) count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (tests and per-phase benchmarks only)."""
        self._value = 0


class Gauge:
    """A strict point-in-time value; ``set`` overwrites, ``add`` adjusts."""

    def __init__(self, switch: _Switch) -> None:
        self._switch = switch
        self._lock = make_lock("Gauge._lock")
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        if not self._switch.on:
            return
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (either sign)."""
        if not self._switch.on:
            return
        with self._lock:
            self._value += delta

    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with inclusive ``le`` upper bounds.

    ``counts`` has ``len(edges) + 1`` cells; the last is the +Inf tail.
    An observation lands in the first bucket whose edge is >= the
    value (``bisect_left``), matching Prometheus ``le`` semantics so
    the exposition layer renders cumulative buckets directly.
    """

    def __init__(self, switch: _Switch, edges: tuple[float, ...]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        self._switch = switch
        self._lock = make_lock("Histogram._lock")
        self.edges = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self._switch.on:
            return
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> "HistogramSnapshot":
        """A consistent point-in-time copy."""
        with self._lock:
            return HistogramSnapshot(
                edges=self.edges,
                counts=tuple(self._counts),
                sum=self._sum,
                count=self._count,
            )

    def reset(self) -> None:
        """Zero the histogram (tests and per-phase benchmarks only)."""
        with self._lock:
            self._counts = [0] * (len(self.edges) + 1)
            self._sum = 0.0
            self._count = 0


@dataclass(frozen=True, eq=False)
class HistogramSnapshot:
    """Immutable histogram state: edges, per-bucket counts, sum, count."""

    edges: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Pointwise sum; edges must match exactly."""
        if self.edges != other.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges: "
                f"{self.edges} vs {other.edges}"
            )
        return HistogramSnapshot(
            edges=self.edges,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )

    def quantile(self, q: float) -> float:
        """Bucket-resolved quantile estimate (upper edge of the bucket).

        Returns the last finite edge for observations in the +Inf tail
        and ``0.0`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.edges):
                    return self.edges[index]
                return self.edges[-1]
        return self.edges[-1]


SeriesKey = tuple[str, LabelPairs]
"""Snapshot dictionary key: ``(metric name, sorted label pairs)``."""


@dataclass(frozen=True, eq=False)
class RegistrySnapshot:
    """A mergeable point-in-time copy of every instrument in a registry."""

    counters: dict[SeriesKey, int]
    gauges: dict[SeriesKey, float]
    histograms: dict[SeriesKey, HistogramSnapshot]

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Pointwise combination of two snapshots.

        Counters and histogram buckets add; gauges take the pointwise
        maximum, because the same point-in-time value (a WAL tail
        length, a queue depth) may be sampled into several per-worker
        registries and summing copies would multiply it.  Both rules
        are associative, so any fold order yields the same totals;
        float histogram sums are subject to addition-order rounding
        like any float accumulation.
        """
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, gauge_value in other.gauges.items():
            mine = gauges.get(key)
            gauges[key] = (
                gauge_value if mine is None else max(mine, gauge_value)
            )
        histograms = dict(self.histograms)
        for key, hist in other.histograms.items():
            mine = histograms.get(key)
            histograms[key] = hist if mine is None else mine.merge(hist)
        return RegistrySnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )


def merge_snapshots(
    snapshots: Iterable[RegistrySnapshot],
) -> RegistrySnapshot:
    """Fold any number of snapshots into one (empty input -> empty)."""
    merged = RegistrySnapshot(counters={}, gauges={}, histograms={})
    for snap in snapshots:
        merged = merged.merge(snap)
    return merged


_Instrument = Union[Counter, RelaxedCounter, Gauge, Histogram]

CollectorFn = Callable[["MetricsRegistry"], None]
"""A callback that refreshes gauges just before a snapshot is taken."""


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``.

    Each distinct metric name maps to one instrument kind; asking for
    the same name with a different kind (or different histogram edges)
    raises ``ValueError`` — silent kind drift is how aggregate and
    per-query numbers come to disagree.

    Label sets per name are capped at ``label_cardinality``; requests
    past the cap all share the :data:`OVERFLOW_LABELS` sentinel series
    and bump the internal ``repro_labels_overflow_total`` counter, so a
    label leak (e.g. a request id smuggled into a label) degrades to a
    visible lump instead of unbounded memory.
    """

    def __init__(
        self, *, enabled: bool = True, label_cardinality: int = 64
    ) -> None:
        if label_cardinality < 1:
            raise ValueError(
                f"label_cardinality must be >= 1, got {label_cardinality}"
            )
        self._switch = _Switch(enabled)
        self._lock = make_lock("MetricsRegistry._lock")
        self._label_cardinality = label_cardinality
        self._instruments: dict[SeriesKey, _Instrument] = {}
        self._kinds: dict[str, str] = {}
        self._edges: dict[str, tuple[float, ...]] = {}
        self._series_per_name: dict[str, int] = {}
        self._collectors: list[CollectorFn] = []
        self._overflow = Counter(self._switch)

    # -- enablement ----------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether instruments currently record."""
        return self._switch.on

    def set_enabled(self, enabled: bool) -> None:
        """Toggle recording at runtime (existing handles stay valid)."""
        self._switch.on = enabled

    # -- instrument factories ------------------------------------------

    def counter(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        *,
        relaxed: bool = False,
    ) -> Counter | RelaxedCounter:
        """Get or create a counter series.

        ``relaxed=True`` yields a lockless counter that may undercount
        under concurrent increments; the strictness choice is fixed by
        the first caller for a given name.
        """
        kind = "relaxed_counter" if relaxed else "counter"

        def build() -> _Instrument:
            if relaxed:
                return RelaxedCounter(self._switch)
            return Counter(self._switch)

        instrument = self._get_or_create(name, labels, kind, build)
        assert isinstance(instrument, (Counter, RelaxedCounter))
        return instrument

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        """Get or create a gauge series."""
        instrument = self._get_or_create(
            name, labels, "gauge", lambda: Gauge(self._switch)
        )
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        *,
        edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES,
    ) -> Histogram:
        """Get or create a histogram series with the given bucket edges."""
        instrument = self._get_or_create(
            name, labels, "histogram", lambda: Histogram(self._switch, edges),
            edges=edges,
        )
        assert isinstance(instrument, Histogram)
        return instrument

    def _get_or_create(
        self,
        name: str,
        labels: dict[str, str] | None,
        kind: str,
        build: Callable[[], _Instrument],
        edges: tuple[float, ...] | None = None,
    ) -> _Instrument:
        """Look up or register one series, enforcing kind and cardinality."""
        if not name:
            raise ValueError("metric name must be non-empty")
        pairs: LabelPairs = (
            tuple(sorted(labels.items())) if labels else ()
        )
        overflowed = False
        with self._lock:
            known_kind = self._kinds.get(name)
            if known_kind is not None and known_kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {known_kind}, requested {kind}"
                )
            if edges is not None:
                known_edges = self._edges.get(name)
                if known_edges is not None and known_edges != edges:
                    raise ValueError(
                        f"histogram {name!r} already registered with edges "
                        f"{known_edges}, requested {edges}"
                    )
                self._edges[name] = edges
            key = (name, pairs)
            instrument = self._instruments.get(key)
            if instrument is None and pairs != OVERFLOW_LABELS:
                if self._series_per_name.get(name, 0) >= self._label_cardinality:
                    overflowed = True
                    key = (name, OVERFLOW_LABELS)
                    instrument = self._instruments.get(key)
            if instrument is None:
                instrument = build()
                self._instruments[key] = instrument
                self._kinds[name] = kind
                self._series_per_name[name] = (
                    self._series_per_name.get(name, 0) + 1
                )
        if overflowed:
            # Outside the registry lock: the overflow counter has its
            # own lock and must not nest under the registry's.
            self._overflow.inc()
        return instrument

    # -- collectors ----------------------------------------------------

    def register_collector(self, collector: CollectorFn) -> None:
        """Add a callback run (outside the lock) before each snapshot."""
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(self, collector: CollectorFn) -> None:
        """Remove a previously registered collector (missing is a no-op)."""
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    # -- reading -------------------------------------------------------

    def snapshot(self) -> RegistrySnapshot:
        """Run collectors, then copy every instrument's current state."""
        with self._lock:
            collectors = list(self._collectors)
        # Collectors set gauges through normal instrument calls; running
        # them under the registry lock would deadlock on get-or-create.
        for collector in collectors:
            collector(self)
        with self._lock:
            items = list(self._instruments.items())
        counters: dict[SeriesKey, int] = {}
        gauges: dict[SeriesKey, float] = {}
        histograms: dict[SeriesKey, HistogramSnapshot] = {}
        for key, instrument in items:
            if isinstance(instrument, (Counter, RelaxedCounter)):
                counters[key] = instrument.value()
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value()
            else:
                histograms[key] = instrument.snapshot()
        overflow = self._overflow.value()
        if overflow:
            counters[("repro_labels_overflow_total", ())] = overflow
        return RegistrySnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def counter_values(self, name: str) -> dict[LabelPairs, int]:
        """All series of one counter name as ``{label pairs: value}``."""
        with self._lock:
            items = [
                (key[1], instrument)
                for key, instrument in self._instruments.items()
                if key[0] == name
                and isinstance(instrument, (Counter, RelaxedCounter))
            ]
        return {pairs: instrument.value() for pairs, instrument in items}


_DEFAULT: MetricsRegistry | None = None
_DEFAULT_LOCK = make_lock("registry._DEFAULT_LOCK")


def default_registry() -> MetricsRegistry:
    """The process-global registry (kernel and FMS counters live here).

    Honors ``REPRO_METRICS=0`` at first touch: the registry is created
    disabled, so module-level hot-path counters cost one attribute read
    per increment and nothing else.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            enabled = os.environ.get("REPRO_METRICS", "1") != "0"
            _DEFAULT = MetricsRegistry(enabled=enabled)
        return _DEFAULT
