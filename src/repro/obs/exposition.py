"""Snapshot rendering: the JSON wire form and Prometheus text format.

:func:`snapshot_as_dict` flattens a :class:`RegistrySnapshot` into a
deterministic, JSON-ready structure (sorted by name then label pairs)
that the serve layer ships over the ``stats`` wire op.
:func:`render_prometheus` renders that *dict* form — not the snapshot
object — so the CLI can produce Prometheus text from a response it
received over the wire without reconstructing instrument state.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.registry import RegistrySnapshot

__all__ = ["render_prometheus", "snapshot_as_dict"]


def snapshot_as_dict(snapshot: RegistrySnapshot) -> dict[str, Any]:
    """Flatten a snapshot into sorted, JSON-ready series lists."""
    counters = [
        {"name": name, "labels": dict(pairs), "value": value}
        for (name, pairs), value in sorted(snapshot.counters.items())
    ]
    gauges = [
        {"name": name, "labels": dict(pairs), "value": value}
        for (name, pairs), value in sorted(snapshot.gauges.items())
    ]
    histograms = [
        {
            "name": name,
            "labels": dict(pairs),
            "edges": list(hist.edges),
            "counts": list(hist.counts),
            "sum": hist.sum,
            "count": hist.count,
        }
        for (name, pairs), hist in sorted(snapshot.histograms.items())
    ]
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(labels: Mapping[str, Any]) -> str:
    """``{k="v",...}`` with sorted keys, or the empty string."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(
    labels: Mapping[str, Any], extra: Mapping[str, Any]
) -> dict[str, Any]:
    """Series labels plus synthetic ones (``le`` for histogram buckets)."""
    merged = dict(labels)
    merged.update(extra)
    return merged


def render_prometheus(metrics: Mapping[str, Any]) -> str:
    """Render the :func:`snapshot_as_dict` form as Prometheus text.

    Histograms expose cumulative ``_bucket{le=...}`` samples with a
    ``+Inf`` tail plus ``_sum`` and ``_count``, matching the standard
    client-library output so existing scrapers parse it unchanged.
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for series in metrics.get("counters", []):
        name = series["name"]
        type_line(name, "counter")
        lines.append(
            f"{name}{_label_block(series.get('labels', {}))} "
            f"{_format_value(series['value'])}"
        )
    for series in metrics.get("gauges", []):
        name = series["name"]
        type_line(name, "gauge")
        lines.append(
            f"{name}{_label_block(series.get('labels', {}))} "
            f"{_format_value(series['value'])}"
        )
    for series in metrics.get("histograms", []):
        name = series["name"]
        labels = series.get("labels", {})
        type_line(name, "histogram")
        cumulative = 0
        for edge, count in zip(series["edges"], series["counts"]):
            cumulative += count
            block = _label_block(_merge_labels(labels, {"le": repr(float(edge))}))
            lines.append(f"{name}_bucket{block} {cumulative}")
        cumulative += series["counts"][-1]
        block = _label_block(_merge_labels(labels, {"le": "+Inf"}))
        lines.append(f"{name}_bucket{block} {cumulative}")
        lines.append(
            f"{name}_sum{_label_block(labels)} "
            f"{_format_value(series['sum'])}"
        )
        lines.append(f"{name}_count{_label_block(labels)} {series['count']}")
    return "\n".join(lines) + "\n" if lines else ""
