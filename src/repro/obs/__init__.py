"""Observability subsystem: metrics registry, tracing, exposition.

Dependency-free telemetry for the matching engine.  The registry
(:mod:`repro.obs.registry`) is the single accumulation point for
counters, gauges, and log-bucket histograms; the tracer
(:mod:`repro.obs.tracing`) captures per-request span trees with a
slow-query log; the exposition layer (:mod:`repro.obs.exposition`)
renders registry snapshots as JSON and Prometheus text.

See docs/INTERNALS.md §8 for the metric catalog and span taxonomy.
"""

from repro.obs.exposition import render_prometheus, snapshot_as_dict
from repro.obs.registry import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
    RelaxedCounter,
    default_registry,
    log_bucket_edges,
    merge_snapshots,
)
from repro.obs.tracing import Span, Tracer, trace_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "RelaxedCounter",
    "Span",
    "Tracer",
    "default_registry",
    "log_bucket_edges",
    "merge_snapshots",
    "render_prometheus",
    "snapshot_as_dict",
    "trace_span",
]
