"""Embedded relational storage engine.

This subpackage is the substrate the fuzzy-match system runs on.  The paper
implements its algorithms "over standard database systems without assuming
the persistence of complex data structures": the ETI is a plain relation with
a clustered B+-tree index, built through a sort-based SQL query.  This engine
provides exactly those primitives in pure Python:

- :mod:`repro.db.page` / :mod:`repro.db.pager`: slotted pages and a buffer
  pool with LRU eviction and I/O accounting.
- :mod:`repro.db.heap`: heap files of encoded rows addressed by record ids.
- :mod:`repro.db.btree`: a B+-tree supporting point and range lookups and
  sorted bulk-loading (used for the ETI clustered index and the reference
  relation's Tid index).
- :mod:`repro.db.exsort`: external merge sort (run generation + k-way merge),
  the workhorse behind the paper's ETI-query (``ORDER BY QGram, Coordinate,
  Column, Tid``).
- :mod:`repro.db.query`: minimal iterator-style relational operators
  (sequential scan, sort, group-aggregate, index lookup).
- :mod:`repro.db.relation` / :mod:`repro.db.database`: schema-carrying
  relations and a tiny catalog, the "data warehouse" of the paper.
"""

from repro.db.btree import BPlusTree
from repro.db.database import Database
from repro.db.errors import (
    BufferPoolError,
    CrashError,
    DatabaseError,
    DuplicateKeyError,
    PageCorruptionError,
    PageFullError,
    RecordNotFoundError,
    RelationError,
    RetryExhaustedError,
    SchemaError,
    TransientIOError,
    WalError,
)
from repro.db.exsort import external_sort
from repro.db.faults import (
    CrashableStorage,
    CrashableWalFile,
    CrashPoint,
    FaultConfig,
    FaultInjector,
    FaultStats,
)
from repro.db.heap import HeapFile, RecordId
from repro.db.page import Page, PAGE_SIZE
from repro.db.pager import (
    BufferPool,
    FileStorage,
    InMemoryStorage,
    page_checksum,
)
from repro.db.relation import Relation
from repro.db.types import Column, ColumnType, Schema
from repro.db.wal import RecoveryInfo, WalFile, WalStats, WalStorage

# Last on purpose: RetryPolicy now lives in repro.core.resilience (it backs
# both storage retries and the serve client), and importing repro.core pulls
# in modules that import repro.db.database — which must already be complete.
from repro.core.resilience import RetryPolicy

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BufferPoolError",
    "Column",
    "ColumnType",
    "CrashableStorage",
    "CrashableWalFile",
    "CrashError",
    "CrashPoint",
    "Database",
    "DatabaseError",
    "DuplicateKeyError",
    "external_sort",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FileStorage",
    "HeapFile",
    "InMemoryStorage",
    "Page",
    "PAGE_SIZE",
    "page_checksum",
    "PageCorruptionError",
    "PageFullError",
    "RecordId",
    "RecordNotFoundError",
    "RecoveryInfo",
    "Relation",
    "RelationError",
    "RetryExhaustedError",
    "RetryPolicy",
    "Schema",
    "SchemaError",
    "TransientIOError",
    "WalError",
    "WalFile",
    "WalStats",
    "WalStorage",
]
