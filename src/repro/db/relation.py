"""Relations: schema + heap storage + secondary indexes.

A :class:`Relation` stores encoded rows in a heap file and maintains any
number of named B+-tree indexes over column subsets.  This is the shape the
paper requires: the reference relation indexed on ``Tid`` and the ETI
relation with its clustered index on ``[QGram, Coordinate, Column]``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.db.btree import BPlusTree
from repro.db.errors import DuplicateKeyError, RecordNotFoundError, RelationError
from repro.db.heap import HeapFile, RecordId
from repro.db.pager import BufferPool
from repro.db.types import Row, Schema


class _IndexSpec:
    __slots__ = ("name", "positions", "tree", "unique")

    def __init__(self, name: str, positions: tuple[int, ...], unique: bool) -> None:
        self.name = name
        self.positions = positions
        self.unique = unique
        self.tree = BPlusTree(unique=unique)

    def key_of(self, row: Row) -> Any:
        if len(self.positions) == 1:
            return row[self.positions[0]]
        return tuple(row[p] for p in self.positions)


class Relation:
    """A named, schema-checked collection of rows with optional indexes."""

    def __init__(self, name: str, schema: Schema, pool: BufferPool) -> None:
        self.name = name
        self.schema = schema
        self.heap = HeapFile(pool)
        self._indexes: dict[str, _IndexSpec] = {}

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def create_index(
        self, index_name: str, columns: Sequence[str], unique: bool = False
    ) -> None:
        """Create a B+-tree index on ``columns``, indexing existing rows."""
        if index_name in self._indexes:
            raise RelationError(f"index {index_name!r} already exists on {self.name}")
        positions = tuple(self.schema.position(c) for c in columns)
        spec = _IndexSpec(index_name, positions, unique)
        self._indexes[index_name] = spec
        for rid, row in self._scan_decoded():
            spec.tree.insert(spec.key_of(row), rid)

    def index_names(self) -> tuple[str, ...]:
        """Names of the relation's indexes."""
        return tuple(self._indexes)

    def _index(self, index_name: str) -> _IndexSpec:
        try:
            return self._indexes[index_name]
        except KeyError:
            raise RelationError(
                f"no index {index_name!r} on relation {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> RecordId:
        """Validate, store, and index ``row``; return its record id.

        Unique constraints are checked before anything is written, so a
        rejected insert leaves no orphan heap row behind.
        """
        validated = self.schema.validate(row)
        for spec in self._indexes.values():
            if spec.unique and spec.key_of(validated) in spec.tree:
                raise DuplicateKeyError(
                    f"duplicate key {spec.key_of(validated)!r} for index "
                    f"{spec.name!r} on {self.name!r}"
                )
        rid = self.heap.insert(self.schema.encode(validated))
        for spec in self._indexes.values():
            spec.tree.insert(spec.key_of(validated), rid)
        return rid

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows stored."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def fetch(self, rid: RecordId) -> Row:
        """Fetch the row stored at ``rid``."""
        return self.schema.decode(self.heap.read(rid))

    def delete(self, rid: RecordId) -> None:
        """Delete the row at ``rid`` from the heap and all indexes."""
        row = self.fetch(rid)
        self.heap.delete(rid)
        for spec in self._indexes.values():
            spec.tree.delete(spec.key_of(row), rid)

    def update(self, rid: RecordId, row: Sequence[Any]) -> RecordId:
        """Replace the row at ``rid``; returns the row's new record id.

        Implemented as delete + insert (the new version may not fit in the
        old slot), with all indexes kept consistent.  Callers holding the
        old rid must switch to the returned one.
        """
        validated = self.schema.validate(row)
        old_row = self.fetch(rid)
        for spec in self._indexes.values():
            new_key = spec.key_of(validated)
            if spec.unique and new_key != spec.key_of(old_row) and new_key in spec.tree:
                raise DuplicateKeyError(
                    f"duplicate key {new_key!r} for index {spec.name!r} "
                    f"on {self.name!r}"
                )
        self.heap.delete(rid)
        new_rid = self.heap.insert(self.schema.encode(validated))
        for spec in self._indexes.values():
            spec.tree.delete(spec.key_of(old_row), rid)
            spec.tree.insert(spec.key_of(validated), new_rid)
        return new_rid

    def find_rid(self, index_name: str, key: Any) -> RecordId:
        """Record id of the single row whose index key equals ``key``."""
        spec = self._index(index_name)
        rid = spec.tree.get(key)
        if rid is None:
            raise RecordNotFoundError(
                f"key {key!r} not found in index {index_name!r} of {self.name!r}"
            )
        return rid

    def scan(self) -> Iterator[Row]:
        """Yield every row in heap order."""
        for _, row in self._scan_decoded():
            yield row

    def scan_with_rids(self) -> Iterator[tuple[RecordId, Row]]:
        """Yield ``(rid, row)`` pairs in heap order."""
        return self._scan_decoded()

    def _scan_decoded(self) -> Iterator[tuple[RecordId, Row]]:
        for rid, record in self.heap.scan():
            yield rid, self.schema.decode(record)

    # ------------------------------------------------------------------
    # Index access paths
    # ------------------------------------------------------------------

    def index_lookup(self, index_name: str, key: Any) -> list[Row]:
        """Exact-match lookup: all rows whose index key equals ``key``."""
        spec = self._index(index_name)
        return [self.fetch(rid) for rid in spec.tree.search(key)]

    def index_get(self, index_name: str, key: Any) -> Row:
        """Exact-match lookup expecting one row; raises if absent."""
        spec = self._index(index_name)
        rid = spec.tree.get(key)
        if rid is None:
            raise RecordNotFoundError(
                f"key {key!r} not found in index {index_name!r} of {self.name!r}"
            )
        return self.fetch(rid)

    def index_range(
        self, index_name: str, lo: Any = None, hi: Any = None
    ) -> Iterator[tuple[Any, Row]]:
        """Yield ``(key, row)`` for keys in ``[lo, hi)`` in key order."""
        spec = self._index(index_name)
        for key, rid in spec.tree.range(lo, hi):
            yield key, self.fetch(rid)

    def index_stats(self, index_name: str) -> dict[str, int]:
        """Entry count and height of one index."""
        spec = self._index(index_name)
        return {"entries": len(spec.tree), "height": spec.tree.height}
