"""Deterministic fault injection for the storage stack.

:class:`FaultInjector` wraps any page-storage backend and injects the
failure modes an online matching service actually meets in production:

- **transient I/O errors** on read or write (:class:`TransientIOError`),
  the kind a retry with backoff absorbs;
- **read corruption**: a bit flip in the bytes *returned* by one read —
  the stored page stays intact, so a re-read after a checksum failure
  recovers;
- **torn writes**: only a prefix of the page reaches storage, leaving
  persistent corruption that a checksum must catch and no retry can fix;
- **latency**: a seeded-random sleep (up to a configurable bound) per
  faulted operation, for exercising query deadlines.

Everything is driven by one seeded :class:`random.Random`, so a chaos run
is exactly reproducible from ``(workload, seed)``.  The injector starts
*disarmed* — build your relations cleanly, then :meth:`arm` it for the
phase under test.

This module also hosts the **crash-point harness** used by the durability
tests: a :class:`CrashPoint` counts durable operations (page writes,
log appends, fsyncs) across a :class:`CrashableStorage` +
:class:`CrashableWalFile` pair and kills the "process" — tearing the
in-flight write at a seeded cut and raising
:class:`~repro.db.errors.CrashError` — after a chosen count.  Sweeping
that count over a workload visits every distinct on-disk state a real
crash could leave behind.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.db.errors import CrashError, TransientIOError
from repro.db.page import PAGE_SIZE

if TYPE_CHECKING:
    from repro.db.pager import StorageBackend
    from repro.db.wal import WalFileLike


@dataclass(frozen=True)
class FaultConfig:
    """Per-operation fault probabilities (all default to "never").

    Rates are independent per operation; ``max_faults`` caps the total
    number of injected faults (of any kind) so a sweep can bound how much
    damage one run takes.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    read_corruption_rate: float = 0.0
    torn_write_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "read_corruption_rate",
            "torn_write_rate",
            "latency_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")


@dataclass
class FaultStats:
    """How many faults of each kind the injector has fired."""

    read_errors: int = 0
    write_errors: int = 0
    read_corruptions: int = 0
    torn_writes: int = 0
    latency_injections: int = 0

    @property
    def total(self) -> int:
        return (
            self.read_errors
            + self.write_errors
            + self.read_corruptions
            + self.torn_writes
            + self.latency_injections
        )

    def reset(self) -> None:
        """Zero every counter (start of a fresh chaos run)."""
        self.read_errors = 0
        self.write_errors = 0
        self.read_corruptions = 0
        self.torn_writes = 0
        self.latency_injections = 0


class FaultInjector:
    """A storage wrapper that injects seeded, reproducible faults.

    Implements the same protocol as
    :class:`~repro.db.pager.InMemoryStorage` / ``FileStorage`` and can
    wrap either.  ``allocate`` and ``close`` are never faulted: chaos
    tests target the steady-state read/write path, not setup/teardown.
    """

    def __init__(
        self,
        inner: "StorageBackend",
        config: FaultConfig | None = None,
        seed: int = 0,
        armed: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else FaultConfig()
        self.stats = FaultStats()
        self.armed = armed
        self._rng = random.Random(seed)
        self._sleep = sleep

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    def arm(self, seed: int | None = None, config: FaultConfig | None = None) -> None:
        """Start injecting; optionally reseed/reconfigure for a new run."""
        if seed is not None:
            self._rng = random.Random(seed)
        if config is not None:
            self.config = config
        self.armed = True

    def disarm(self) -> None:
        """Stop injecting (the wrapped storage keeps any torn pages)."""
        self.armed = False

    def _fire(self, rate: float) -> bool:
        if not self.armed or rate <= 0.0:
            return False
        if (
            self.config.max_faults is not None
            and self.stats.total >= self.config.max_faults
        ):
            return False
        return self._rng.random() < rate

    def _maybe_sleep(self) -> None:
        if self._fire(self.config.latency_rate):
            self.stats.latency_injections += 1
            # Jitter from the seeded RNG (latency_seconds is the upper
            # bound), so chaos runs with latency stay reproducible from
            # (workload, seed) like every other fault kind.
            self._sleep(self.config.latency_seconds * self._rng.random())

    def allocate(self) -> int:
        """Allocate on the wrapped storage (never faulted)."""
        return self.inner.allocate()

    def read(self, page_no: int) -> bytes:
        """Read a page, possibly delayed, failed, or corrupted in flight."""
        self._maybe_sleep()
        if self._fire(self.config.read_error_rate):
            self.stats.read_errors += 1
            raise TransientIOError(f"injected read fault on page {page_no}")
        data = self.inner.read(page_no)
        if self._fire(self.config.read_corruption_rate):
            self.stats.read_corruptions += 1
            corrupted = bytearray(data)
            position = self._rng.randrange(len(corrupted))
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        return data

    def write(self, page_no: int, data: bytes) -> None:
        """Write a page, possibly delayed, failed, or torn mid-page."""
        self._maybe_sleep()
        if self._fire(self.config.write_error_rate):
            self.stats.write_errors += 1
            # Transient write faults fail *before* touching storage, so a
            # retry writes the intact page.
            raise TransientIOError(f"injected write fault on page {page_no}")
        if self._fire(self.config.torn_write_rate):
            self.stats.torn_writes += 1
            torn = bytearray(data)
            cut = self._rng.randrange(1, len(torn))
            torn[cut:] = bytes(len(torn) - cut)  # tail never hit the disk
            self.inner.write(page_no, bytes(torn))
            return
        self.inner.write(page_no, data)

    def sync(self) -> None:
        """Sync the wrapped storage (never faulted)."""
        self.inner.sync()

    def close(self) -> None:
        """Close the wrapped storage (never faulted)."""
        self.inner.close()


class CrashPoint:
    """A countdown to simulated process death, shared across wrappers.

    The first ``crash_after`` durable operations (page writes and
    allocations, log appends, truncates, fsyncs) succeed; the next one
    *tears* — only a seeded-random prefix of its bytes reaches storage —
    and raises :class:`~repro.db.errors.CrashError`.  Every operation
    after that raises too: a dead process issues no further I/O.

    One :class:`CrashPoint` is shared by the :class:`CrashableStorage`
    and :class:`CrashableWalFile` wrapping a database's two files, so the
    count covers the *interleaved* durable-op sequence — exactly the
    sequence a real crash would cut at an arbitrary point.
    """

    def __init__(self, crash_after: int, seed: int = 0) -> None:
        if crash_after < 0:
            raise ValueError("crash_after must be >= 0")
        self.crash_after = crash_after
        self.ops = 0
        self.crashed = False
        self._rng = random.Random(seed)

    def check(self) -> None:
        """Raise :class:`CrashError` if the process has already died."""
        if self.crashed:
            raise CrashError("simulated process is dead")

    def count(self) -> bool:
        """Account one durable op; True means this op is the fatal one."""
        self.check()
        if self.ops >= self.crash_after:
            self.crashed = True
            return True
        self.ops += 1
        return False

    def cut(self, length: int) -> int:
        """Seeded tear position for a fatal write of ``length`` bytes."""
        return self._rng.randrange(length) if length > 0 else 0


class CrashableStorage:
    """A page-storage wrapper that dies at its :class:`CrashPoint`.

    A fatal page write leaves a torn page — the seeded prefix of the new
    image, zero-padded to a full page (the tail "never hit the disk").  A
    fatal allocate or sync crashes before doing anything.  Reads on a
    dead process raise; ``close`` never crashes (tests must clean up).
    """

    def __init__(self, inner: "StorageBackend", crash_point: CrashPoint) -> None:
        self.inner = inner
        self.crash_point = crash_point

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    def allocate(self) -> int:
        """Extend the file by one page, or die without extending it."""
        if self.crash_point.count():
            raise CrashError("crashed before page allocation")
        return self.inner.allocate()

    def read(self, page_no: int) -> bytes:
        """Read a page (a dead process cannot)."""
        self.crash_point.check()
        return self.inner.read(page_no)

    def write(self, page_no: int, data: bytes) -> None:
        """Write a page, or die leaving a zero-padded torn prefix."""
        if self.crash_point.count():
            cut = self.crash_point.cut(len(data))
            torn = data[:cut] + bytes(len(data) - cut)
            self.inner.write(page_no, torn[:PAGE_SIZE])
            raise CrashError(f"crashed tearing page {page_no} at byte {cut}")
        self.inner.write(page_no, data)

    def sync(self) -> None:
        """fsync the inner storage, or die before it happens."""
        if self.crash_point.count():
            raise CrashError("crashed before page-file fsync")
        self.inner.sync()

    def close(self) -> None:
        """Close the wrapped storage (never crashes: tests must clean up)."""
        self.inner.close()


class CrashableWalFile:
    """A log-file wrapper that dies at its :class:`CrashPoint`.

    A fatal append leaves only a seeded prefix of the record in the log
    (recovery must detect and truncate the torn tail).  A fatal truncate
    or sync crashes before taking effect.
    """

    def __init__(self, inner: "WalFileLike", crash_point: CrashPoint) -> None:
        self.inner = inner
        self.crash_point = crash_point

    @property
    def size(self) -> int:
        return self.inner.size

    def append(self, data: bytes) -> int:
        """Append bytes, or die leaving only a prefix of them."""
        if self.crash_point.count():
            cut = self.crash_point.cut(len(data))
            self.inner.append(data[:cut])
            raise CrashError(f"crashed tearing log append at byte {cut}")
        return self.inner.append(data)

    def pread(self, offset: int, length: int) -> bytes:
        """Read log bytes (a dead process cannot)."""
        self.crash_point.check()
        return self.inner.pread(offset, length)

    def sync(self) -> None:
        """fsync the log, or die before it happens."""
        if self.crash_point.count():
            raise CrashError("crashed before log fsync")
        self.inner.sync()

    def truncate(self, size: int) -> None:
        """Truncate the log, or die before it happens."""
        if self.crash_point.count():
            raise CrashError("crashed before log truncate")
        self.inner.truncate(size)

    def close(self) -> None:
        """Close the wrapped log file (never crashes: tests must clean up)."""
        self.inner.close()
