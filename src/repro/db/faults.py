"""Deterministic fault injection for the storage stack.

:class:`FaultInjector` wraps any page-storage backend and injects the
failure modes an online matching service actually meets in production:

- **transient I/O errors** on read or write (:class:`TransientIOError`),
  the kind a retry with backoff absorbs;
- **read corruption**: a bit flip in the bytes *returned* by one read —
  the stored page stays intact, so a re-read after a checksum failure
  recovers;
- **torn writes**: only a prefix of the page reaches storage, leaving
  persistent corruption that a checksum must catch and no retry can fix;
- **latency**: a configurable sleep per faulted operation, for exercising
  query deadlines.

Everything is driven by one seeded :class:`random.Random`, so a chaos run
is exactly reproducible from ``(workload, seed)``.  The injector starts
*disarmed* — build your relations cleanly, then :meth:`arm` it for the
phase under test.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.db.errors import TransientIOError

if TYPE_CHECKING:
    from repro.db.pager import StorageBackend


@dataclass(frozen=True)
class FaultConfig:
    """Per-operation fault probabilities (all default to "never").

    Rates are independent per operation; ``max_faults`` caps the total
    number of injected faults (of any kind) so a sweep can bound how much
    damage one run takes.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    read_corruption_rate: float = 0.0
    torn_write_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "read_corruption_rate",
            "torn_write_rate",
            "latency_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")


@dataclass
class FaultStats:
    """How many faults of each kind the injector has fired."""

    read_errors: int = 0
    write_errors: int = 0
    read_corruptions: int = 0
    torn_writes: int = 0
    latency_injections: int = 0

    @property
    def total(self) -> int:
        return (
            self.read_errors
            + self.write_errors
            + self.read_corruptions
            + self.torn_writes
            + self.latency_injections
        )

    def reset(self) -> None:
        """Zero every counter (start of a fresh chaos run)."""
        self.read_errors = 0
        self.write_errors = 0
        self.read_corruptions = 0
        self.torn_writes = 0
        self.latency_injections = 0


class FaultInjector:
    """A storage wrapper that injects seeded, reproducible faults.

    Implements the same protocol as
    :class:`~repro.db.pager.InMemoryStorage` / ``FileStorage`` and can
    wrap either.  ``allocate`` and ``close`` are never faulted: chaos
    tests target the steady-state read/write path, not setup/teardown.
    """

    def __init__(
        self,
        inner: "StorageBackend",
        config: FaultConfig | None = None,
        seed: int = 0,
        armed: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else FaultConfig()
        self.stats = FaultStats()
        self.armed = armed
        self._rng = random.Random(seed)
        self._sleep = sleep

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    def arm(self, seed: int | None = None, config: FaultConfig | None = None) -> None:
        """Start injecting; optionally reseed/reconfigure for a new run."""
        if seed is not None:
            self._rng = random.Random(seed)
        if config is not None:
            self.config = config
        self.armed = True

    def disarm(self) -> None:
        """Stop injecting (the wrapped storage keeps any torn pages)."""
        self.armed = False

    def _fire(self, rate: float) -> bool:
        if not self.armed or rate <= 0.0:
            return False
        if (
            self.config.max_faults is not None
            and self.stats.total >= self.config.max_faults
        ):
            return False
        return self._rng.random() < rate

    def _maybe_sleep(self) -> None:
        if self._fire(self.config.latency_rate):
            self.stats.latency_injections += 1
            self._sleep(self.config.latency_seconds)

    def allocate(self) -> int:
        """Allocate on the wrapped storage (never faulted)."""
        return self.inner.allocate()

    def read(self, page_no: int) -> bytes:
        """Read a page, possibly delayed, failed, or corrupted in flight."""
        self._maybe_sleep()
        if self._fire(self.config.read_error_rate):
            self.stats.read_errors += 1
            raise TransientIOError(f"injected read fault on page {page_no}")
        data = self.inner.read(page_no)
        if self._fire(self.config.read_corruption_rate):
            self.stats.read_corruptions += 1
            corrupted = bytearray(data)
            position = self._rng.randrange(len(corrupted))
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        return data

    def write(self, page_no: int, data: bytes) -> None:
        """Write a page, possibly delayed, failed, or torn mid-page."""
        self._maybe_sleep()
        if self._fire(self.config.write_error_rate):
            self.stats.write_errors += 1
            # Transient write faults fail *before* touching storage, so a
            # retry writes the intact page.
            raise TransientIOError(f"injected write fault on page {page_no}")
        if self._fire(self.config.torn_write_rate):
            self.stats.torn_writes += 1
            torn = bytearray(data)
            cut = self._rng.randrange(1, len(torn))
            torn[cut:] = bytes(len(torn) - cut)  # tail never hit the disk
            self.inner.write(page_no, bytes(torn))
            return
        self.inner.write(page_no, data)

    def close(self) -> None:
        """Close the wrapped storage (never faulted)."""
        self.inner.close()
