"""Storage backends and the buffer pool.

The buffer pool caches :class:`~repro.db.page.Page` objects over a storage
backend and evicts with LRU, flushing dirty pages on the way out.  It keeps
I/O counters so benchmarks can report logical vs. physical page accesses —
the currency the paper uses when arguing the ETI makes few lookups.

Callers must re-fetch pages through :meth:`BufferPool.get_page` for every
operation instead of holding ``Page`` references across calls; a page object
becomes stale once evicted.

Resilience (the online-service requirement the paper's §1 setting implies):

- Every physical write records the page's CRC32 in an in-memory ledger and
  every physical read of a ledgered page is verified against it; a mismatch
  is re-read once (to rule out a transient bus error) and then raised as
  :class:`~repro.db.errors.PageCorruptionError` naming the page — corrupt
  bytes never reach a caller silently.
- Transient storage faults (:class:`~repro.db.errors.TransientIOError`)
  are retried with exponential backoff under a configurable
  :class:`RetryPolicy`; exhaustion raises
  :class:`~repro.db.errors.RetryExhaustedError`.
"""

from __future__ import annotations

import os
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from repro.analysis.debuglock import assert_owned, make_rlock

from repro.db.errors import (
    BufferPoolError,
    PageCorruptionError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.db.page import Page, PAGE_SIZE
from repro.db.wal import WalStorage

if TYPE_CHECKING:
    from repro.core.resilience import RetryPolicy


def page_checksum(data: bytes) -> int:
    """The CRC32 checksum of one page's bytes."""
    return zlib.crc32(data) & 0xFFFFFFFF


class StorageBackend(Protocol):
    """Structural protocol for page storage under a :class:`BufferPool`.

    Implemented by :class:`InMemoryStorage`, :class:`FileStorage`, and the
    chaos suite's :class:`~repro.db.faults.FaultInjector` wrapper.
    """

    @property
    def num_pages(self) -> int:
        """Number of pages allocated so far."""
        ...

    def allocate(self) -> int:
        """Add a zeroed page and return its page number."""
        ...

    def read(self, page_no: int) -> bytes:
        """Return the raw bytes of page ``page_no``."""
        ...

    def write(self, page_no: int, data: bytes) -> None:
        """Overwrite page ``page_no`` with ``data``."""
        ...

    def sync(self) -> None:
        """Flush written pages to stable storage (fsync for file backends)."""
        ...

    def close(self) -> None:
        """Release any resources the backend holds."""
        ...


class InMemoryStorage:
    """Page storage backed by a list of byte buffers."""

    def __init__(self) -> None:
        self._pages: list[bytes] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        """Add a zeroed page and return its page number."""
        self._pages.append(bytes(PAGE_SIZE))
        return len(self._pages) - 1

    def read(self, page_no: int) -> bytes:
        """Return the raw bytes of page ``page_no``."""
        if not 0 <= page_no < len(self._pages):
            raise BufferPoolError(
                f"page {page_no} out of range (storage has {len(self._pages)})"
            )
        return self._pages[page_no]

    def write(self, page_no: int, data: bytes) -> None:
        """Overwrite page ``page_no`` with ``data``."""
        if len(data) != PAGE_SIZE:
            raise BufferPoolError("page write with wrong size")
        if not 0 <= page_no < len(self._pages):
            raise BufferPoolError(
                f"page {page_no} out of range (storage has {len(self._pages)})"
            )
        self._pages[page_no] = bytes(data)

    def sync(self) -> None:
        """No-op: memory has no stable storage to sync to."""

    def close(self) -> None:
        """Release all pages."""
        self._pages.clear()


class FileStorage:
    """Page storage backed by a single file on disk."""

    def __init__(self, path: str) -> None:
        self.path = path
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE:
            raise BufferPoolError(f"{path} is not page aligned ({size} bytes)")
        self._num_pages = size // PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate(self) -> int:
        """Extend the file by one zeroed page; return its page number."""
        page_no = self._num_pages
        os.pwrite(self._fd, bytes(PAGE_SIZE), page_no * PAGE_SIZE)
        self._num_pages += 1
        return page_no

    def read(self, page_no: int) -> bytes:
        """Read one page from the file."""
        if not 0 <= page_no < self._num_pages:
            raise BufferPoolError(
                f"page {page_no} out of range (storage has {self._num_pages})"
            )
        data = os.pread(self._fd, PAGE_SIZE, page_no * PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise BufferPoolError(
                f"short read on page {page_no}: got {len(data)} bytes"
            )
        return data

    def write(self, page_no: int, data: bytes) -> None:
        """Write one page to the file."""
        if len(data) != PAGE_SIZE:
            raise BufferPoolError("page write with wrong size")
        if not 0 <= page_no < self._num_pages:
            raise BufferPoolError(
                f"page {page_no} out of range (storage has {self._num_pages})"
            )
        os.pwrite(self._fd, data, page_no * PAGE_SIZE)

    def sync(self) -> None:
        """fsync the page file."""
        os.fsync(self._fd)

    def close(self) -> None:
        """Close the backing file descriptor."""
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


def __getattr__(name: str) -> "type[RetryPolicy]":
    """Back-compat re-export: :class:`RetryPolicy` moved to core/resilience.

    The class lives in :mod:`repro.core.resilience` now (it backs both
    storage retries and the serve client's reconnect loop), but importing
    that package at this module's top level would be circular —
    ``repro.core`` pulls in :mod:`repro.core.batch`, which imports
    :mod:`repro.db.database`, which imports this module.  Resolving the
    name lazily keeps ``from repro.db.pager import RetryPolicy`` working.
    """
    if name == "RetryPolicy":
        from repro.core.resilience import RetryPolicy

        return RetryPolicy
    # The module-__getattr__ protocol requires AttributeError here, not a
    # DatabaseError subclass.
    raise AttributeError(  # reprolint: disable=exception-taxonomy
        f"module {__name__!r} has no attribute {name!r}"
    )


@dataclass
class PoolStats:
    """Buffer pool access counters."""

    hits: int = 0
    misses: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0
    read_retries: int = 0
    write_retries: int = 0
    checksum_failures: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.evictions = 0
        self.read_retries = 0
        self.write_retries = 0
        self.checksum_failures = 0

    @property
    def logical_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.logical_accesses
        return self.hits / total if total else 0.0


class BufferPool:
    """LRU page cache over a storage backend.

    ``retry_policy`` governs how transient storage faults are absorbed
    (default: 4 attempts with exponential backoff).  ``verify_checksums``
    turns the CRC32 read-verification ledger on (the default) or off;
    writes always record checksums so verification can be primed later
    (e.g. from a snapshot's persisted checksums).
    """

    def __init__(
        self,
        storage: StorageBackend | None = None,
        capacity: int = 1024,
        retry_policy: RetryPolicy | None = None,
        verify_checksums: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool needs capacity >= 1")
        if retry_policy is None:
            # Deferred for the same circularity reason as __getattr__ above.
            from repro.core.resilience import RetryPolicy

            retry_policy = RetryPolicy()
        self.storage = storage if storage is not None else InMemoryStorage()
        self.capacity = capacity
        self.retry_policy = retry_policy
        self.verify_checksums = verify_checksums
        self.stats = PoolStats()
        self._sleep = sleep
        self._checksums: dict[int, int] = {}
        self._cache: OrderedDict[int, Page] = OrderedDict()
        # Even read-only page access reorders (and can evict from) the LRU
        # map, so concurrent readers — the parallel batch matcher — must
        # serialize around it.  Reentrant: _install runs under get_page.
        self._lock = make_rlock("BufferPool._lock")

    @property
    def num_pages(self) -> int:
        return self.storage.num_pages

    def allocate_page(self) -> int:
        """Allocate a fresh page in storage, cache it, return its number."""
        with self._lock:
            page_no = self.storage.allocate()
            self._checksums[page_no] = page_checksum(bytes(PAGE_SIZE))
            page = Page()
            page.dirty = True
            self._install(page_no, page)
            return page_no

    def get_page(self, page_no: int) -> Page:
        """Return the page, reading it from storage on a miss.

        Physical reads retry transient faults per the pool's policy and
        are verified against the checksum ledger; a persistent mismatch
        raises :class:`PageCorruptionError` naming the page.
        """
        with self._lock:
            page = self._cache.get(page_no)
            if page is not None:
                self.stats.hits += 1
                self._cache.move_to_end(page_no)
                return page
            self.stats.misses += 1
            if not 0 <= page_no < self.storage.num_pages:
                raise BufferPoolError(f"page {page_no} does not exist")
            page = Page(self._read_verified(page_no))
            self._install(page_no, page)
            return page

    def checksum(self, page_no: int) -> int | None:
        """The ledgered CRC32 of ``page_no`` (None if never written here)."""
        with self._lock:
            return self._checksums.get(page_no)

    def prime_checksums(self, checksums: dict[int, int]) -> None:
        """Seed the verification ledger (e.g. from snapshot metadata)."""
        with self._lock:
            self._checksums.update(checksums)

    def page_checksums(self) -> dict[int, int]:
        """A copy of the current checksum ledger."""
        with self._lock:
            return dict(self._checksums)

    def flush(self) -> None:
        """Write all dirty cached pages back to storage.

        Over a :class:`~repro.db.wal.WalStorage` backend a flush is an
        atomic durability point: the dirty pages land in the log and the
        implicit transaction holding them is committed (fsync'd) —
        either the whole flush survives a crash or none of it does.
        """
        with self._lock:
            for page_no, page in self._cache.items():
                if page.dirty:
                    self._write_page(page_no, bytes(page.data))
                    page.dirty = False
            if isinstance(self.storage, WalStorage):
                self.storage.flush_barrier()

    @property
    def wal(self) -> WalStorage | None:
        """The write-ahead-log backend, when this pool has one."""
        return self.storage if isinstance(self.storage, WalStorage) else None

    def begin_transaction(self) -> None:
        """Open an explicit WAL transaction (no-op without a WAL backend).

        Until :meth:`commit_transaction`, page writes reaching storage —
        flushes and LRU evictions alike — are staged in the log without a
        commit record, so a crash discards them as a unit.
        """
        with self._lock:
            wal = self.wal
            if wal is not None:
                wal.begin()

    def commit_transaction(self, payload: bytes | None = None) -> None:
        """Flush dirty pages into the open transaction and durably commit it.

        ``payload`` (typically the catalog manifest) rides on the COMMIT
        record so recovery can rebuild relations this transaction
        reshaped.  Without a WAL backend this degrades to a plain flush.
        """
        with self._lock:
            self.flush()
            wal = self.wal
            if wal is not None:
                wal.commit(payload)

    def abort_transaction(self) -> None:
        """Discard the open WAL transaction and the pool's view of it.

        Every cached page is dropped (dirty ones included) and the
        checksum ledger is re-primed from committed storage, so reads
        after the abort see the last committed images.  In-memory
        structures above the pool (heap directories, B+-trees) are NOT
        rolled back — after an aborted transaction the database object
        should be reopened.
        """
        with self._lock:
            wal = self.wal
            if wal is None:
                return
            touched = wal.abort()
            self._cache.clear()
            for page_no in sorted(touched):
                if page_no < self.storage.num_pages:
                    self._checksums[page_no] = page_checksum(self.storage.read(page_no))
                else:
                    self._checksums.pop(page_no, None)

    def drop_cache(self) -> None:
        """Flush, then forget every cached page (forces physical re-reads).

        Used by chaos tests and benchmarks that need the next access to go
        through storage; correctness never depends on it.
        """
        with self._lock:
            self.flush()
            self._cache.clear()

    def close(self) -> None:
        """Flush dirty pages and release the cache and storage."""
        with self._lock:
            self.flush()
            self._cache.clear()
            self.storage.close()

    # ------------------------------------------------------------------
    # Physical I/O with retry + verification
    # ------------------------------------------------------------------

    # Caller holds self._lock (reentrant); verified dynamically below.
    def _read_verified(self, page_no: int) -> bytes:  # reprolint: disable=lock-discipline
        """One logical read: retries transient faults, verifies the CRC."""
        assert_owned(self._lock)
        policy = self.retry_policy
        expected = self._checksums.get(page_no) if self.verify_checksums else None
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self._sleep(policy.delay(attempt - 1))
                self.stats.read_retries += 1
            try:
                data = self.storage.read(page_no)
            except TransientIOError as exc:
                last_error = exc
                continue
            self.stats.physical_reads += 1
            if expected is None or page_checksum(data) == expected:
                return data
            # Mismatch: count it and re-read — a transient flip heals, a
            # torn page keeps failing and falls through to the raise below.
            self.stats.checksum_failures += 1
            last_error = PageCorruptionError(
                f"page {page_no} failed checksum verification "
                f"(expected {expected:#010x}, got {page_checksum(data):#010x})",
                page_no=page_no,
            )
        if isinstance(last_error, PageCorruptionError):
            raise last_error
        raise RetryExhaustedError(
            f"read of page {page_no} still failing after "
            f"{policy.max_attempts} attempts: {last_error}",
            page_no=page_no,
        ) from last_error

    # Caller holds self._lock (reentrant); verified dynamically below.
    def _write_page(self, page_no: int, data: bytes) -> None:  # reprolint: disable=lock-discipline
        """One logical write: ledger the CRC first, retry transient faults."""
        assert_owned(self._lock)
        policy = self.retry_policy
        self._checksums[page_no] = page_checksum(data)
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self._sleep(policy.delay(attempt - 1))
                self.stats.write_retries += 1
            try:
                self.storage.write(page_no, data)
            except TransientIOError as exc:
                last_error = exc
                continue
            self.stats.physical_writes += 1
            return
        raise RetryExhaustedError(
            f"write of page {page_no} still failing after "
            f"{policy.max_attempts} attempts: {last_error}",
            page_no=page_no,
        ) from last_error

    # Caller holds self._lock (reentrant); verified dynamically below.
    def _install(self, page_no: int, page: Page) -> None:  # reprolint: disable=lock-discipline
        assert_owned(self._lock)
        while len(self._cache) >= self.capacity:
            evict_no, evicted = self._cache.popitem(last=False)
            self.stats.evictions += 1
            if evicted.dirty:
                self._write_page(evict_no, bytes(evicted.data))
        self._cache[page_no] = page
        self._cache.move_to_end(page_no)
